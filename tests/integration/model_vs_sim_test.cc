// The paper's Section 4 validation: the analytic model must track the
// discrete-event simulation for every VCR operation type and for the mixed
// workload, across waiting-time targets and partition counts.
//
// All fourteen simulations are batched through one RunExperimentGrid call
// and computed once (lazily, on first use), so the suite exercises the
// replication harness's parallel scheduling while each test only checks its
// own cell. The per-job seeds are pinned to their historical values — the
// grid's derived context.seed is deliberately ignored — so the measured
// numbers are bit-identical to the pre-harness suite.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "core/hit_model.h"
#include "dist/exponential.h"
#include "dist/gamma.h"
#include "exp/experiment.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

struct ValidationCase {
  std::string label;
  VcrOp op;
  int streams;
  double max_wait;
  /// Allowed |model − sim| for resumes issued from inside a partition.
  double tolerance;
};

std::vector<ValidationCase> Cases() {
  // Tolerances reflect the paper's own observations (§4): the FF and PAU
  // figures nearly coincide; RW shows a visible gap because the model calls
  // a rewind-past-start a miss while the real system often re-enrolls.
  return {
      {"FF_n20_w1", VcrOp::kFastForward, 20, 1.0, 0.02},
      {"FF_n40_w1", VcrOp::kFastForward, 40, 1.0, 0.02},
      {"FF_n80_w1", VcrOp::kFastForward, 80, 1.0, 0.03},
      {"FF_n40_w2", VcrOp::kFastForward, 40, 2.0, 0.03},
      {"RW_n20_w1", VcrOp::kRewind, 20, 1.0, 0.08},
      {"RW_n40_w1", VcrOp::kRewind, 40, 1.0, 0.08},
      {"PAU_n20_w1", VcrOp::kPause, 20, 1.0, 0.02},
      {"PAU_n40_w1", VcrOp::kPause, 40, 1.0, 0.02},
      {"PAU_n40_w2", VcrOp::kPause, 40, 2.0, 0.03},
  };
}

// One simulation cell of the batched grid.
struct SimJob {
  PartitionLayout layout;
  SimulationOptions options;
};

PartitionLayout Layout(int streams, double max_wait) {
  const auto layout =
      PartitionLayout::FromMaxWait(paper::kFig7MovieLength, streams, max_wait);
  VOD_CHECK_OK(layout.status());
  return *layout;
}

// Grid indices for the non-parameterized jobs (the parameterized validation
// cases occupy [0, Cases().size())).
enum : size_t {
  kJobRewindSign = 9,
  kJobMixed = 10,
  kJobHeterogeneous = 11,
  kJobInteractivityGap10 = 12,
  kJobInteractivityGap40 = 13,
};

std::vector<SimJob> BuildJobs() {
  std::vector<SimJob> jobs;
  for (const ValidationCase& c : Cases()) {
    SimJob job{Layout(c.streams, c.max_wait), {}};
    job.options.mean_interarrival_minutes = paper::kFig7MeanInterarrival;
    job.options.behavior = paper::Fig7SingleOpBehavior(c.op);
    job.options.warmup_minutes = 2000.0;
    job.options.measurement_minutes = 40000.0;
    job.options.seed = 20240707;
    jobs.push_back(std::move(job));
  }

  {  // kJobRewindSign
    SimJob job{Layout(40, 1.0), {}};
    job.options.behavior = paper::Fig7SingleOpBehavior(VcrOp::kRewind);
    job.options.warmup_minutes = 2000.0;
    job.options.measurement_minutes = 40000.0;
    jobs.push_back(std::move(job));
  }
  {  // kJobMixed — Figure 7(d): P_FF = 0.2, P_RW = 0.2, P_PAU = 0.6.
    SimJob job{Layout(40, 1.0), {}};
    job.options.behavior = paper::Fig7MixedBehavior();
    job.options.warmup_minutes = 2000.0;
    job.options.measurement_minutes = 40000.0;
    jobs.push_back(std::move(job));
  }
  {  // kJobHeterogeneous — a different duration distribution per operation.
    SimJob job{Layout(40, 1.0), {}};
    VcrDurations durations;
    durations.fast_forward = std::make_shared<GammaDistribution>(2.0, 4.0);
    durations.rewind = std::make_shared<ExponentialDistribution>(3.0);
    durations.pause = std::make_shared<ExponentialDistribution>(12.0);
    job.options.behavior.mix = VcrMix{0.3, 0.3, 0.4};
    job.options.behavior.durations = durations;
    job.options.behavior.interactivity = paper::DefaultInteractivity();
    job.options.warmup_minutes = 2000.0;
    job.options.measurement_minutes = 40000.0;
    jobs.push_back(std::move(job));
  }
  for (double mean_gap : {10.0, 40.0}) {  // kJobInteractivityGap{10,40}
    SimJob job{Layout(40, 1.0), {}};
    job.options.behavior = paper::Fig7SingleOpBehavior(VcrOp::kPause);
    job.options.behavior.interactivity =
        std::make_shared<ExponentialDistribution>(mean_gap);
    job.options.warmup_minutes = 2000.0;
    job.options.measurement_minutes = 40000.0;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

const std::vector<SimulationReport>& AllReports() {
  static const std::vector<SimulationReport>* const reports = [] {
    ExperimentOptions experiment;
    experiment.threads = 0;  // ThreadPool::DefaultParallelism()
    const auto grid = RunExperimentGrid(
        BuildJobs(), experiment,
        [](const SimJob& job, const CellContext& /*context*/) {
          const auto report =
              RunSimulation(job.layout, paper::Rates(), job.options);
          VOD_CHECK_OK(report.status());
          return *report;
        });
    auto* flat = new std::vector<SimulationReport>();
    for (const auto& row : grid) flat->push_back(row[0]);
    return flat;
  }();
  return *reports;
}

class ModelVsSimTest : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(ModelVsSimTest, SimulationTracksModel) {
  const ValidationCase& c = GetParam();
  const auto layout = PartitionLayout::FromMaxWait(
      paper::kFig7MovieLength, c.streams, c.max_wait);
  ASSERT_TRUE(layout.ok());

  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(model.ok());
  const auto p_model = model->HitProbability(c.op, paper::Fig7Duration());
  ASSERT_TRUE(p_model.ok());

  size_t index = 0;
  const auto cases = Cases();
  while (index < cases.size() && cases[index].label != c.label) ++index;
  ASSERT_LT(index, cases.size());
  const SimulationReport& report = AllReports()[index];

  EXPECT_NEAR(report.hit_probability_in_partition, *p_model, c.tolerance)
      << c.label << ": model=" << *p_model
      << " sim=" << report.hit_probability_in_partition << " ("
      << report.in_partition_resumes << " resumes)";
}

INSTANTIATE_TEST_SUITE_P(Fig7, ModelVsSimTest, ::testing::ValuesIn(Cases()),
                         [](const ::testing::TestParamInfo<ValidationCase>&
                                info) { return info.param.label; });

TEST(ModelVsSimTest, DiscrepancySignsMatchThePaper) {
  // §4: the model *under*-estimates RW and PAU hits (boundary at minute 0
  // counted as a miss) and can *over*-estimate FF hits near partition
  // leading edges. Check the RW sign, which is the pronounced one.
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  ASSERT_TRUE(layout.ok());
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(model.ok());
  const auto p_model =
      model->HitProbability(VcrOp::kRewind, paper::Fig7Duration());
  ASSERT_TRUE(p_model.ok());

  EXPECT_GT(AllReports()[kJobRewindSign].hit_probability, *p_model);
}

TEST(ModelVsSimTest, MixedWorkloadMatches) {
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  ASSERT_TRUE(layout.ok());
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(model.ok());
  const auto p_model = model->HitProbability(
      VcrMix::PaperMixed(), VcrDurations::AllSame(paper::Fig7Duration()));
  ASSERT_TRUE(p_model.ok());

  const SimulationReport& report = AllReports()[kJobMixed];
  EXPECT_NEAR(report.hit_probability_in_partition, *p_model, 0.05);
  EXPECT_GT(report.in_partition_resumes, 5000);
}

TEST(ModelVsSimTest, HeterogeneousPerOpDurationsMatch) {
  // The model accepts a different duration distribution per operation; the
  // simulator must agree under the same heterogeneous behavior.
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  ASSERT_TRUE(layout.ok());

  VcrDurations durations;
  durations.fast_forward = std::make_shared<GammaDistribution>(2.0, 4.0);
  durations.rewind = std::make_shared<ExponentialDistribution>(3.0);
  durations.pause = std::make_shared<ExponentialDistribution>(12.0);
  const VcrMix mix{0.3, 0.3, 0.4};

  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(model.ok());
  const auto p_model = model->HitProbability(mix, durations);
  ASSERT_TRUE(p_model.ok());

  const SimulationReport& report = AllReports()[kJobHeterogeneous];
  EXPECT_NEAR(report.hit_probability_in_partition, *p_model, 0.04);
}

TEST(ModelVsSimTest, InteractivityRateBarelyMovesHitProbability) {
  // The model has no interactivity-rate parameter; the simulated hit
  // probability must be insensitive to it (it only changes how many resumes
  // are observed). This justifies our choice of the unstated constant.
  EXPECT_NEAR(
      AllReports()[kJobInteractivityGap10].hit_probability_in_partition,
      AllReports()[kJobInteractivityGap40].hit_probability_in_partition, 0.02);
}

}  // namespace
}  // namespace vod
