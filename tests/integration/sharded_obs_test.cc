// Shard-aware observability wall (sim/sharded_server.h + src/obs).
//
// Extends the telemetry-only contract to the sharded engine: attaching the
// full observability stack — per-shard telemetry lanes merged into a trace
// bus, the metrics registry, the profiler's named lanes, the crash flight
// recorder — to a run with faults, the controller, the degradation ladder,
// and the paranoid auditor all live must not change one report byte, for
// any shard or thread count. The merged trace itself must be byte-identical
// across thread counts for a fixed shard count (lane buffers are folded at
// the barrier in shard-index order, so the merge is (window, shard,
// local-seq) ordered by construction). And an injected audit-law failure
// must leave a readable postmortem bundle ending at the violating window.
//
// Labelled `sharded` so the TSAN CI leg runs the lanes under real threads.

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "gtest/gtest.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "sim/sharded_server.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

/// Self-cleaning bundle path in the test's working directory.
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_("sharded_obs_test_" + name + ".jsonl") {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  VOD_CHECK(layout.ok());
  return *layout;
}

std::vector<ServerMovieSpec> SixMovies() {
  std::vector<ServerMovieSpec> movies;
  movies.push_back({"alpha", MakeLayout(120.0, 40, 80.0), 0.6, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"beta", MakeLayout(90.0, 30, 45.0), 0.3, nullptr,
                    paper::Fig7SingleOpBehavior(VcrOp::kFastForward)});
  movies.push_back({"gamma", MakeLayout(100.0, 20, 50.0), 0.45, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"delta", MakeLayout(110.0, 25, 60.0), 0.35, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"epsilon", MakeLayout(80.0, 16, 32.0), 0.2, nullptr,
                    paper::Fig7SingleOpBehavior(VcrOp::kPause)});
  movies.push_back({"zeta", MakeLayout(130.0, 36, 72.0), 0.5, nullptr,
                    paper::Fig7MixedBehavior()});
  return movies;
}

/// The whole machine at once — scarce reserve, frequent faults, the
/// controller, the windowed ladder, the paranoid auditor — so telemetry
/// rides every code path that could plausibly leak into a report.
ShardedServerOptions LadderMachineOptions(int shards, int threads,
                                          uint64_t seed) {
  ShardedServerOptions options;
  options.base.rates = paper::Rates();
  options.base.dynamic_stream_reserve = 24;
  options.base.warmup_minutes = 300.0;
  options.base.measurement_minutes = 2500.0;
  options.base.seed = seed;
  options.base.faults.enabled = true;
  options.base.faults.disks = 8;
  options.base.faults.profile.mtbf_minutes = 500.0;
  options.base.faults.profile.mttr_minutes = 90.0;
  options.base.controller.enabled = true;
  options.base.controller.poll_interval_minutes = 15.0;
  options.base.audit.enabled = true;
  options.base.audit.every_events = 1;
  options.base.degradation.enabled = true;
  options.base.degradation.queue_deadline_minutes = 5.0;
  options.shards = shards;
  options.threads = threads;
  options.window_minutes = 40.0;
  options.ladder_recover_windows = 2;
  return options;
}

/// Full observability stack for one run; the trace lands in `trace_out`.
struct ObsStack {
  explicit ObsStack(std::ostream* trace_out) : sink(trace_out) {
    event_log.AddSink(&sink);
    registry.set_sample_every(120.0);
  }
  ObsOptions Options() {
    ObsOptions obs;
    obs.event_log = &event_log;
    obs.metrics = &registry;
    obs.profiler = &profiler;
    return obs;
  }
  EventLog event_log;
  JsonlSink sink;
  MetricsRegistry registry;
  PhaseProfiler profiler;
};

TEST(ShardedObsTest, ReportsByteIdenticalWithObsOnOrOff) {
  const auto movies = SixMovies();
  for (uint64_t seed : {11u, 29u}) {
    const auto golden =
        RunShardedServerSimulation(movies, LadderMachineOptions(1, 1, seed));
    ASSERT_TRUE(golden.ok()) << golden.status().message();
    const std::string golden_text = golden->ToString();
    for (int shards : {1, 2, 8}) {
      for (int threads : {1, 4}) {
        std::ostringstream trace;
        ObsStack obs(&trace);
        ShardedServerOptions options =
            LadderMachineOptions(shards, threads, seed);
        options.base.obs = obs.Options();
        const auto got = RunShardedServerSimulation(movies, options);
        ASSERT_TRUE(got.ok()) << "seed=" << seed << " shards=" << shards
                              << " threads=" << threads << ": "
                              << got.status().message();
        EXPECT_EQ(got->ToString(), golden_text)
            << "seed=" << seed << " shards=" << shards
            << " threads=" << threads;
        // The run must actually have traced (lanes lit, merge ran) —
        // otherwise the byte comparison proves nothing.
        EXPECT_NE(trace.str().find("\"cat\":\"shard\""), std::string::npos);
        EXPECT_GT(obs.registry.samples_taken(), 0);
      }
    }
  }
}

TEST(ShardedObsTest, MergedTraceByteIdenticalAcrossThreadCounts) {
  const auto movies = SixMovies();
  for (int shards : {2, 4}) {
    std::string golden_trace;
    for (int threads : {1, 4}) {
      std::ostringstream trace;
      ObsStack obs(&trace);
      ShardedServerOptions options = LadderMachineOptions(shards, threads, 7);
      options.base.obs = obs.Options();
      const auto got = RunShardedServerSimulation(movies, options);
      ASSERT_TRUE(got.ok()) << got.status().message();
      if (threads == 1) {
        golden_trace = trace.str();
        ASSERT_FALSE(golden_trace.empty());
      } else {
        EXPECT_EQ(trace.str(), golden_trace)
            << "shards=" << shards
            << ": merged trace depends on thread count";
      }
    }
  }
}

TEST(ShardedObsTest, FlightRecorderDumpsOnInjectedAuditFailure) {
  const auto movies = SixMovies();
  TempPath bundle_path("postmortem");
  ShardedServerOptions options = LadderMachineOptions(4, 2, 11);
  options.postmortem.path = bundle_path.str();
  options.postmortem.windows = 8;
  options.corrupt_audit_window = 3;
  const auto got = RunShardedServerSimulation(movies, options);
  ASSERT_FALSE(got.ok());  // the injected violation surfaces as the status
  EXPECT_NE(got.status().message().find("shard-reserve-ledger"),
            std::string::npos)
      << got.status().message();

  const auto bundle = ReadPostmortem(bundle_path.str());
  ASSERT_TRUE(bundle.ok()) << bundle.status().message();
  EXPECT_EQ(bundle->shards, 4);
  EXPECT_EQ(bundle->reason, got.status().message());
  ASSERT_FALSE(bundle->windows.empty());
  // The bundle ends at the violating window and retains at most the
  // configured history.
  EXPECT_EQ(bundle->windows.back().window, 3);
  EXPECT_LE(bundle->windows.size(), 8u);
  EXPECT_EQ(bundle->windows.back().shard_events.size(), 4u);
  // Lanes were lit by the postmortem path alone (no tracing), so the rings
  // carry kShard window records for context.
  ASSERT_FALSE(bundle->events.empty());
  for (const PostmortemEvent& pe : bundle->events) {
    EXPECT_EQ(pe.event.category, EventCategory::kShard);
  }
}

TEST(ShardedObsTest, CorruptionHookLeavesTrajectoryUntouched) {
  // The injection perturbs only the audit snapshot copy, never the run.
  // Proof: corrupt the same configuration at window 3 and at window 6 —
  // both bundles retain window 3, and its ledger digest must be identical,
  // i.e. the window-3 injection left no trace in the digest chain.
  const auto movies = SixMovies();
  uint64_t digest_at_3[2] = {0, 0};
  const int64_t corrupt_at[2] = {3, 6};
  for (int i = 0; i < 2; ++i) {
    TempPath bundle_path("trajectory_" + std::to_string(i));
    ShardedServerOptions options = LadderMachineOptions(2, 2, 13);
    options.postmortem.path = bundle_path.str();
    options.postmortem.windows = 8;
    options.corrupt_audit_window = corrupt_at[i];
    const auto got = RunShardedServerSimulation(movies, options);
    ASSERT_FALSE(got.ok());
    const auto bundle = ReadPostmortem(bundle_path.str());
    ASSERT_TRUE(bundle.ok()) << bundle.status().message();
    bool found = false;
    for (const FlightWindowRecord& fw : bundle->windows) {
      if (fw.window == 3) {
        digest_at_3[i] = fw.digest;
        found = true;
      }
    }
    ASSERT_TRUE(found) << "bundle " << i << " does not retain window 3";
  }
  EXPECT_EQ(digest_at_3[0], digest_at_3[1]);
  EXPECT_NE(digest_at_3[0], 0u);
}

}  // namespace
}  // namespace vod
