// Differential determinism wall for the sharded server (sim/sharded_server.h).
//
// The tentpole guarantee: one configuration produces ONE answer — byte for
// byte — no matter how the movies are sharded or how many worker threads
// drive the shards. These tests run the full machine (disk faults, the
// reallocation controller, the paranoid cross-shard auditor all enabled at
// once) across shards ∈ {1, 2, 3, 8} × threads ∈ {1, 4} and multiple seeds,
// and diff the complete rendered report against the 1-shard/1-thread golden
// text. Any divergence — a reordered mailbox message, a credit grant that
// depends on shard-local iteration order, an RNG stream keyed by shard
// index instead of global movie index — shows up as a byte diff here.
//
// Labelled `sharded` so the TSAN CI leg exercises the real multi-threaded
// barrier protocol, not just single-threaded unit tests.

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "gtest/gtest.h"
#include "sim/sharded_server.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  VOD_CHECK(layout.ok());
  return *layout;
}

/// Six movies with distinct layouts, rates, and VCR behaviors, so the
/// partition of movies across shards is different for every shard count
/// (6 movies over 1/2/3/8 shards: 8 shards leaves two shards empty —
/// deliberately, the protocol must tolerate movie-less shards).
std::vector<ServerMovieSpec> SixMovies() {
  std::vector<ServerMovieSpec> movies;
  movies.push_back({"alpha", MakeLayout(120.0, 40, 80.0), 0.6, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"beta", MakeLayout(90.0, 30, 45.0), 0.3, nullptr,
                    paper::Fig7SingleOpBehavior(VcrOp::kFastForward)});
  movies.push_back({"gamma", MakeLayout(100.0, 20, 50.0), 0.45, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"delta", MakeLayout(110.0, 25, 60.0), 0.35, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"epsilon", MakeLayout(80.0, 16, 32.0), 0.2, nullptr,
                    paper::Fig7SingleOpBehavior(VcrOp::kPause)});
  movies.push_back({"zeta", MakeLayout(130.0, 36, 72.0), 0.5, nullptr,
                    paper::Fig7MixedBehavior()});
  return movies;
}

/// Everything on at once: scarce reserve (credits bind), disk faults
/// (capacity moves, debts get assigned), the reallocation controller
/// (layout commits ride the mailboxes), and the paranoid auditor (every
/// barrier checks the cross-shard conservation laws).
ShardedServerOptions FullMachineOptions(int shards, int threads,
                                        uint64_t seed) {
  ShardedServerOptions options;
  options.base.rates = paper::Rates();
  options.base.dynamic_stream_reserve = 40;
  options.base.warmup_minutes = 300.0;
  options.base.measurement_minutes = 2500.0;
  options.base.seed = seed;
  options.base.faults.enabled = true;
  options.base.faults.disks = 8;
  options.base.faults.profile.mtbf_minutes = 500.0;
  options.base.faults.profile.mttr_minutes = 90.0;
  options.base.controller.enabled = true;
  options.base.controller.poll_interval_minutes = 15.0;
  options.base.audit.enabled = true;
  options.base.audit.every_events = 1;
  options.shards = shards;
  options.threads = threads;
  options.window_minutes = 40.0;
  return options;
}

TEST(ShardedDeterminismTest, ByteIdenticalAcrossShardAndThreadCounts) {
  const auto movies = SixMovies();
  for (uint64_t seed : {11u, 29u}) {
    const auto golden =
        RunShardedServerSimulation(movies, FullMachineOptions(1, 1, seed));
    ASSERT_TRUE(golden.ok()) << golden.status().message();
    const std::string golden_text = golden->ToString();
    EXPECT_TRUE(golden->complete);
    for (int shards : {2, 3, 8}) {
      for (int threads : {1, 4}) {
        const auto got = RunShardedServerSimulation(
            movies, FullMachineOptions(shards, threads, seed));
        ASSERT_TRUE(got.ok()) << "seed=" << seed << " shards=" << shards
                              << " threads=" << threads << ": "
                              << got.status().message();
        EXPECT_EQ(got->ToString(), golden_text)
            << "seed=" << seed << " shards=" << shards
            << " threads=" << threads;
      }
    }
  }
}

TEST(ShardedDeterminismTest, RepeatedRunIsBitStable) {
  // Same configuration, run twice with the full machine on: the report and
  // the barrier-ledger digest must both repeat exactly.
  const auto movies = SixMovies();
  const auto a =
      RunShardedServerSimulation(movies, FullMachineOptions(3, 4, 47));
  const auto b =
      RunShardedServerSimulation(movies, FullMachineOptions(3, 4, 47));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());
  EXPECT_EQ(a->ledger_digest, b->ledger_digest);
  EXPECT_EQ(a->executed_events, b->executed_events);
}

TEST(ShardedDeterminismTest, SeedsProduceDifferentRuns) {
  // Sanity guard on the wall itself: if ToString() collapsed to constants,
  // every comparison above would pass vacuously.
  const auto movies = SixMovies();
  const auto a =
      RunShardedServerSimulation(movies, FullMachineOptions(2, 2, 11));
  const auto b =
      RunShardedServerSimulation(movies, FullMachineOptions(2, 2, 29));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->ToString(), b->ToString());
  EXPECT_NE(a->ledger_digest, b->ledger_digest);
}

/// The full machine plus the windowed degradation ladder: scarce reserve,
/// hard faults pushing capacity through the shed/batching thresholds, the
/// controller, the paranoid auditor (now including the shard-ladder-rung /
/// -reclaim / -queue laws), and the ladder deciding rungs and reclaim
/// quotas at every barrier.
ShardedServerOptions LadderMachineOptions(int shards, int threads,
                                          uint64_t seed) {
  ShardedServerOptions options = FullMachineOptions(shards, threads, seed);
  options.base.dynamic_stream_reserve = 24;
  options.base.degradation.enabled = true;
  options.base.degradation.queue_deadline_minutes = 5.0;
  options.ladder_recover_windows = 2;
  return options;
}

TEST(ShardedDeterminismTest, LadderByteIdenticalAcrossShardAndThreadCounts) {
  const auto movies = SixMovies();
  for (uint64_t seed : {11u, 29u}) {
    const auto golden =
        RunShardedServerSimulation(movies, LadderMachineOptions(1, 1, seed));
    ASSERT_TRUE(golden.ok()) << golden.status().message();
    const std::string golden_text = golden->ToString();
    // The wall is only meaningful if the ladder actually walks: rungs must
    // move under this fault regime.
    ASSERT_GT(golden->server.resilience.total_transitions, 0)
        << "seed=" << seed << ": the ladder never engaged";
    for (int shards : {2, 3, 8}) {
      for (int threads : {1, 4}) {
        const auto got = RunShardedServerSimulation(
            movies, LadderMachineOptions(shards, threads, seed));
        ASSERT_TRUE(got.ok()) << "seed=" << seed << " shards=" << shards
                              << " threads=" << threads << ": "
                              << got.status().message();
        EXPECT_EQ(got->ToString(), golden_text)
            << "seed=" << seed << " shards=" << shards
            << " threads=" << threads;
      }
    }
  }
}

TEST(ShardedDeterminismTest, LadderRepeatedRunIsBitStable) {
  const auto movies = SixMovies();
  const auto a =
      RunShardedServerSimulation(movies, LadderMachineOptions(3, 4, 47));
  const auto b =
      RunShardedServerSimulation(movies, LadderMachineOptions(3, 4, 47));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());
  EXPECT_EQ(a->ledger_digest, b->ledger_digest);
}

TEST(ShardedDeterminismTest, LadderChangesTheDigestChain) {
  // The rung decisions fold into the ledger digest: the same run with and
  // without the ladder must not share a trajectory fingerprint (otherwise
  // a checkpoint could silently resume across the semantic change).
  const auto movies = SixMovies();
  const auto off =
      RunShardedServerSimulation(movies, FullMachineOptions(2, 2, 11));
  const auto on =
      RunShardedServerSimulation(movies, LadderMachineOptions(2, 2, 11));
  ASSERT_TRUE(off.ok() && on.ok());
  EXPECT_NE(off->ledger_digest, on->ledger_digest);
}

TEST(ShardedDeterminismTest, WindowedLadderTracksLegacyPerEventLadder) {
  // The semantic delta vs. the single-server per-event ladder, pinned
  // down: the windowed ladder sees pressure only at barriers, so its
  // decisions lag live pressure by at most one window — but both ladders
  // must walk under the same fault regime, close the same queue
  // accounting identity, and the windowed rungs may only move at barrier
  // times. (EXPERIMENTS.md quantifies the dwell-time deltas.)
  const auto movies = SixMovies();
  ShardedServerOptions windowed = LadderMachineOptions(1, 1, 11);
  windowed.base.controller.enabled = false;  // isolate the two ladders
  ServerOptions legacy = windowed.base;
  const auto legacy_report = RunServerSimulation(movies, legacy);
  const auto windowed_report = RunShardedServerSimulation(movies, windowed);
  ASSERT_TRUE(legacy_report.ok()) << legacy_report.status().message();
  ASSERT_TRUE(windowed_report.ok()) << windowed_report.status().message();

  const ResilienceReport& per_event = legacy_report->resilience;
  const ResilienceReport& per_window = windowed_report->server.resilience;
  EXPECT_GT(per_event.total_transitions, 0);
  EXPECT_GT(per_window.total_transitions, 0);
  EXPECT_EQ(per_window.vcr_queued,
            per_window.vcr_queue_grants + per_window.vcr_queue_expirations +
                per_window.vcr_queue_pending);
  // Windowed decisions happen at barriers only: every recorded transition
  // time is an exact multiple of window_minutes.
  for (const DegradationTransition& tr : per_window.transitions) {
    const double windows = tr.time / windowed.window_minutes;
    EXPECT_DOUBLE_EQ(windows, std::floor(windows + 0.5))
        << "transition at t=" << tr.time
        << " is not on a window barrier";
  }
  // Both ladders must agree on the gross picture: time spent above normal
  // within the same horizon (the windowed ladder quantizes dwells to
  // windows, so agreement is coarse, not exact).
  const auto above_normal = [](const ResilienceReport& rz) {
    double total = 0.0;
    for (int level = 1; level < kNumDegradationLevels; ++level) {
      total += rz.time_in_level[level];
    }
    return total;
  };
  EXPECT_GT(above_normal(per_event), 0.0);
  EXPECT_GT(above_normal(per_window), 0.0);
}

TEST(ShardedDeterminismTest, FaultsAndControllerActuallyEngaged) {
  // The wall is only as strong as the machinery it exercises: prove the
  // fault schedule fired and the controller planned under this workload.
  const auto report = RunShardedServerSimulation(
      SixMovies(), FullMachineOptions(3, 2, 11));
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->server.resilience_enabled);
  EXPECT_GT(report->server.resilience.disk_failures, 0);
  EXPECT_TRUE(report->server.controller_enabled);
  EXPECT_GT(report->messages_posted, 0u);
  EXPECT_EQ(report->messages_posted, report->messages_drained);
}

}  // namespace
}  // namespace vod
