// Viewer abandonment and the non-uniform position-density extension.
//
// The paper assumes P(V_c) = 1/l (§3.1). When viewers abandon sessions,
// active positions skew toward the start of the movie; the extended model
// unconditions over an arbitrary position density q instead. These tests
// validate the q-weighted fast path against the brute-force reference and
// against the simulator with an actual abandonment process.

#include <gtest/gtest.h>

#include <cmath>

#include "core/hit_model.h"
#include "core/reference_model.h"
#include "dist/exponential.h"
#include "dist/transformed.h"
#include "dist/uniform.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

DistributionPtr EarlySkewedPositions(double mean, double movie_length) {
  // Active-viewer positions under exponential patience: density ∝ e^{-v/mean}
  // restricted to [0, l].
  return std::make_shared<TruncatedDistribution>(
      std::make_shared<ExponentialDistribution>(mean), 0.0, movie_length);
}

TEST(PositionDensityModelTest, UniformDensityMatchesNullDefault) {
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  HitModelOptions uniform_explicit;
  uniform_explicit.position_density =
      std::make_shared<UniformDistribution>(0.0, 120.0);
  const auto with_q =
      AnalyticHitModel::Create(*layout, paper::Rates(), uniform_explicit);
  const auto without_q = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(with_q.ok() && without_q.ok());
  for (VcrOp op : kAllVcrOps) {
    const auto a = with_q->HitProbability(op, paper::Fig7Duration());
    const auto b = without_q->HitProbability(op, paper::Fig7Duration());
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_NEAR(*a, *b, 1e-6) << VcrOpName(op);
  }
}

TEST(PositionDensityModelTest, FastPathMatchesReferenceUnderSkew) {
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  const DistributionPtr q = EarlySkewedPositions(45.0, 120.0);

  HitModelOptions model_options;
  model_options.position_density = q;
  const auto model =
      AnalyticHitModel::Create(*layout, paper::Rates(), model_options);
  ASSERT_TRUE(model.ok());

  ReferenceModelOptions reference_options;
  reference_options.position_density = q;
  for (VcrOp op : kAllVcrOps) {
    const auto fast = model->HitProbability(op, paper::Fig7Duration());
    const auto reference = ReferenceHitProbability(
        op, *layout, paper::Rates(), *paper::Fig7Duration(),
        reference_options);
    ASSERT_TRUE(fast.ok() && reference.ok());
    EXPECT_NEAR(*fast, *reference, 5e-4) << VcrOpName(op);
  }
}

TEST(PositionDensityModelTest, SkewShiftsTheBoundaryTerms) {
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  HitModelOptions skew_options;
  skew_options.position_density = EarlySkewedPositions(30.0, 120.0);
  const auto skewed =
      AnalyticHitModel::Create(*layout, paper::Rates(), skew_options);
  const auto uniform = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(skewed.ok() && uniform.ok());

  // Early viewers rarely reach the movie end on a fast-forward...
  const auto ff_skew =
      skewed->Breakdown(VcrOp::kFastForward, paper::Fig7Duration());
  const auto ff_uni =
      uniform->Breakdown(VcrOp::kFastForward, paper::Fig7Duration());
  ASSERT_TRUE(ff_skew.ok() && ff_uni.ok());
  EXPECT_LT(ff_skew->end, 0.5 * ff_uni->end);

  // ...and rewinds fall off the movie start more often (more misses).
  const auto rw_skew =
      skewed->HitProbability(VcrOp::kRewind, paper::Fig7Duration());
  const auto rw_uni =
      uniform->HitProbability(VcrOp::kRewind, paper::Fig7Duration());
  ASSERT_TRUE(rw_skew.ok() && rw_uni.ok());
  EXPECT_LT(*rw_skew, *rw_uni - 0.02);

  // Pause geometry is position-free: unchanged.
  const auto pau_skew =
      skewed->HitProbability(VcrOp::kPause, paper::Fig7Duration());
  const auto pau_uni =
      uniform->HitProbability(VcrOp::kPause, paper::Fig7Duration());
  ASSERT_TRUE(pau_skew.ok() && pau_uni.ok());
  EXPECT_NEAR(*pau_skew, *pau_uni, 1e-9);
}

TEST(AbandonmentSimTest, NoPatienceMeansNoAbandonments) {
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  SimulationOptions options;
  options.behavior = paper::Fig7MixedBehavior();
  options.warmup_minutes = 200.0;
  options.measurement_minutes = 3000.0;
  const auto report = RunSimulation(*layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->abandonments, 0);
}

TEST(AbandonmentSimTest, PatienceShortensSessions) {
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  SimulationOptions options;
  options.behavior.interactivity = nullptr;  // passive for exact arithmetic
  options.patience = std::make_shared<ExponentialDistribution>(40.0);
  options.warmup_minutes = 1000.0;
  options.measurement_minutes = 20000.0;
  const auto report = RunSimulation(*layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->abandonments, 0);
  // Little's law with truncated-exponential sessions:
  // E[min(patience, l)] = 40(1 − e^{-3}).
  const double expected_viewers =
      0.5 * 40.0 * (1.0 - std::exp(-120.0 / 40.0));
  EXPECT_NEAR(report->mean_concurrent_viewers, expected_viewers, 1.5);
  // P(abandon before the end) = 1 − e^{-l/mean} ≈ 0.95.
  const double total_departures = static_cast<double>(
      report->abandonments);
  EXPECT_GT(total_departures, 0.0);
}

TEST(AbandonmentSimTest, SkewedModelTracksAbandoningViewers) {
  // The acid test: simulate abandonment, then compare the measured hit
  // probability against BOTH models. The q-weighted model must be closer
  // than the uniform one for the boundary-sensitive FF operation.
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  const double mean_patience = 45.0;

  SimulationOptions options;
  options.behavior = paper::Fig7SingleOpBehavior(VcrOp::kFastForward);
  options.patience =
      std::make_shared<ExponentialDistribution>(mean_patience);
  options.warmup_minutes = 2000.0;
  options.measurement_minutes = 40000.0;
  const auto report = RunSimulation(*layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->in_partition_resumes, 5000);

  const auto uniform = AnalyticHitModel::Create(*layout, paper::Rates());
  HitModelOptions skew_options;
  skew_options.position_density =
      EarlySkewedPositions(mean_patience, 120.0);
  const auto skewed =
      AnalyticHitModel::Create(*layout, paper::Rates(), skew_options);
  ASSERT_TRUE(uniform.ok() && skewed.ok());
  const auto p_uniform =
      uniform->HitProbability(VcrOp::kFastForward, paper::Fig7Duration());
  const auto p_skewed =
      skewed->HitProbability(VcrOp::kFastForward, paper::Fig7Duration());
  ASSERT_TRUE(p_uniform.ok() && p_skewed.ok());

  const double sim = report->hit_probability_in_partition;
  EXPECT_LT(std::fabs(sim - *p_skewed), std::fabs(sim - *p_uniform));
  EXPECT_NEAR(sim, *p_skewed, 0.05);
}

}  // namespace
}  // namespace vod
