// End-to-end reproduction of the paper's Section 5 pipeline: Example 1's
// three-movie allocation, the pure-batching baseline, and the Example 2 cost
// arithmetic — then a closing of the loop: simulate a sized movie and verify
// the promised hit probability and waiting time are delivered.

#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.h"
#include "core/sizing.h"
#include "sim/simulator.h"
#include "storage/disk_model.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

TEST(SizingPipelineTest, Example1StructureReproduced) {
  const auto movies = paper::Example1Movies();
  // Pure batching baseline: 1230 streams, zero buffer, zero hits.
  EXPECT_EQ(PureBatchingStreams(movies), 1230);

  const auto sized = SizeSystem(movies, /*stream_budget=*/1230);
  ASSERT_TRUE(sized.ok()) << sized.status();

  // The allocation must beat pure batching by roughly a factor of two
  // (paper: 602 streams + 113.5 buffer-minutes). Exact values depend on the
  // operation mix (unstated in the paper); the structure must hold:
  EXPECT_LT(sized->total_streams, 1230 / 1.5);
  EXPECT_GT(sized->total_streams, 1230 / 4);
  EXPECT_GT(sized->total_buffer_minutes, 60.0);
  EXPECT_LT(sized->total_buffer_minutes, 160.0);

  // Per-movie: B_i = l_i − n_i·w_i must hold, and every movie gets both
  // streams and buffer.
  ASSERT_EQ(sized->movies.size(), 3u);
  const double waits[3] = {0.1, 0.5, 0.25};
  const double lengths[3] = {75.0, 60.0, 90.0};
  for (int i = 0; i < 3; ++i) {
    const auto& m = sized->movies[i];
    EXPECT_NEAR(m.buffer_minutes, lengths[i] - m.streams * waits[i], 1e-9);
    EXPECT_GE(m.streams, 1);
    EXPECT_GT(m.buffer_minutes, 0.0);
    // Buffer stays near half the movie (P* = 0.5 with ~uniform coverage).
    EXPECT_GT(m.buffer_minutes, 0.3 * lengths[i]);
    EXPECT_LT(m.buffer_minutes, 0.75 * lengths[i]);
  }
}

TEST(SizingPipelineTest, MixedWorkloadReproducesExample1Numbers) {
  // With the Figure-7(d) mix (P_FF=0.2, P_RW=0.2, P_PAU=0.6) the sizing
  // reproduces the paper's Example 1 almost exactly:
  //   paper: [(39, 360), (30, 60), (44.5, 182)], ΣB = 113.5, Σn = 602
  //   ours : [(37.6, 374), (30, 60), (45, 180)], ΣB = 112.6, Σn = 614
  // (movie-2 matches exactly; the residual gap on movie-1/3 is within the
  // paper's own 5-minute buffer step). This strongly suggests the paper's
  // unstated sizing mix was its Figure-7(d) workload.
  const auto movies = paper::Example1Movies(VcrMix::PaperMixed());

  const auto m1 = MinimumBufferChoice(movies[0]);
  ASSERT_TRUE(m1.ok());
  EXPECT_NEAR(m1->buffer_minutes, 39.0, 2.5);
  EXPECT_NEAR(m1->streams, 360, 25);

  const auto m2 = MinimumBufferChoice(movies[1]);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->streams, 60);
  EXPECT_NEAR(m2->buffer_minutes, 30.0, 1e-9);

  const auto m3 = MinimumBufferChoice(movies[2]);
  ASSERT_TRUE(m3.ok());
  EXPECT_NEAR(m3->buffer_minutes, 44.5, 1.0);
  EXPECT_NEAR(m3->streams, 182, 4);

  const auto sized = SizeSystem(movies, 1230);
  ASSERT_TRUE(sized.ok());
  EXPECT_NEAR(sized->total_buffer_minutes, 113.5, 3.0);
  EXPECT_NEAR(sized->total_streams, 602, 25);
}

TEST(SizingPipelineTest, EverySizedMovieMeetsItsTarget) {
  const auto movies = paper::Example1Movies();
  for (const auto& spec : movies) {
    const auto choice = MinimumBufferChoice(spec);
    ASSERT_TRUE(choice.ok()) << spec.name << ": " << choice.status();
    EXPECT_GE(choice->hit_probability, spec.min_hit_probability) << spec.name;
    // And one more stream would violate it (minimality).
    const auto layout = PartitionLayout::FromMaxWait(
        spec.length_minutes, choice->streams + 1, spec.max_wait_minutes);
    if (layout.ok()) {
      const auto model = AnalyticHitModel::Create(*layout, spec.rates);
      ASSERT_TRUE(model.ok());
      const auto p = model->HitProbability(spec.mix, spec.durations);
      ASSERT_TRUE(p.ok());
      EXPECT_LT(*p, spec.min_hit_probability) << spec.name;
    }
  }
}

TEST(SizingPipelineTest, Example2CostPipeline) {
  // Hardware arithmetic feeding Eq. 23.
  const HardwareCosts costs;
  const auto disk_model = DiskModel::Create(DiskSpec{}, VideoFormat{});
  ASSERT_TRUE(disk_model.ok());
  EXPECT_DOUBLE_EQ(disk_model->CostPerStream(), costs.StreamCost());

  const auto movies = paper::Example1Movies();
  const auto sized = SizeSystem(movies, 1230);
  ASSERT_TRUE(sized.ok());

  const double dollars = AllocationCostDollars(*sized, costs);
  // Pure batching for comparison: 1230 streams, no buffer.
  AllocationResult pure;
  pure.total_streams = 1230;
  pure.total_buffer_minutes = 0.0;
  const double pure_dollars = AllocationCostDollars(pure, costs);
  // At 1997 prices memory dominates: the buffered configuration costs more
  // in dollars but delivers P(hit) >= 0.5 instead of 0 — this is the paper's
  // point that the *minimum-cost feasible* point must be found, not assumed.
  EXPECT_GT(dollars, 0.0);
  EXPECT_GT(pure_dollars, 0.0);

  // Disk farm sizing for the allocation's streams.
  const int disks = disk_model->DisksForBandwidth(sized->total_streams);
  EXPECT_EQ(disks, (sized->total_streams + 9) / 10);
}

TEST(SizingPipelineTest, CostCurveMinimumIsFeasibleAllocation) {
  const auto movies = paper::Example1Movies();
  std::vector<MovieAllocationBound> bounds;
  for (const auto& spec : movies) {
    const auto choice = MinimumBufferChoice(spec);
    ASSERT_TRUE(choice.ok());
    bounds.push_back({spec.name, spec.length_minutes, spec.max_wait_minutes,
                      choice->streams});
  }
  for (double phi : paper::Fig9PhiValues()) {
    const auto curve = ComputeCostCurve(bounds, phi, 100);
    ASSERT_TRUE(curve.ok());
    const CostCurvePoint best = MinimumCostPoint(*curve);
    EXPECT_GE(best.total_streams, 3);
    // Reconstruct the allocation at the optimum and check it is attainable.
    const auto allocation = AllocateStreamBudget(bounds, best.total_streams);
    ASSERT_TRUE(allocation.ok());
    EXPECT_NEAR(allocation->total_buffer_minutes, best.total_buffer_minutes,
                1e-9);
  }
}

TEST(SizingPipelineTest, SimulationDeliversThePromisedQoS) {
  // Size movie 2 (exp(5) durations, w = 0.5) and drive the simulator with
  // the resulting layout: the measured hit probability must reach P* and no
  // viewer may wait longer than w.
  const auto movies = paper::Example1Movies();
  const MovieSizingSpec& spec = movies[1];
  const auto choice = MinimumBufferChoice(spec);
  ASSERT_TRUE(choice.ok());

  const auto layout = PartitionLayout::FromMaxWait(
      spec.length_minutes, choice->streams, spec.max_wait_minutes);
  ASSERT_TRUE(layout.ok());

  SimulationOptions options;
  options.mean_interarrival_minutes = 0.5;  // popular movie
  options.behavior.mix = spec.mix;
  options.behavior.durations = spec.durations;
  options.behavior.interactivity = paper::DefaultInteractivity();
  options.warmup_minutes = 1000.0;
  options.measurement_minutes = 30000.0;
  const auto report = RunSimulation(*layout, spec.rates, options);
  ASSERT_TRUE(report.ok());

  EXPECT_LE(report->max_wait_minutes, spec.max_wait_minutes + 1e-9);
  // FF-to-end counts as release; the in-partition estimate tracks the model,
  // which was required to be >= 0.5. Allow simulation noise.
  EXPECT_GE(report->hit_probability_in_partition,
            spec.min_hit_probability - 0.03);
}

}  // namespace
}  // namespace vod
