#include "ctrl/migration.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "core/partition_layout.h"

namespace vod {
namespace {

PartitionLayout Layout(int streams, double buffer) {
  const auto layout = PartitionLayout::FromBuffer(120.0, streams, buffer);
  VOD_CHECK_OK(layout.status());
  return *layout;
}

// Scripted host: layouts are plain state, reclaim blocking is a switch the
// test flips, and every CommitLayout is journaled so rollback order is
// checkable.
class FakeHost final : public ControllerHost {
 public:
  explicit FakeHost(std::vector<PartitionLayout> layouts)
      : layouts_(std::move(layouts)) {}

  void CommitLayout(int32_t movie, double t,
                    const PartitionLayout& layout) override {
    layouts_[static_cast<size_t>(movie)] = layout;
    commits_.push_back({movie, t, layout});
  }
  const PartitionLayout& LiveLayout(int32_t movie) const override {
    return layouts_[static_cast<size_t>(movie)];
  }
  bool ReclaimBlocked() const override {
    return reclaim_blocked_ ||
           (block_after_commits_ >= 0 &&
            commits_.size() >= static_cast<size_t>(block_after_commits_));
  }
  int PressureLevel() const override { return 0; }

  void set_reclaim_blocked(bool blocked) { reclaim_blocked_ = blocked; }
  /// Degrade mid-flight: ReclaimBlocked turns true once `count` layouts
  /// have been committed.
  void block_after_commits(int count) { block_after_commits_ = count; }

  struct Commit {
    int32_t movie;
    double t;
    PartitionLayout layout;
  };
  const std::vector<Commit>& commits() const { return commits_; }

 private:
  std::vector<PartitionLayout> layouts_;
  std::vector<Commit> commits_;
  bool reclaim_blocked_ = false;
  int block_after_commits_ = -1;
};

MigrationOptions FastOptions() {
  MigrationOptions options;
  options.drain_slack_minutes = 1.0;
  options.backoff_initial_minutes = 2.0;
  options.backoff_factor = 2.0;
  options.backoff_max_minutes = 30.0;
  options.max_retries = 5;
  options.rollback_cooldown_minutes = 60.0;
  return options;
}

// Pumps Advance until the engine goes idle or `deadline` passes; returns
// the final time.
double PumpUntilIdle(MigrationEngine* engine, FakeHost* host, double t,
                     double deadline = 1e6) {
  while (t < deadline) {
    const double next = engine->Advance(t, host);
    if (!engine->InFlight() && std::isinf(next)) return t;
    if (std::isinf(next)) return t;
    t = next;
  }
  return t;
}

TEST(BuildMigrationStepsTest, ReclaimsBeforeGrantsAndNoOpsDropped) {
  const std::vector<PartitionLayout> current = {
      Layout(10, 40.0), Layout(8, 30.0), Layout(6, 20.0)};
  const std::vector<PartitionLayout> target = {
      Layout(6, 20.0), Layout(8, 30.0), Layout(10, 40.0)};
  const auto steps = BuildMigrationSteps(current, target);
  // Movie 1 is unchanged: no step. Movie 0 shrinks, movie 2 grows.
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_TRUE(steps[0].reclaim);
  EXPECT_EQ(steps[0].movie, 0);
  EXPECT_FALSE(steps[1].reclaim);
  EXPECT_EQ(steps[1].movie, 2);
}

TEST(BuildMigrationStepsTest, MixedChangeDecomposesThroughIntermediate) {
  // Movie trades streams for buffer: shrink streams first (reclaim), then
  // grow buffer (grant), via (min(n), min(B)).
  const auto steps = BuildMigrationSteps({Layout(10, 20.0)},
                                         {Layout(6, 50.0)});
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_TRUE(steps[0].reclaim);
  EXPECT_EQ(steps[0].to.streams(), 6);
  EXPECT_DOUBLE_EQ(steps[0].to.buffer_minutes(), 20.0);
  EXPECT_FALSE(steps[1].reclaim);
  EXPECT_EQ(steps[1].to.streams(), 6);
  EXPECT_DOUBLE_EQ(steps[1].to.buffer_minutes(), 50.0);
}

TEST(MigrationEngineTest, CommitsAndConservesResources) {
  FakeHost host({Layout(10, 40.0), Layout(6, 20.0)});
  MigrationEngine engine(FastOptions(), /*stream_budget=*/16,
                         /*buffer_budget=*/60.0, /*free_streams=*/0,
                         /*free_buffer=*/0.0, /*log=*/nullptr);
  auto steps = BuildMigrationSteps(
      {host.LiveLayout(0), host.LiveLayout(1)},
      {Layout(8, 30.0), Layout(8, 30.0)});
  ASSERT_TRUE(engine.Begin(0.0, std::move(steps), /*epoch=*/1));
  PumpUntilIdle(&engine, &host, 0.0);

  EXPECT_EQ(engine.last_outcome(), MigrationEngine::Outcome::kCommitted);
  EXPECT_EQ(host.LiveLayout(0).streams(), 8);
  EXPECT_EQ(host.LiveLayout(1).streams(), 8);
  EXPECT_EQ(engine.migrations_committed(), 1);
  // Conservation: everything granted came from the reclaim; nothing leaks.
  EXPECT_EQ(engine.free_streams() + engine.inflight_streams(), 0);
  EXPECT_NEAR(engine.free_buffer() + engine.inflight_buffer(), 0.0, 1e-9);
}

TEST(MigrationEngineTest, RefusesOverlappingMigrations) {
  FakeHost host({Layout(10, 40.0)});
  MigrationEngine engine(FastOptions(), 10, 40.0, 0, 0.0, nullptr);
  ASSERT_TRUE(engine.Begin(
      0.0, BuildMigrationSteps({Layout(10, 40.0)}, {Layout(8, 30.0)}), 1));
  EXPECT_FALSE(engine.Begin(
      0.0, BuildMigrationSteps({Layout(10, 40.0)}, {Layout(6, 20.0)}), 2));
  EXPECT_FALSE(engine.Begin(1.0, {}, 3));  // empty plans never start
}

TEST(MigrationEngineTest, BlockedReclaimBacksOffExponentiallyThenRollsBack) {
  FakeHost host({Layout(10, 40.0)});
  host.set_reclaim_blocked(true);
  const MigrationOptions options = FastOptions();
  MigrationEngine engine(options, 10, 40.0, 0, 0.0, nullptr);
  ASSERT_TRUE(engine.Begin(
      0.0, BuildMigrationSteps({Layout(10, 40.0)}, {Layout(8, 30.0)}), 1));

  // Each blocked attempt arms a capped exponential backoff: 2, 4, 8, 16,
  // 30 (capped) — then the retry budget is spent and the engine rolls back.
  double t = 0.0;
  std::vector<double> delays;
  for (int attempt = 0; attempt < options.max_retries; ++attempt) {
    const double next = engine.Advance(t, &host);
    ASSERT_TRUE(engine.InFlight());
    delays.push_back(next - t);
    t = next;
  }
  EXPECT_EQ(delays, (std::vector<double>{2.0, 4.0, 8.0, 16.0, 30.0}));
  EXPECT_EQ(engine.blocked_attempts(), options.max_retries);

  engine.Advance(t, &host);  // retry budget exhausted -> rollback
  EXPECT_FALSE(engine.InFlight());
  EXPECT_EQ(engine.last_outcome(), MigrationEngine::Outcome::kRolledBack);
  EXPECT_EQ(engine.rollbacks(), 1);
  EXPECT_EQ(host.LiveLayout(0).streams(), 10);  // untouched
  EXPECT_DOUBLE_EQ(host.LiveLayout(0).buffer_minutes(), 40.0);

  // Cool-down: no new migration until it expires.
  EXPECT_GT(engine.cooldown_until(), t);
  EXPECT_FALSE(engine.Begin(
      t, BuildMigrationSteps({Layout(10, 40.0)}, {Layout(8, 30.0)}), 2));
  EXPECT_TRUE(engine.Begin(
      engine.cooldown_until(),
      BuildMigrationSteps({Layout(10, 40.0)}, {Layout(8, 30.0)}), 2));
}

TEST(MigrationEngineTest, MidMigrationFaultRollsBackAppliedStepsInReverse) {
  // Two reclaims; the first applies, then the host degrades (fault) before
  // the second can. Retry exhaustion must roll back the applied step —
  // restoring movie 0's original layout — and leak nothing.
  FakeHost host({Layout(10, 40.0), Layout(8, 30.0)});
  host.block_after_commits(1);  // the fault lands after the first commit
  MigrationEngine engine(FastOptions(), 18, 70.0, 0, 0.0, nullptr);
  ASSERT_TRUE(engine.Begin(
      0.0,
      BuildMigrationSteps({host.LiveLayout(0), host.LiveLayout(1)},
                          {Layout(6, 20.0), Layout(6, 20.0)}),
      1));
  double t = 0.0;
  while (engine.InFlight()) {
    const double next = engine.Advance(t, &host);
    if (std::isinf(next)) break;
    t = next;
  }
  EXPECT_FALSE(engine.InFlight());
  EXPECT_EQ(engine.last_outcome(), MigrationEngine::Outcome::kRolledBack);
  EXPECT_EQ(engine.steps_applied(), 1);

  // Every movie is back on its original layout...
  EXPECT_EQ(host.LiveLayout(0).streams(), 10);
  EXPECT_DOUBLE_EQ(host.LiveLayout(0).buffer_minutes(), 40.0);
  EXPECT_EQ(host.LiveLayout(1).streams(), 8);
  EXPECT_DOUBLE_EQ(host.LiveLayout(1).buffer_minutes(), 30.0);
  // ...the restoring commit is the last one and undoes the applied step.
  const auto& commits = host.commits();
  ASSERT_EQ(commits.size(), 2u);
  EXPECT_EQ(commits.back().movie, 0);
  EXPECT_EQ(commits.back().layout.streams(), 10);
  // Nothing may leak: after rollback the pool holds exactly the initial
  // free resources (zero here).
  EXPECT_EQ(engine.free_streams(), 0);
  EXPECT_EQ(engine.inflight_streams(), 0);
  EXPECT_NEAR(engine.free_buffer(), 0.0, 1e-9);
}

TEST(MigrationEngineTest, AbortMidFlightRollsBackImmediately) {
  FakeHost host({Layout(10, 40.0), Layout(6, 20.0)});
  MigrationEngine engine(FastOptions(), 16, 60.0, 0, 0.0, nullptr);
  ASSERT_TRUE(engine.Begin(
      0.0,
      BuildMigrationSteps({host.LiveLayout(0), host.LiveLayout(1)},
                          {Layout(8, 30.0), Layout(8, 30.0)}),
      1));
  engine.Advance(0.0, &host);  // reclaim applied, grant waiting on drain
  ASSERT_TRUE(engine.InFlight());
  engine.Abort(1.0, &host);  // capacity collapsed mid-flight
  EXPECT_FALSE(engine.InFlight());
  EXPECT_EQ(engine.last_outcome(), MigrationEngine::Outcome::kRolledBack);
  EXPECT_EQ(host.LiveLayout(0).streams(), 10);
  EXPECT_EQ(host.LiveLayout(1).streams(), 6);
  EXPECT_EQ(engine.free_streams(), 0);
  EXPECT_EQ(engine.inflight_streams(), 0);
}

TEST(MigrationEngineTest, AbortWhileIdleIsANoOp) {
  FakeHost host({Layout(10, 40.0)});
  MigrationEngine engine(FastOptions(), 10, 40.0, 0, 0.0, nullptr);
  engine.Abort(5.0, &host);
  EXPECT_EQ(engine.rollbacks(), 0);
  EXPECT_EQ(engine.last_outcome(), MigrationEngine::Outcome::kNone);
  EXPECT_TRUE(host.commits().empty());
}

TEST(MigrationEngineTest, GrantWaitsForReclaimDrainToLand) {
  // One reclaim funds one grant: the grant cannot apply until the freed
  // resources mature (one old enrollment window + slack).
  FakeHost host({Layout(10, 40.0), Layout(6, 20.0)});
  MigrationEngine engine(FastOptions(), 16, 60.0, 0, 0.0, nullptr);
  ASSERT_TRUE(engine.Begin(
      0.0,
      BuildMigrationSteps({host.LiveLayout(0), host.LiveLayout(1)},
                          {Layout(8, 30.0), Layout(8, 30.0)}),
      1));
  const double next = engine.Advance(0.0, &host);
  // The reclaim applied immediately; the grant is waiting on the drain.
  EXPECT_EQ(host.LiveLayout(0).streams(), 8);
  EXPECT_EQ(host.LiveLayout(1).streams(), 6);
  ASSERT_TRUE(std::isfinite(next));
  EXPECT_GT(next, 0.0);
  EXPECT_GT(engine.inflight_streams(), 0);
  PumpUntilIdle(&engine, &host, next);
  EXPECT_EQ(host.LiveLayout(1).streams(), 8);
  EXPECT_EQ(engine.last_outcome(), MigrationEngine::Outcome::kCommitted);
}

TEST(MigrationOptionsTest, Validation) {
  EXPECT_TRUE(FastOptions().Validate().ok());
  MigrationOptions bad = FastOptions();
  bad.backoff_factor = 0.5;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = FastOptions();
  bad.max_retries = -1;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = FastOptions();
  bad.backoff_initial_minutes = 0.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

}  // namespace
}  // namespace vod
