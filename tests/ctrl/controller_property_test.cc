// Controller-level properties enforced end-to-end through the server.
//
// The two contracts this file pins down:
//   * quiescence — with stationary Poisson arrivals, a controller-enabled
//     run must be BYTE-identical to a controller-off run (randomized over
//     seeds): the control plane observes for free until there is drift;
//   * responsiveness — under a flash crowd the controller must actually
//     act (alarm, re-plan, migrate) and the audited conservation laws must
//     hold throughout, including the ctrl-* ledger laws.
// Plus direct corruption tests for the ctrl-* audit laws: each builds a
// snapshot with exactly one defect in the controller ledger and asserts
// the named invariant fires.

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/partition_layout.h"
#include "gtest/gtest.h"
#include "sim/arrival_process.h"
#include "sim/audit.h"
#include "sim/server.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

std::vector<ServerMovieSpec> ThreeMovies() {
  std::vector<ServerMovieSpec> movies;
  const double rates[] = {0.3, 0.15, 0.1};
  const int streams[] = {14, 9, 7};
  for (int i = 0; i < 3; ++i) {
    auto layout = PartitionLayout::FromMaxWait(120.0, streams[i], 1.0);
    VOD_CHECK_OK(layout.status());
    movies.push_back({"m" + std::to_string(i), *layout, rates[i],
                      /*arrivals=*/nullptr, paper::Fig7MixedBehavior()});
  }
  return movies;
}

ServerOptions BaseOptions(uint64_t seed) {
  ServerOptions options;
  options.rates = paper::Rates();
  options.dynamic_stream_reserve = 20;
  options.warmup_minutes = 100.0;
  options.measurement_minutes = 2000.0;
  options.seed = seed;
  options.degradation.enabled = true;
  options.degradation.queue_deadline_minutes = 5.0;
  return options;
}

// Randomized property: zero drift => controller on/off reports are
// byte-identical, for every seed.
TEST(ControllerPropertyTest, ZeroDriftRunsAreByteIdenticalAcrossSeeds) {
  for (uint64_t seed : {42u, 7u, 123u, 999u, 31337u}) {
    ServerOptions off = BaseOptions(seed);
    ServerOptions on = BaseOptions(seed);
    on.controller.enabled = true;
    on.audit.enabled = true;  // telemetry/audit must not perturb a byte
    const auto report_off = RunServerSimulation(ThreeMovies(), off);
    const auto report_on = RunServerSimulation(ThreeMovies(), on);
    ASSERT_TRUE(report_off.ok()) << report_off.status().ToString();
    ASSERT_TRUE(report_on.ok()) << report_on.status().ToString();
    EXPECT_FALSE(report_on->controller.Active()) << "seed " << seed;
    EXPECT_EQ(report_off->ToString(), report_on->ToString())
        << "seed " << seed;
  }
}

TEST(ControllerPropertyTest, FlashCrowdActivatesControllerUnderCleanAudit) {
  std::vector<ServerMovieSpec> movies = ThreeMovies();
  const auto flash = FlashArrivals::Create(
      movies[0].arrival_rate_per_minute, /*peak_factor=*/4.0,
      /*start_minutes=*/200.0, /*duration_minutes=*/1200.0);
  ASSERT_TRUE(flash.ok());
  movies[0].arrivals = std::make_shared<FlashArrivals>(*flash);

  ServerOptions options = BaseOptions(42);
  options.measurement_minutes = 3000.0;
  options.controller.enabled = true;
  options.audit.enabled = true;  // a violated law would fail the run
  const auto report = RunServerSimulation(movies, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_TRUE(report->controller.Active());
  EXPECT_GT(report->controller.drift_alarms, 0);
  EXPECT_GT(report->controller.plans_solved, 0);
  EXPECT_GT(report->controller.migrations_committed, 0);
  EXPECT_EQ(report->controller.migrations_started,
            report->controller.migrations_committed +
                report->controller.rollbacks)
      << "every started migration must end committed or rolled back";
}

// -- ctrl-* audit law corruption tests ------------------------------------

AuditOptions ParanoidAudit() {
  AuditOptions options;
  options.enabled = true;
  options.every_events = 1;
  return options;
}

// A healthy snapshot whose controller ledger balances: 30 live + 4 free +
// 2 in-flight == 36 budget (and the same in buffer minutes).
AuditSnapshot BalancedSnapshot() {
  AuditSnapshot s;
  s.time = 50.0;
  s.supplier_in_use = 0;
  s.sum_world_holds = 0;
  s.supplier_capacity = 20;
  s.nominal_capacity = 20;
  auto layout = PartitionLayout::FromBuffer(120.0, 30, 60.0);
  VOD_CHECK_OK(layout.status());
  s.movies.push_back(BuildMovieAuditBuffers("m0", *layout));
  s.controller.enabled = true;
  s.controller.stream_budget = 36;
  s.controller.buffer_budget = 70.0;
  s.controller.sum_live_streams = 30;
  s.controller.sum_live_buffer = 60.0;
  s.controller.free_streams = 4;
  s.controller.free_buffer = 6.0;
  s.controller.inflight_streams = 2;
  s.controller.inflight_buffer = 4.0;
  s.controller.epoch = 3;
  s.controller.steps_planned = 5;
  s.controller.steps_applied = 4;
  return s;
}

bool Fired(const InvariantAuditor& auditor, const std::string& name) {
  for (const AuditViolation& v : auditor.violations()) {
    if (v.invariant == name) return true;
  }
  return false;
}

TEST(ControllerAuditLawTest, BalancedLedgerIsClean) {
  InvariantAuditor auditor(ParanoidAudit());
  auditor.Audit(BalancedSnapshot());
  EXPECT_EQ(auditor.total_violations(), 0);
}

TEST(ControllerAuditLawTest, LeakedStreamFiresCtrlStreamConservation) {
  InvariantAuditor auditor(ParanoidAudit());
  AuditSnapshot s = BalancedSnapshot();
  s.controller.free_streams = 3;  // one stream vanished from the pool
  auditor.Audit(s);
  EXPECT_TRUE(Fired(auditor, "ctrl-stream-conservation"));
}

TEST(ControllerAuditLawTest, LeakedBufferFiresCtrlBufferConservation) {
  InvariantAuditor auditor(ParanoidAudit());
  AuditSnapshot s = BalancedSnapshot();
  s.controller.inflight_buffer += 0.5;  // buffer minutes out of thin air
  auditor.Audit(s);
  EXPECT_TRUE(Fired(auditor, "ctrl-buffer-conservation"));
}

TEST(ControllerAuditLawTest, OverAppliedStepsFireCtrlNoDoubleGrant) {
  InvariantAuditor auditor(ParanoidAudit());
  AuditSnapshot s = BalancedSnapshot();
  s.controller.steps_applied = s.controller.steps_planned + 1;
  auditor.Audit(s);
  EXPECT_TRUE(Fired(auditor, "ctrl-no-double-grant"));
}

TEST(ControllerAuditLawTest, RewoundEpochFiresCtrlEpochMonotonic) {
  InvariantAuditor auditor(ParanoidAudit());
  AuditSnapshot healthy = BalancedSnapshot();
  auditor.Audit(healthy);
  AuditSnapshot rewound = BalancedSnapshot();
  rewound.time = 60.0;
  rewound.controller.epoch = 2;  // the plan epoch moved backwards
  auditor.Audit(rewound);
  EXPECT_TRUE(Fired(auditor, "ctrl-epoch-monotonic"));
}

TEST(ControllerAuditLawTest, DisabledLedgerIsNeverChecked) {
  InvariantAuditor auditor(ParanoidAudit());
  AuditSnapshot s = BalancedSnapshot();
  s.controller.free_streams = -5;  // nonsense, but the plane is off
  s.controller.enabled = false;
  auditor.Audit(s);
  EXPECT_EQ(auditor.total_violations(), 0);
}

}  // namespace
}  // namespace vod
