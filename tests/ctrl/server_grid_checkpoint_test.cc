// Server-grid checkpointing: the ServerReport codec and the
// RunCheckpointedServerGrid runner — the recovery path `vodctl simulate
// --movies=N --replications=R --checkpoint=...` rides on. Cells here run
// whole server simulations with faults, degradation, AND the reallocation
// controller under a flash crowd, so the serialized reports carry the full
// resilience block (transition log included) and an Active controller
// block — the fields a pre-controller codec would silently drop.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/serialize.h"
#include "core/partition_layout.h"
#include "exp/checkpoint.h"
#include "gtest/gtest.h"
#include "sim/arrival_process.h"
#include "sim/server.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_("server_grid_test_" + name + ".ckpt") {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

/// One whole-server cell: two movies, the first under a flash crowd, with
/// faults + degradation + controller + audit all on. config_index varies
/// the reserve so every config has a distinct report.
ServerReport RunServerCell(const CellContext& context) {
  std::vector<ServerMovieSpec> movies;
  auto hot = PartitionLayout::FromMaxWait(120.0, 12, 1.0);
  auto cold = PartitionLayout::FromMaxWait(120.0, 8, 1.0);
  VOD_CHECK(hot.ok() && cold.ok());
  movies.push_back({"hot", *hot, 0.3, nullptr, paper::Fig7MixedBehavior()});
  movies.push_back({"cold", *cold, 0.15, nullptr,
                    paper::Fig7MixedBehavior()});
  auto flash = FlashArrivals::Create(0.3, 4.0, 100.0, 600.0);
  VOD_CHECK(flash.ok());
  movies[0].arrivals = std::make_shared<FlashArrivals>(*flash);

  ServerOptions options;
  options.rates = paper::Rates();
  options.dynamic_stream_reserve = 10 + 5 * context.config_index;
  options.warmup_minutes = 50.0;
  options.measurement_minutes = 1200.0;
  options.seed = context.seed;
  options.faults.enabled = true;
  options.faults.disks = 2;
  options.faults.profile.mtbf_minutes = 800.0;
  options.faults.profile.mttr_minutes = 60.0;
  options.degradation.enabled = true;
  options.degradation.queue_deadline_minutes = 5.0;
  options.controller.enabled = true;
  options.audit.enabled = true;
  auto report = RunServerSimulation(movies, options);
  VOD_CHECK(report.ok());
  return *report;
}

constexpr int64_t kConfigs = 2;
constexpr uint64_t kFingerprint = 0x5E12F12D;

ExperimentOptions GridOptions(int threads) {
  ExperimentOptions options;
  options.threads = threads;
  options.replications = 2;
  options.base_seed = 424242;
  return options;
}

std::string GridText(const std::vector<std::vector<ServerReport>>& grid) {
  std::string text;
  for (const auto& row : grid) {
    for (const auto& report : row) {
      text += report.ToString();
      text += '\n';
    }
  }
  return text;
}

TEST(ServerReportCodecTest, RoundTripsBitExactlyWithAllBlocks) {
  const ServerReport original = RunServerCell(CellContext{1, 0, 777});
  // The cell must actually exercise the optional blocks, or this test
  // proves nothing about them.
  ASSERT_TRUE(original.resilience_enabled);
  ASSERT_TRUE(original.controller_enabled);
  ASSERT_TRUE(original.controller.Active());

  ByteWriter w;
  SerializeServerReport(original, &w);
  ByteReader in(w.bytes());
  ServerReport copy;
  ASSERT_TRUE(DeserializeServerReport(&in, &copy).ok());
  EXPECT_TRUE(in.AtEnd());
  ByteWriter w2;
  SerializeServerReport(copy, &w2);
  EXPECT_EQ(w.bytes(), w2.bytes());
  EXPECT_EQ(original.ToString(), copy.ToString());
}

TEST(ServerReportCodecTest, TruncationIsAnErrorNotACrash) {
  ByteWriter w;
  SerializeServerReport(ServerReport{}, &w);
  const std::string bytes = w.bytes().substr(0, w.size() / 2);
  ByteReader in(bytes);
  ServerReport report;
  EXPECT_FALSE(DeserializeServerReport(&in, &report).ok());
}

TEST(ServerGridCheckpointTest, InterruptResumeIsByteIdentical) {
  // Reference: uncheckpointed serial run.
  CheckpointOptions no_checkpoint;
  auto reference = RunCheckpointedServerGrid(kConfigs, GridOptions(1),
                                             no_checkpoint, kFingerprint,
                                             RunServerCell);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(reference->complete);
  const std::string expected = GridText(reference->reports);

  // Interrupted run: stop after 1 cell, checkpointing every cell.
  TempPath path("resume");
  CheckpointOptions checkpoint;
  checkpoint.path = path.str();
  checkpoint.checkpoint_every = 1;
  checkpoint.max_cells = 1;
  auto interrupted = RunCheckpointedServerGrid(kConfigs, GridOptions(1),
                                               checkpoint, kFingerprint,
                                               RunServerCell);
  ASSERT_TRUE(interrupted.ok()) << interrupted.status().ToString();
  ASSERT_FALSE(interrupted->complete);

  // Resume (multi-threaded, to prove recombination is order-independent).
  CheckpointOptions resume = checkpoint;
  resume.max_cells = -1;
  resume.resume = true;
  auto resumed = RunCheckpointedServerGrid(kConfigs, GridOptions(2), resume,
                                           kFingerprint, RunServerCell);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE(resumed->complete);
  EXPECT_GT(resumed->cells_restored, 0);
  EXPECT_EQ(GridText(resumed->reports), expected);
}

TEST(ServerGridCheckpointTest, ResumeRefusesForeignFingerprint) {
  TempPath path("foreign");
  CheckpointOptions checkpoint;
  checkpoint.path = path.str();
  checkpoint.checkpoint_every = 1;
  checkpoint.max_cells = 1;
  ASSERT_TRUE(RunCheckpointedServerGrid(kConfigs, GridOptions(1), checkpoint,
                                        kFingerprint, RunServerCell)
                  .ok());
  CheckpointOptions resume = checkpoint;
  resume.max_cells = -1;
  resume.resume = true;
  EXPECT_FALSE(RunCheckpointedServerGrid(kConfigs, GridOptions(1), resume,
                                         kFingerprint + 1, RunServerCell)
                   .ok());
}

}  // namespace
}  // namespace vod
