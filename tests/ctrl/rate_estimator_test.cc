#include "ctrl/rate_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace vod {
namespace {

RateEstimatorOptions Options(double tau = 120.0) {
  RateEstimatorOptions options;
  options.ewma_tau_minutes = tau;
  return options;
}

// Feeds Poisson(rate) arrivals over `minutes`, returns the final time.
double FeedPoisson(RateEstimator* estimator, double rate, double minutes,
                   Rng* rng, double t0 = 0.0) {
  double t = t0;
  for (;;) {
    t += rng->Exponential(1.0 / rate);
    if (t > t0 + minutes) return t0 + minutes;
    estimator->Observe(t);
  }
}

TEST(RateEstimatorOptionsTest, Validation) {
  EXPECT_TRUE(Options().Validate().ok());
  RateEstimatorOptions bad = Options();
  bad.ewma_tau_minutes = 0.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = Options();
  bad.ewma_tau_minutes = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = Options();
  bad.ph_threshold_sigma = 0.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = Options();
  bad.ph_delta_sigma = -1.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

// The shot-noise filter's stationary mean is lambda — the length bias that
// sinks a gap-EWMA (which converges to E[gap^2]/E[gap] = 2/lambda, i.e. an
// estimate of lambda/2) must not reappear.
TEST(RateEstimatorTest, ShotNoiseEstimateIsUnbiasedForPoisson) {
  const double rate = 0.5;
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    RateEstimator estimator(Options(), rate, 0.0);
    // Long horizon relative to tau so the filter forgets its init.
    const double end = FeedPoisson(&estimator, rate, 20000.0, &rng);
    EXPECT_NEAR(estimator.RateAt(end) / rate, 1.0, 0.25) << "seed " << seed;
  }
}

TEST(RateEstimatorTest, EstimateDecaysThroughSilence) {
  Rng rng(11);
  RateEstimator estimator(Options(), 1.0, 0.0);
  const double end = FeedPoisson(&estimator, 1.0, 2000.0, &rng);
  const double busy = estimator.RateAt(end);
  EXPECT_GT(busy, 0.5);
  // One tau of silence decays the estimate by e^-1; ten taus kill it.
  EXPECT_NEAR(estimator.RateAt(end + 120.0), busy * std::exp(-1.0), 1e-12);
  EXPECT_LT(estimator.RateAt(end + 1200.0), 0.001);
}

TEST(RateEstimatorTest, NoAlarmUnderStationaryTraffic) {
  for (uint64_t seed : {42u, 7u, 123u, 999u}) {
    Rng rng(seed);
    RateEstimator estimator(Options(), 0.5, 0.0);
    FeedPoisson(&estimator, 0.5, 30000.0, &rng);
    EXPECT_FALSE(estimator.DriftAlarm()) << "seed " << seed;
  }
}

TEST(RateEstimatorTest, AlarmsOnUpwardRateStep) {
  Rng rng(5);
  RateEstimator estimator(Options(), 0.5, 0.0);
  FeedPoisson(&estimator, 0.5, 3000.0, &rng);
  ASSERT_FALSE(estimator.DriftAlarm());
  // 4x flash crowd: residual ~3 sigma-units per tau-spaced sample, so the
  // 20-sigma threshold falls within a few taus.
  FeedPoisson(&estimator, 2.0, 1500.0, &rng, 3000.0);
  EXPECT_TRUE(estimator.DriftAlarm());
}

TEST(RateEstimatorTest, AlarmsOnPopularityCollapse) {
  Rng rng(6);
  RateEstimator estimator(Options(), 2.0, 0.0);
  FeedPoisson(&estimator, 2.0, 3000.0, &rng);
  ASSERT_FALSE(estimator.DriftAlarm());
  FeedPoisson(&estimator, 0.1, 6000.0, &rng, 3000.0);
  EXPECT_TRUE(estimator.DriftAlarm());
}

TEST(RateEstimatorTest, RebaseClearsAlarmAndKeepsTracking) {
  Rng rng(8);
  RateEstimator estimator(Options(), 0.5, 0.0);
  FeedPoisson(&estimator, 0.5, 3000.0, &rng);
  FeedPoisson(&estimator, 2.0, 2000.0, &rng, 3000.0);
  ASSERT_TRUE(estimator.DriftAlarm());
  estimator.Rebase(2.0);
  EXPECT_FALSE(estimator.DriftAlarm());
  EXPECT_DOUBLE_EQ(estimator.baseline(), 2.0);
  // At the new baseline the same traffic is no longer drift.
  FeedPoisson(&estimator, 2.0, 10000.0, &rng, 5000.0);
  EXPECT_FALSE(estimator.DriftAlarm());
}

// The noise floor shrinks with lambda*tau: a hotter movie gets a tighter
// detector, a colder one a looser one — this scaling is what makes one
// sigma-denominated threshold work across the whole catalog.
TEST(RateEstimatorTest, NoiseFloorScalesWithRateAndTau) {
  RateEstimator hot(Options(), 2.0, 0.0);
  RateEstimator cold(Options(), 0.02, 0.0);
  EXPECT_LT(hot.sigma(), cold.sigma());
  EXPECT_NEAR(hot.sigma(), 1.0 / std::sqrt(2.0 * 2.0 * 120.0), 1e-12);
  RateEstimator long_memory(Options(480.0), 2.0, 0.0);
  EXPECT_LT(long_memory.sigma(), hot.sigma());
}

TEST(RateEstimatorTest, CountsObservations) {
  RateEstimator estimator(Options(), 1.0, 0.0);
  estimator.Observe(1.0);
  estimator.Observe(2.0);
  estimator.Observe(2.0);  // simultaneous arrivals are legal
  EXPECT_EQ(estimator.observations(), 3);
}

}  // namespace
}  // namespace vod
