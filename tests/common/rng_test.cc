#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "stats/summary.h"

namespace vod {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  // xoshiro would be degenerate with all-zero state; the SplitMix64 seeding
  // must avoid that.
  uint64_t x = 0;
  for (int i = 0; i < 16; ++i) x |= rng.NextUint64();
  EXPECT_NE(x, 0u);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.Uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanAndVariance) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Uniform01());
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.003);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntUnbiasedSmallBound) {
  Rng rng(17);
  std::vector<int> counts(5, 0);
  const int trials = 250000;
  for (int i = 0; i < trials; ++i) counts[rng.UniformInt(5)]++;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.2, 0.01);
  }
}

TEST(RngTest, UniformIntStaysBelowBound) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.UniformInt(7), 7u);
  }
  // bound 1 must always return 0.
  for (int i = 0; i < 100; ++i) ASSERT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.05);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.02);
}

TEST(RngTest, GammaMomentsShapeAboveOne) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Gamma(2.0, 4.0));
  EXPECT_NEAR(stats.mean(), 8.0, 0.1);        // kθ
  EXPECT_NEAR(stats.variance(), 32.0, 1.0);   // kθ²
}

TEST(RngTest, GammaMomentsShapeBelowOne) {
  Rng rng(37);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Gamma(0.5, 2.0));
  EXPECT_NEAR(stats.mean(), 1.0, 0.03);
  EXPECT_NEAR(stats.variance(), 2.0, 0.15);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
  }
}

TEST(RngTest, ChildStreamsAreDeterministic) {
  Rng parent(99);
  Rng c1 = parent.MakeChild(2, 7);
  Rng c2 = parent.MakeChild(2, 7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(c1.NextUint64(), c2.NextUint64());
}

TEST(RngTest, ChildStreamsDecorrelatedAcrossIndices) {
  Rng parent(99);
  Rng c1 = parent.MakeChild(2, 7);
  Rng c2 = parent.MakeChild(2, 8);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (c1.NextUint64() == c2.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ChildStreamsDecorrelatedAcrossClasses) {
  Rng parent(99);
  Rng c1 = parent.MakeChild(1, 7);
  Rng c2 = parent.MakeChild(2, 7);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (c1.NextUint64() == c2.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ChildDerivationDoesNotAdvanceParent) {
  Rng parent(5);
  Rng probe(5);
  (void)parent.MakeChild(3, 3);
  EXPECT_EQ(parent.NextUint64(), probe.NextUint64());
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

TEST(RngTest, SnapshotRestoreResumesSequenceExactly) {
  Rng original(987654321);
  for (int i = 0; i < 137; ++i) original.NextUint64();  // mid-stream

  ByteWriter snapshot;
  original.Snapshot(&snapshot);

  // Advance the original past the snapshot point and record its future.
  std::vector<uint64_t> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(original.NextUint64());
  const uint64_t expected_child = original.MakeChild(5, 9).NextUint64();

  Rng restored(1);  // deliberately different seed; Restore must overwrite
  ByteReader reader(snapshot.bytes());
  ASSERT_TRUE(restored.Restore(&reader).ok());
  EXPECT_TRUE(reader.AtEnd());
  for (uint64_t v : expected) {
    ASSERT_EQ(restored.NextUint64(), v);
  }
  // Child derivation depends on the retained seed, which must also survive.
  EXPECT_EQ(restored.MakeChild(5, 9).NextUint64(), expected_child);
}

TEST(RngTest, RestoreFromTruncatedSnapshotLeavesStateUntouched) {
  Rng rng(42);
  const uint64_t before = Rng(42).NextUint64();
  ByteWriter snapshot;
  rng.Snapshot(&snapshot);
  const std::string cut = snapshot.bytes().substr(0, 12);  // mid-word
  ByteReader reader(cut);
  EXPECT_FALSE(rng.Restore(&reader).ok());
  EXPECT_EQ(rng.NextUint64(), before);
}

TEST(SplitMix64Test, KnownSequenceAdvances) {
  SplitMix64 mixer(0);
  const uint64_t a = mixer.Next();
  const uint64_t b = mixer.Next();
  EXPECT_NE(a, b);
  SplitMix64 again(0);
  EXPECT_EQ(again.Next(), a);
}

}  // namespace
}  // namespace vod
