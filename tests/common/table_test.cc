#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace vod {
namespace {

TEST(TableWriterTest, RendersAlignedTable) {
  TableWriter t({"n", "P(hit)"});
  t.AddRow({"40", "0.66"});
  t.AddRow({"100", "0.21"});
  std::ostringstream os;
  t.RenderText(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| n   | P(hit) |"), std::string::npos);
  EXPECT_NE(out.find("| 40  | 0.66   |"), std::string::npos);
  EXPECT_NE(out.find("| 100 | 0.21   |"), std::string::npos);
  // Header rule + top/bottom rules.
  size_t rules = 0;
  for (size_t pos = out.find('+'); pos != std::string::npos;
       pos = out.find('+', pos + 1)) {
    if (pos == 0 || out[pos - 1] == '\n') ++rules;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(TableWriterTest, NumericRowFormatsWithPrecision) {
  TableWriter t({"a", "b"});
  t.AddNumericRow({1.23456, 2.0}, 3);
  std::ostringstream os;
  t.RenderCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1.235,2.000\n");
}

TEST(TableWriterTest, CsvEscapesSpecialCharacters) {
  TableWriter t({"name", "value"});
  t.AddRow({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.RenderCsv(os);
  EXPECT_EQ(os.str(), "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(TableWriterTest, CountsRowsAndCols) {
  TableWriter t({"x", "y", "z"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableWriterTest, MismatchedRowWidthAborts) {
  TableWriter t({"x", "y"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "row width");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace vod
