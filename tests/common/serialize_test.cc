#include "common/serialize.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>

#include "gtest/gtest.h"

namespace vod {
namespace {

// Temp-file helper: unique path under the test's working directory,
// removed on destruction.
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_("serialize_test_" + name + ".snap") {
    std::remove(path_.c_str());
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& get() const { return path_; }

 private:
  std::string path_;
};

std::string ReadRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ByteCodecTest, RoundTripsEveryType) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutDouble(3.141592653589793);
  w.PutDouble(-0.0);
  w.PutDouble(std::numeric_limits<double>::infinity());
  w.PutString("checkpoint");
  w.PutString("");

  ByteReader r(w.bytes());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  bool b;
  double d1, d2, d3;
  std::string s1, s2;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadBool(&b).ok());
  ASSERT_TRUE(r.ReadDouble(&d1).ok());
  ASSERT_TRUE(r.ReadDouble(&d2).ok());
  ASSERT_TRUE(r.ReadDouble(&d3).ok());
  ASSERT_TRUE(r.ReadString(&s1).ok());
  ASSERT_TRUE(r.ReadString(&s2).ok());
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_TRUE(b);
  EXPECT_EQ(d1, 3.141592653589793);
  EXPECT_EQ(d2, 0.0);
  EXPECT_TRUE(std::signbit(d2));  // -0.0 round-trips exactly
  EXPECT_EQ(d3, std::numeric_limits<double>::infinity());
  EXPECT_EQ(s1, "checkpoint");
  EXPECT_EQ(s2, "");
}

TEST(ByteCodecTest, LittleEndianOnTheWire) {
  ByteWriter w;
  w.PutU32(0x01020304u);
  const std::string& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(b[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(b[3]), 0x01);
}

TEST(ByteCodecTest, TruncatedReadFailsWithoutAdvancing) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.bytes());
  uint64_t u64;
  const Status st = r.ReadU64(&u64);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("truncated"), std::string::npos);
  // The 4 bytes are still readable as a u32.
  uint32_t u32;
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  EXPECT_EQ(u32, 7u);
}

TEST(ByteCodecTest, StringLengthBeyondBufferIsRejected) {
  ByteWriter w;
  w.PutU32(1000);  // declared length far past the end
  w.PutU8('x');
  ByteReader r(w.bytes());
  std::string s;
  EXPECT_FALSE(r.ReadString(&s).ok());
}

TEST(Crc32Test, MatchesKnownVector) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(SnapshotFileTest, RoundTrip) {
  TempPath path("roundtrip");
  const std::string payload = "grid state \x00 with binary\xff bytes";
  ASSERT_TRUE(
      WriteSnapshotFile(path.get(), SnapshotPayload::kExperimentGrid, payload)
          .ok());
  const auto read =
      ReadSnapshotFile(path.get(), SnapshotPayload::kExperimentGrid);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
}

TEST(SnapshotFileTest, MissingFileIsNotFound) {
  const auto read = ReadSnapshotFile("no_such_snapshot_file.snap",
                                     SnapshotPayload::kExperimentGrid);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsNotFound());
}

TEST(SnapshotFileTest, RejectsForeignFile) {
  TempPath path("foreign");
  WriteRaw(path.get(), "this is just a text file, not a snapshot at all");
  const auto read =
      ReadSnapshotFile(path.get(), SnapshotPayload::kExperimentGrid);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsInvalidArgument());
  EXPECT_NE(read.status().message().find("magic"), std::string::npos);
}

TEST(SnapshotFileTest, RejectsTruncatedHeader) {
  TempPath path("short");
  WriteRaw(path.get(), "VODSNAP");  // shorter than the fixed header
  const auto read =
      ReadSnapshotFile(path.get(), SnapshotPayload::kExperimentGrid);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("truncated"), std::string::npos);
}

TEST(SnapshotFileTest, RejectsTruncatedPayload) {
  TempPath path("cut");
  ASSERT_TRUE(WriteSnapshotFile(path.get(), SnapshotPayload::kExperimentGrid,
                                "0123456789abcdef")
                  .ok());
  std::string bytes = ReadRaw(path.get());
  bytes.resize(bytes.size() - 5);  // chop mid-payload
  WriteRaw(path.get(), bytes);
  const auto read =
      ReadSnapshotFile(path.get(), SnapshotPayload::kExperimentGrid);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsInvalidArgument());
  EXPECT_NE(read.status().message().find("truncated"), std::string::npos);
}

TEST(SnapshotFileTest, RejectsBitFlip) {
  TempPath path("flip");
  ASSERT_TRUE(WriteSnapshotFile(path.get(), SnapshotPayload::kExperimentGrid,
                                "0123456789abcdef")
                  .ok());
  std::string bytes = ReadRaw(path.get());
  bytes[bytes.size() - 3] ^= 0x40;  // flip one payload bit
  WriteRaw(path.get(), bytes);
  const auto read =
      ReadSnapshotFile(path.get(), SnapshotPayload::kExperimentGrid);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("checksum"), std::string::npos);
}

TEST(SnapshotFileTest, RejectsVersionMismatch) {
  TempPath path("version");
  ASSERT_TRUE(WriteSnapshotFile(path.get(), SnapshotPayload::kExperimentGrid,
                                "payload")
                  .ok());
  std::string bytes = ReadRaw(path.get());
  bytes[8] = static_cast<char>(kSnapshotFormatVersion + 7);  // version field
  WriteRaw(path.get(), bytes);
  const auto read =
      ReadSnapshotFile(path.get(), SnapshotPayload::kExperimentGrid);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("format version"), std::string::npos);
}

TEST(SnapshotFileTest, RejectsPayloadTypeMismatch) {
  TempPath path("type");
  ASSERT_TRUE(
      WriteSnapshotFile(path.get(), SnapshotPayload::kRng, "payload").ok());
  const auto read =
      ReadSnapshotFile(path.get(), SnapshotPayload::kExperimentGrid);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("payload type"), std::string::npos);
}

TEST(SnapshotFileTest, OverwriteIsAtomic) {
  TempPath path("overwrite");
  ASSERT_TRUE(
      WriteSnapshotFile(path.get(), SnapshotPayload::kRng, "first").ok());
  ASSERT_TRUE(
      WriteSnapshotFile(path.get(), SnapshotPayload::kRng, "second").ok());
  const auto read = ReadSnapshotFile(path.get(), SnapshotPayload::kRng);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, "second");
  // No temp residue after a successful publish.
  std::ifstream tmp(path.get() + ".tmp");
  EXPECT_FALSE(tmp.good());
}

}  // namespace
}  // namespace vod
