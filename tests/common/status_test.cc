#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace vod {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NumericError("x").IsNumericError());
  EXPECT_TRUE(Status::Infeasible("x").IsInfeasible());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_EQ(Status::NotFound("movie 7").message(), "movie 7");
}

TEST(StatusTest, ErrorStatusesAreNotOk) {
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
  EXPECT_FALSE(Status::Internal("bug").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad n").ToString(),
            "InvalidArgument: bad n");
  EXPECT_EQ(Status(StatusCode::kInfeasible, "").ToString(), "Infeasible");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::NotFound("m");
  EXPECT_EQ(os.str(), "NotFound: m");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericError), "NumericError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace macros {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  VOD_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  VOD_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

}  // namespace macros

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macros::Chain(1).ok());
  EXPECT_TRUE(macros::Chain(-1).IsInvalidArgument());
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesAndAssigns) {
  Result<int> ok = macros::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_TRUE(macros::Quarter(6).status().IsInvalidArgument());  // 3 is odd
  EXPECT_TRUE(macros::Quarter(7).status().IsInvalidArgument());
}

}  // namespace
}  // namespace vod
