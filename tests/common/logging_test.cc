#include "common/logging.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

// The logger writes to stderr; these tests exercise the level gate and the
// macro's short-circuiting rather than capturing output.

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarning) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kError, LogLevel::kWarning,
                         LogLevel::kInfo, LogLevel::kDebug}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, SuppressedLevelsDoNotEvaluateTheStream) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&evaluations]() {
    ++evaluations;
    return "payload";
  };
  VOD_LOG(kDebug) << expensive();  // above verbosity: must not evaluate
  EXPECT_EQ(evaluations, 0);
  VOD_LOG(kError) << expensive();  // at verbosity: evaluates (and prints)
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, EnabledLevelsEmitWithoutCrashing) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  VOD_LOG(kError) << "error line " << 1;
  VOD_LOG(kWarning) << "warning line " << 2.5;
  VOD_LOG(kInfo) << "info line " << "text";
  VOD_LOG(kDebug) << "debug line";
  SUCCEED();
}

}  // namespace
}  // namespace vod
