// ThreadPool: inline mode, queue draining, and ParallelFor coverage.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace vod {
namespace {

TEST(ThreadPoolTest, InlinePoolOwnsNoThreads) {
  ThreadPool pool0(0);
  ThreadPool pool1(1);
  EXPECT_EQ(pool0.num_threads(), 0);
  EXPECT_EQ(pool1.num_threads(), 0);
}

TEST(ThreadPoolTest, InlineSubmitRunsBeforeReturning) {
  ThreadPool pool(1);
  int ran = 0;
  pool.Submit([&] { ran = 1; });
  // No Wait() needed: the inline pool executes on the calling thread.
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    const int64_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, [&](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " with " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](int64_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPoolTest, ParallelForResultsIndependentOfThreadCount) {
  // Disjoint-slot writes: the reduced value must not depend on scheduling.
  const int64_t n = 500;
  std::vector<int64_t> expected;
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<int64_t> out(static_cast<size_t>(n), 0);
    pool.ParallelFor(n, [&](int64_t i) { out[static_cast<size_t>(i)] = i * i; });
    if (expected.empty()) {
      expected = out;
    } else {
      EXPECT_EQ(out, expected) << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossParallelForCalls) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, [&](int64_t i) { sum.fetch_add(i); });
  pool.ParallelFor(10, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 2 * 45);
}

TEST(ThreadPoolTest, DefaultParallelismIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1);
}

}  // namespace
}  // namespace vod
