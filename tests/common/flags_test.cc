#include "common/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace vod {
namespace {

// Builds a mutable argv from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    for (auto& s : storage_) argv_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
};

FlagSet MakeFlags() {
  FlagSet flags("test_prog");
  flags.AddInt64("seed", 42, "rng seed");
  flags.AddDouble("wait", 1.0, "max wait");
  flags.AddBool("csv", false, "csv output");
  flags.AddString("dist", "gamma(2,4)", "duration spec");
  return flags;
}

TEST(FlagsTest, DefaultsApplyWithoutArguments) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt64("seed"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("wait"), 1.0);
  EXPECT_FALSE(flags.GetBool("csv"));
  EXPECT_EQ(flags.GetString("dist"), "gamma(2,4)");
  EXPECT_FALSE(flags.WasSet("seed"));
}

TEST(FlagsTest, EqualsForm) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog", "--seed=7", "--wait=0.5", "--csv=true",
                    "--dist=exp(5)"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt64("seed"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("wait"), 0.5);
  EXPECT_TRUE(flags.GetBool("csv"));
  EXPECT_EQ(flags.GetString("dist"), "exp(5)");
  EXPECT_TRUE(flags.WasSet("seed"));
}

TEST(FlagsTest, SpaceSeparatedForm) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog", "--seed", "9", "--wait", "2.5"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt64("seed"), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("wait"), 2.5);
}

TEST(FlagsTest, BareBoolEnables) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog", "--csv"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(flags.GetBool("csv"));
}

TEST(FlagsTest, UnknownFlagIsError) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog", "--bogus=1"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, MalformedIntIsError) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog", "--seed=abc"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, MalformedDoubleIsError) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog", "--wait=1.2.3"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, StrictNumericParsingRejectsEachBadShape) {
  // One sub-case per rejection path; the messages are distinct so a user
  // can tell garbage from overflow from a non-finite literal.
  struct Case {
    const char* arg;
    const char* expect_in_message;
  };
  const Case cases[] = {
      // int64 paths
      {"--seed=12abc", "base-10 integer"},       // trailing garbage
      {"--seed=0x10", "base-10 integer"},        // hex is not base-10
      {"--seed=", "base-10 integer"},            // empty value
      {"--seed= 12", "base-10 integer"},         // leading whitespace
      {"--seed=12 ", "base-10 integer"},         // trailing whitespace
      {"--seed=9223372036854775808", "int64 range"},   // INT64_MAX + 1
      {"--seed=-9223372036854775809", "int64 range"},  // INT64_MIN - 1
      // double paths
      {"--wait=1.2.3", "decimal number"},        // trailing garbage
      {"--wait=", "decimal number"},             // empty value
      {"--wait= 1.5", "decimal number"},         // leading whitespace
      {"--wait=0x1p4", "decimal number"},        // hexadecimal float
      {"--wait=1e999", "double range"},          // overflow
      {"--wait=1e-999", "double range"},         // underflow
      {"--wait=nan", "finite"},                  // NaN literal
      {"--wait=inf", "finite"},                  // infinity literal
      {"--wait=-inf", "finite"},
  };
  for (const Case& c : cases) {
    FlagSet flags = MakeFlags();
    ArgvBuilder args({"prog", c.arg});
    const Status status = flags.Parse(args.argc(), args.argv());
    ASSERT_TRUE(status.IsInvalidArgument()) << c.arg;
    EXPECT_NE(status.message().find(c.expect_in_message), std::string::npos)
        << c.arg << " -> " << status.message();
  }
}

TEST(FlagsTest, StrictNumericParsingStillAcceptsNormalValues) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog", "--seed=-17", "--wait=6.25e-2"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt64("seed"), -17);
  EXPECT_DOUBLE_EQ(flags.GetDouble("wait"), 0.0625);
}

TEST(FlagsTest, MalformedBoolIsError) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog", "--csv=maybe"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, MissingValueIsError) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog", "--seed"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, PositionalArgumentIsError) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog", "positional"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv()).IsInvalidArgument());
}

TEST(FlagsTest, BoolAcceptsNumericAndWordForms) {
  for (const char* truthy : {"1", "true", "yes"}) {
    FlagSet flags = MakeFlags();
    ArgvBuilder args({"prog", std::string("--csv=") + truthy});
    ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
    EXPECT_TRUE(flags.GetBool("csv"));
  }
  for (const char* falsy : {"0", "false", "no"}) {
    FlagSet flags = MakeFlags();
    ArgvBuilder args({"prog", std::string("--csv=") + falsy});
    ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
    EXPECT_FALSE(flags.GetBool("csv"));
  }
}

TEST(FlagsTest, UsageMentionsEveryFlag) {
  FlagSet flags = MakeFlags();
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--seed"), std::string::npos);
  EXPECT_NE(usage.find("--wait"), std::string::npos);
  EXPECT_NE(usage.find("--csv"), std::string::npos);
  EXPECT_NE(usage.find("--dist"), std::string::npos);
  EXPECT_NE(usage.find("test_prog"), std::string::npos);
}

TEST(FlagsTest, HelpWithoutExitReturnsOk) {
  FlagSet flags = MakeFlags();
  ArgvBuilder args({"prog", "--help"});
  EXPECT_TRUE(flags.Parse(args.argc(), args.argv(), /*exit_on_help=*/false)
                  .ok());
}

TEST(FlagsTest, HasReportsRegisteredFlags) {
  FlagSet flags = MakeFlags();
  EXPECT_TRUE(flags.Has("seed"));
  EXPECT_TRUE(flags.Has("csv"));
  EXPECT_FALSE(flags.Has("threads"));
}

TEST(FlagsDeathTest, DuplicateRegistrationAbortsLoudly) {
  // Registering the same name twice is always a programming error (e.g. a
  // bench defining --threads and then calling AddExperimentFlags); it must
  // fail at startup with the offending name, not silently shadow a flag.
  EXPECT_DEATH(
      {
        FlagSet flags = MakeFlags();
        flags.AddInt64("seed", 0, "duplicate");
      },
      "duplicate flag");
  EXPECT_DEATH(
      {
        FlagSet flags = MakeFlags();
        flags.AddString("csv", "", "duplicate across types");
      },
      "duplicate flag");
}

}  // namespace
}  // namespace vod
