#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(SimulationMetricsTest, WarmupEventsAreExcluded) {
  SimulationMetrics metrics(100.0);
  metrics.RecordResume(50.0, VcrOp::kFastForward, ResumeOutcome::kHitWithin,
                       true);
  metrics.RecordAdmission(50.0, 1.0, true);
  metrics.RecordCompletion(50.0);
  metrics.RecordBlockedVcr(50.0);
  metrics.RecordStall(50.0, 2.0);
  metrics.RecordPiggybackMerge(50.0, 3.0);
  EXPECT_EQ(metrics.total_resumes(), 0);
  EXPECT_EQ(metrics.admissions(), 0);
  EXPECT_EQ(metrics.completions(), 0);
  EXPECT_EQ(metrics.blocked_vcr(), 0);
  EXPECT_EQ(metrics.stalls(), 0);
  EXPECT_EQ(metrics.piggyback_merges(), 0);

  metrics.RecordResume(150.0, VcrOp::kFastForward, ResumeOutcome::kHitWithin,
                       true);
  EXPECT_EQ(metrics.total_resumes(), 1);
}

TEST(SimulationMetricsTest, ResumeClassification) {
  SimulationMetrics metrics(0.0);
  metrics.RecordResume(1.0, VcrOp::kFastForward, ResumeOutcome::kHitWithin,
                       true);
  metrics.RecordResume(2.0, VcrOp::kFastForward, ResumeOutcome::kMiss, true);
  metrics.RecordResume(3.0, VcrOp::kRewind, ResumeOutcome::kHitJump, false);
  metrics.RecordResume(4.0, VcrOp::kFastForward, ResumeOutcome::kEndOfMovie,
                       true);

  EXPECT_EQ(metrics.total_resumes(), 4);
  EXPECT_EQ(metrics.resumes(ResumeOutcome::kHitWithin), 1);
  EXPECT_EQ(metrics.resumes(ResumeOutcome::kMiss), 1);
  EXPECT_EQ(metrics.resumes(ResumeOutcome::kHitJump), 1);
  EXPECT_EQ(metrics.resumes(ResumeOutcome::kEndOfMovie), 1);

  // End-of-movie counts as a hit (resource released), per Eq. (21).
  EXPECT_DOUBLE_EQ(metrics.hit_all().estimate(), 0.75);
  // Per-op: FF saw within+miss+end => 2/3 hits; RW saw one jump hit.
  EXPECT_DOUBLE_EQ(metrics.hit_by_op(VcrOp::kFastForward).estimate(),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(metrics.hit_by_op(VcrOp::kRewind).estimate(), 1.0);
  // In-partition split excludes the dedicated-origin RW resume.
  EXPECT_EQ(metrics.hit_in_partition_all().trials(), 3);
}

TEST(SimulationMetricsTest, AdmissionAndWaitStats) {
  SimulationMetrics metrics(0.0);
  metrics.RecordAdmission(1.0, 0.0, true);
  metrics.RecordAdmission(2.0, 0.5, false);
  metrics.RecordAdmission(3.0, 1.0, false);
  EXPECT_EQ(metrics.admissions(), 3);
  EXPECT_EQ(metrics.type2_admissions(), 1);
  EXPECT_DOUBLE_EQ(metrics.wait_time().mean(), 0.5);
  EXPECT_DOUBLE_EQ(metrics.wait_time().max(), 1.0);
}

TEST(SimulationMetricsTest, StreamGaugeRespectsWarmupReset) {
  SimulationMetrics metrics(100.0);
  // Changes during warmup re-baseline the gauge instead of accumulating.
  metrics.SetDedicatedStreams(10.0, 5);
  metrics.SetDedicatedStreams(150.0, 10);  // 5 for [100,150), 10 after
  EXPECT_DOUBLE_EQ(metrics.dedicated_streams().TimeAverage(200.0),
                   (5.0 * 50.0 + 10.0 * 50.0) / 100.0);
}

TEST(SimulationMetricsTest, StallAndMergeStats) {
  SimulationMetrics metrics(0.0);
  metrics.RecordStall(1.0, 2.0);
  metrics.RecordStall(2.0, 4.0);
  metrics.RecordPiggybackMerge(3.0, 10.0);
  EXPECT_EQ(metrics.stalls(), 2);
  EXPECT_DOUBLE_EQ(metrics.stall_time().mean(), 3.0);
  EXPECT_EQ(metrics.piggyback_merges(), 1);
  EXPECT_DOUBLE_EQ(metrics.merge_drift_time().mean(), 10.0);
}

}  // namespace
}  // namespace vod
