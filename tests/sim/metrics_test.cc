#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace vod {
namespace {

TEST(SimulationMetricsTest, WarmupEventsAreExcluded) {
  SimulationMetrics metrics(100.0);
  metrics.RecordResume(50.0, VcrOp::kFastForward, ResumeOutcome::kHitWithin,
                       true);
  metrics.RecordAdmission(50.0, 1.0, true);
  metrics.RecordCompletion(50.0);
  metrics.RecordBlockedVcr(50.0);
  metrics.RecordStall(50.0, 2.0);
  metrics.RecordPiggybackMerge(50.0, 3.0);
  EXPECT_EQ(metrics.total_resumes(), 0);
  EXPECT_EQ(metrics.admissions(), 0);
  EXPECT_EQ(metrics.completions(), 0);
  EXPECT_EQ(metrics.blocked_vcr(), 0);
  EXPECT_EQ(metrics.stalls(), 0);
  EXPECT_EQ(metrics.piggyback_merges(), 0);

  metrics.RecordResume(150.0, VcrOp::kFastForward, ResumeOutcome::kHitWithin,
                       true);
  EXPECT_EQ(metrics.total_resumes(), 1);
}

TEST(SimulationMetricsTest, ResumeClassification) {
  SimulationMetrics metrics(0.0);
  metrics.RecordResume(1.0, VcrOp::kFastForward, ResumeOutcome::kHitWithin,
                       true);
  metrics.RecordResume(2.0, VcrOp::kFastForward, ResumeOutcome::kMiss, true);
  metrics.RecordResume(3.0, VcrOp::kRewind, ResumeOutcome::kHitJump, false);
  metrics.RecordResume(4.0, VcrOp::kFastForward, ResumeOutcome::kEndOfMovie,
                       true);

  EXPECT_EQ(metrics.total_resumes(), 4);
  EXPECT_EQ(metrics.resumes(ResumeOutcome::kHitWithin), 1);
  EXPECT_EQ(metrics.resumes(ResumeOutcome::kMiss), 1);
  EXPECT_EQ(metrics.resumes(ResumeOutcome::kHitJump), 1);
  EXPECT_EQ(metrics.resumes(ResumeOutcome::kEndOfMovie), 1);

  // End-of-movie counts as a hit (resource released), per Eq. (21).
  EXPECT_DOUBLE_EQ(metrics.hit_all().estimate(), 0.75);
  // Per-op: FF saw within+miss+end => 2/3 hits; RW saw one jump hit.
  EXPECT_DOUBLE_EQ(metrics.hit_by_op(VcrOp::kFastForward).estimate(),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(metrics.hit_by_op(VcrOp::kRewind).estimate(), 1.0);
  // In-partition split excludes the dedicated-origin RW resume.
  EXPECT_EQ(metrics.hit_in_partition_all().trials(), 3);
}

TEST(SimulationMetricsTest, AdmissionAndWaitStats) {
  SimulationMetrics metrics(0.0);
  metrics.RecordAdmission(1.0, 0.0, true);
  metrics.RecordAdmission(2.0, 0.5, false);
  metrics.RecordAdmission(3.0, 1.0, false);
  EXPECT_EQ(metrics.admissions(), 3);
  EXPECT_EQ(metrics.type2_admissions(), 1);
  EXPECT_DOUBLE_EQ(metrics.wait_time().mean(), 0.5);
  EXPECT_DOUBLE_EQ(metrics.wait_time().max(), 1.0);
}

TEST(SimulationMetricsTest, StreamGaugeRespectsWarmupReset) {
  SimulationMetrics metrics(100.0);
  // Changes during warmup re-baseline the gauge instead of accumulating.
  metrics.SetDedicatedStreams(10.0, 5);
  metrics.SetDedicatedStreams(150.0, 10);  // 5 for [100,150), 10 after
  EXPECT_DOUBLE_EQ(metrics.dedicated_streams().TimeAverage(200.0),
                   (5.0 * 50.0 + 10.0 * 50.0) / 100.0);
}

TEST(SimulationMetricsTest, StallAndMergeStats) {
  SimulationMetrics metrics(0.0);
  metrics.RecordStall(1.0, 2.0);
  metrics.RecordStall(2.0, 4.0);
  metrics.RecordPiggybackMerge(3.0, 10.0);
  EXPECT_EQ(metrics.stalls(), 2);
  EXPECT_DOUBLE_EQ(metrics.stall_time().mean(), 3.0);
  EXPECT_EQ(metrics.piggyback_merges(), 1);
  EXPECT_DOUBLE_EQ(metrics.merge_drift_time().mean(), 10.0);
}

// One synthetic "event" applied to a collector; Replay drives the same
// randomized sequence into one combined collector and two shards.
struct SyntheticEvent {
  int kind = 0;  ///< 0 resume, 1 admission, 2 stall, 3 merge, 4 counters
  double t = 0.0;
  VcrOp op = VcrOp::kFastForward;
  ResumeOutcome outcome = ResumeOutcome::kHitWithin;
  bool in_partition = false;
  double x = 0.0;
  int shard = 0;
};

void Apply(const SyntheticEvent& e, SimulationMetrics* m) {
  switch (e.kind) {
    case 0: m->RecordResume(e.t, e.op, e.outcome, e.in_partition); break;
    case 1: m->RecordAdmission(e.t, e.x, e.in_partition); break;
    case 2: m->RecordStall(e.t, e.x); break;
    case 3: m->RecordPiggybackMerge(e.t, e.x); break;
    default:
      m->RecordBlockedVcr(e.t);
      m->RecordQueuedVcr(e.t);
      m->RecordForcedReclaim(e.t);
      m->RecordCompletion(e.t);
      break;
  }
}

TEST(SimulationMetricsMergeTest, MergedShardsEqualSingleStream) {
  // Per-shard collection (the multi-movie server: each movie observes a
  // disjoint slice of one run's events) merged back together must agree
  // with single-stream collection of the same sequence.
  Rng rng(77);
  std::vector<SyntheticEvent> events;
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    SyntheticEvent e;
    t += rng.Uniform(0.0, 0.5);
    e.t = t;
    e.kind = static_cast<int>(rng.UniformInt(5));
    e.op = static_cast<VcrOp>(static_cast<int>(rng.UniformInt(3)));
    e.outcome =
        static_cast<ResumeOutcome>(static_cast<int>(rng.UniformInt(4)));
    e.in_partition = rng.UniformInt(2) == 1;
    e.x = rng.Uniform(0.0, 10.0);
    e.shard = static_cast<int>(rng.UniformInt(2));
    events.push_back(e);
  }

  SimulationMetrics combined(10.0);
  SimulationMetrics shard_a(10.0);
  SimulationMetrics shard_b(10.0);
  for (const auto& e : events) {
    Apply(e, &combined);
    Apply(e, e.shard == 0 ? &shard_a : &shard_b);
  }
  ASSERT_TRUE(shard_a.MergeFrom(shard_b).ok());

  EXPECT_EQ(shard_a.total_resumes(), combined.total_resumes());
  for (auto outcome : {ResumeOutcome::kHitWithin, ResumeOutcome::kHitJump,
                       ResumeOutcome::kEndOfMovie, ResumeOutcome::kMiss}) {
    EXPECT_EQ(shard_a.resumes(outcome), combined.resumes(outcome));
  }
  EXPECT_EQ(shard_a.admissions(), combined.admissions());
  EXPECT_EQ(shard_a.type2_admissions(), combined.type2_admissions());
  EXPECT_EQ(shard_a.completions(), combined.completions());
  EXPECT_EQ(shard_a.blocked_vcr(), combined.blocked_vcr());
  EXPECT_EQ(shard_a.stalls(), combined.stalls());
  EXPECT_EQ(shard_a.queued_vcr(), combined.queued_vcr());
  EXPECT_EQ(shard_a.forced_reclaims(), combined.forced_reclaims());
  EXPECT_EQ(shard_a.piggyback_merges(), combined.piggyback_merges());

  // Proportion estimators merge exactly.
  EXPECT_EQ(shard_a.hit_all().trials(), combined.hit_all().trials());
  EXPECT_DOUBLE_EQ(shard_a.hit_all().estimate(),
                   combined.hit_all().estimate());
  for (VcrOp op : kAllVcrOps) {
    EXPECT_DOUBLE_EQ(shard_a.hit_by_op(op).estimate(),
                     combined.hit_by_op(op).estimate());
    EXPECT_DOUBLE_EQ(shard_a.hit_in_partition(op).estimate(),
                     combined.hit_in_partition(op).estimate());
  }
  EXPECT_EQ(shard_a.hit_in_partition_all().trials(),
            combined.hit_in_partition_all().trials());

  // Welford stats merge exactly up to FP rounding.
  EXPECT_EQ(shard_a.wait_time().count(), combined.wait_time().count());
  EXPECT_NEAR(shard_a.wait_time().mean(), combined.wait_time().mean(),
              1e-12);
  EXPECT_NEAR(shard_a.stall_time().mean(), combined.stall_time().mean(),
              1e-12);
  EXPECT_NEAR(shard_a.merge_drift_time().mean(),
              combined.merge_drift_time().mean(), 1e-12);
  EXPECT_DOUBLE_EQ(shard_a.wait_time().max(), combined.wait_time().max());

  // P² quantiles pool approximately; with thousands of admissions the
  // merged markers must land near the single-stream estimate.
  if (combined.wait_quantiles().count() > 100) {
    EXPECT_NEAR(shard_a.wait_quantiles().p50(),
                combined.wait_quantiles().p50(), 1.0);
  }
}

TEST(SimulationMetricsMergeTest, GaugePopulationsSumPointwise) {
  // Two shards each tracking their own dedicated-stream level: the merged
  // time average is the sum of averages (pointwise population sum).
  SimulationMetrics a(0.0);
  SimulationMetrics b(0.0);
  a.SetDedicatedStreams(10.0, 4);   // 4 over [10, 100)
  b.SetDedicatedStreams(50.0, 10);  // 10 over [50, 100)
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_DOUBLE_EQ(
      a.dedicated_streams().TimeAverage(100.0),
      (4.0 * 90.0) / 100.0 + (10.0 * 50.0) / 100.0);
}

TEST(SimulationMetricsMergeTest, RejectsMismatchedWarmup) {
  SimulationMetrics a(10.0);
  SimulationMetrics b(20.0);
  EXPECT_TRUE(a.MergeFrom(b).IsInvalidArgument());
}

}  // namespace
}  // namespace vod
