#include "sim/server.h"

#include <gtest/gtest.h>

#include "workload/paper_presets.h"

namespace vod {
namespace {

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

std::vector<ServerMovieSpec> TwoMovies() {
  std::vector<ServerMovieSpec> movies;
  movies.push_back({"alpha", MakeLayout(120.0, 40, 80.0), 0.5, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"beta", MakeLayout(90.0, 30, 45.0), 0.25, nullptr,
                    paper::Fig7SingleOpBehavior(VcrOp::kFastForward)});
  return movies;
}

ServerOptions BaseOptions(int64_t reserve) {
  ServerOptions options;
  options.rates = paper::Rates();
  options.dynamic_stream_reserve = reserve;
  options.warmup_minutes = 500.0;
  options.measurement_minutes = 10000.0;
  options.seed = 17;
  return options;
}

TEST(ServerTest, Validation) {
  EXPECT_TRUE(RunServerSimulation({}, BaseOptions(100))
                  .status()
                  .IsInvalidArgument());
  auto movies = TwoMovies();
  movies[0].arrival_rate_per_minute = 0.0;
  EXPECT_TRUE(RunServerSimulation(movies, BaseOptions(100))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunServerSimulation(TwoMovies(), BaseOptions(-1))
                  .status()
                  .IsInvalidArgument());
}

TEST(ServerTest, DeterministicAndPerMovieReports) {
  const auto a = RunServerSimulation(TwoMovies(), BaseOptions(500));
  const auto b = RunServerSimulation(TwoMovies(), BaseOptions(500));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->movies.size(), 2u);
  EXPECT_EQ(a->movies[0].name, "alpha");
  EXPECT_EQ(a->movies[1].name, "beta");
  EXPECT_EQ(a->movies[0].report.total_resumes,
            b->movies[0].report.total_resumes);
  EXPECT_DOUBLE_EQ(a->movies[1].report.hit_probability,
                   b->movies[1].report.hit_probability);
  // The busier movie sees more resumes.
  EXPECT_GT(a->movies[0].report.total_resumes,
            a->movies[1].report.total_resumes);
}

TEST(ServerTest, AmpleReserveNeverRefuses) {
  const auto report = RunServerSimulation(TwoMovies(), BaseOptions(2000));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->refused_acquisitions, 0);
  EXPECT_DOUBLE_EQ(report->refusal_probability, 0.0);
  EXPECT_EQ(report->total_blocked_vcr, 0);
  EXPECT_EQ(report->total_stalls, 0);
  EXPECT_GT(report->granted_acquisitions, 0);
  EXPECT_LE(report->peak_reserve_in_use, 2000);
}

TEST(ServerTest, TightReserveBlocksAndStalls) {
  const auto report = RunServerSimulation(TwoMovies(), BaseOptions(5));
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->refused_acquisitions, 0);
  EXPECT_GT(report->refusal_probability, 0.05);
  EXPECT_GT(report->total_blocked_vcr, 0);
  EXPECT_LE(report->peak_reserve_in_use, 5);
  EXPECT_LE(report->mean_reserve_in_use, 5.0);
}

TEST(ServerTest, RefusalProbabilityDecreasesWithReserve) {
  double previous = 1.1;
  for (int64_t reserve : {2, 10, 50, 400}) {
    const auto report =
        RunServerSimulation(TwoMovies(), BaseOptions(reserve));
    ASSERT_TRUE(report.ok()) << reserve;
    // Non-increasing, and strictly decreasing while refusals still occur.
    if (previous > 0.0) {
      EXPECT_LT(report->refusal_probability, previous) << reserve;
    } else {
      EXPECT_DOUBLE_EQ(report->refusal_probability, 0.0) << reserve;
    }
    previous = report->refusal_probability;
  }
  EXPECT_LT(previous, 0.01);
}

TEST(ServerTest, PiggybackShrinksReserveDemand) {
  ServerOptions without = BaseOptions(3000);
  ServerOptions with = BaseOptions(3000);
  with.piggyback.enabled = true;
  with.piggyback.speed_delta = 0.05;
  const auto a = RunServerSimulation(TwoMovies(), without);
  const auto b = RunServerSimulation(TwoMovies(), with);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(b->mean_reserve_in_use, a->mean_reserve_in_use);
}

TEST(ServerTest, QosSurvivesSharing) {
  // Each movie's in-partition hit probability must still track its own
  // analytic model even when sharing a reserve (misses couple movies only
  // through stream availability, not through hit geometry).
  const auto report = RunServerSimulation(TwoMovies(), BaseOptions(2000));
  ASSERT_TRUE(report.ok());
  for (const auto& per_movie : report->movies) {
    EXPECT_GT(per_movie.report.hit_probability_in_partition, 0.4)
        << per_movie.name;
    EXPECT_LE(per_movie.report.max_wait_minutes,
              per_movie.name == "alpha" ? 1.0 + 1e-9 : 1.5 + 1e-9)
        << per_movie.name;
  }
}

}  // namespace
}  // namespace vod
