#include "sim/stream_supplier.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(UnlimitedSupplierTest, AlwaysGrantsAndCounts) {
  UnlimitedStreamSupplier supplier;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(supplier.TryAcquire(static_cast<double>(i)));
  }
  EXPECT_EQ(supplier.in_use(), 100);
  EXPECT_EQ(supplier.peak_in_use(), 100);
  for (int i = 0; i < 40; ++i) supplier.Release(100.0);
  EXPECT_EQ(supplier.in_use(), 60);
  EXPECT_EQ(supplier.peak_in_use(), 100);
}

TEST(UnlimitedSupplierTest, TimeAverageTracksUsage) {
  UnlimitedStreamSupplier supplier;
  EXPECT_TRUE(supplier.TryAcquire(0.0));   // 1 in [0, 10)
  EXPECT_TRUE(supplier.TryAcquire(10.0));  // 2 in [10, 20)
  supplier.Release(20.0);
  supplier.Release(20.0);                  // 0 in [20, 30)
  EXPECT_NEAR(supplier.MeanInUse(30.0), (10.0 + 20.0) / 30.0, 1e-12);
}

TEST(FiniteSupplierTest, RefusesBeyondCapacity) {
  FiniteStreamSupplier supplier(2);
  EXPECT_TRUE(supplier.TryAcquire(0.0));
  EXPECT_TRUE(supplier.TryAcquire(0.0));
  EXPECT_FALSE(supplier.TryAcquire(1.0));
  EXPECT_FALSE(supplier.TryAcquire(2.0));
  EXPECT_EQ(supplier.in_use(), 2);
  EXPECT_EQ(supplier.refused(), 2);
  EXPECT_EQ(supplier.acquired(), 2);
  supplier.Release(3.0);
  EXPECT_TRUE(supplier.TryAcquire(3.5));
  EXPECT_EQ(supplier.acquired(), 3);
}

TEST(FiniteSupplierTest, ZeroCapacityRefusesAll) {
  FiniteStreamSupplier supplier(0);
  EXPECT_FALSE(supplier.TryAcquire(0.0));
  EXPECT_EQ(supplier.refused(), 1);
  EXPECT_EQ(supplier.in_use(), 0);
}

TEST(FiniteSupplierTest, PeakAndMeanUsage) {
  FiniteStreamSupplier supplier(10);
  EXPECT_TRUE(supplier.TryAcquire(0.0));
  EXPECT_TRUE(supplier.TryAcquire(0.0));
  supplier.Release(5.0);
  EXPECT_EQ(supplier.peak_in_use(), 2);
  // 2 for [0,5), 1 for [5,10): average 1.5.
  EXPECT_NEAR(supplier.MeanInUse(10.0), 1.5, 1e-12);
}

}  // namespace
}  // namespace vod
