#include "sim/arrival_process.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/simulator.h"
#include "stats/summary.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

// Counts arrivals of `process` in [0, horizon), bucketed by cycle phase.
std::vector<int> CountByPhase(const ArrivalProcess& process, double horizon,
                              double cycle, int buckets, Rng* rng) {
  std::vector<int> counts(buckets, 0);
  double t = 0.0;
  for (;;) {
    t = process.NextArrivalAfter(t, rng);
    if (t >= horizon) break;
    const double phase = std::fmod(t, cycle);
    counts[static_cast<size_t>(phase / cycle * buckets)]++;
  }
  return counts;
}

TEST(PoissonArrivalsTest, MeanRateRealized) {
  PoissonArrivals process(0.5);
  EXPECT_DOUBLE_EQ(process.MeanRatePerMinute(), 0.5);
  Rng rng(1);
  int count = 0;
  double t = 0.0;
  const double horizon = 100000.0;
  while ((t = process.NextArrivalAfter(t, &rng)) < horizon) ++count;
  EXPECT_NEAR(count / horizon, 0.5, 0.01);
}

TEST(PoissonArrivalsTest, GapsAreExponential) {
  PoissonArrivals process(2.0);
  Rng rng(2);
  RunningStats gaps;
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double next = process.NextArrivalAfter(t, &rng);
    gaps.Add(next - t);
    t = next;
  }
  EXPECT_NEAR(gaps.mean(), 0.5, 0.01);
  // Exponential: variance = mean².
  EXPECT_NEAR(gaps.variance(), 0.25, 0.01);
}

TEST(SinusoidalArrivalsTest, Validation) {
  EXPECT_TRUE(SinusoidalArrivals::Create(0.0, 0.5, 100.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SinusoidalArrivals::Create(1.0, 1.0, 100.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SinusoidalArrivals::Create(1.0, -0.1, 100.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SinusoidalArrivals::Create(1.0, 0.5, 0.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SinusoidalArrivals::Create(1.0, 0.5, 1440.0).ok());
}

TEST(SinusoidalArrivalsTest, ModulationRealized) {
  const auto process = SinusoidalArrivals::Create(1.0, 0.8, 1000.0);
  ASSERT_TRUE(process.ok());
  Rng rng(3);
  const auto counts = CountByPhase(*process, 400000.0, 1000.0, 4, &rng);
  // Bucket 0 covers the rising sine (mean rate 1 + 0.8·avg(sin) high),
  // bucket 2 the trough. Expected ratio ≈ (1 + 0.51)/(1 − 0.51) ≈ 3.1.
  EXPECT_GT(counts[0], counts[2] * 2);
  EXPECT_GT(counts[1], counts[3] * 2);
  // Total averages to the mean rate.
  const double total = counts[0] + counts[1] + counts[2] + counts[3];
  EXPECT_NEAR(total / 400000.0, 1.0, 0.02);
}

TEST(PiecewiseArrivalsTest, Validation) {
  EXPECT_TRUE(
      PiecewiseArrivals::Create({}, 100.0).status().IsInvalidArgument());
  EXPECT_TRUE(PiecewiseArrivals::Create({1.0, -0.5}, 100.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PiecewiseArrivals::Create({0.0, 0.0}, 100.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PiecewiseArrivals::Create({1.0}, 0.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(PiecewiseArrivalsTest, BucketRatesRealized) {
  // Quiet night, busy evening.
  const auto process =
      PiecewiseArrivals::Create({0.1, 0.5, 2.0, 0.4}, 1000.0);
  ASSERT_TRUE(process.ok());
  EXPECT_DOUBLE_EQ(process->MeanRatePerMinute(), 0.75);
  EXPECT_DOUBLE_EQ(process->RateAt(100.0), 0.1);
  EXPECT_DOUBLE_EQ(process->RateAt(600.0), 2.0);
  EXPECT_DOUBLE_EQ(process->RateAt(1100.0), 0.1);  // wraps into bucket 0

  Rng rng(4);
  const auto counts = CountByPhase(*process, 200000.0, 1000.0, 4, &rng);
  const double per_bucket_minutes = 200000.0 / 4.0;
  EXPECT_NEAR(counts[0] / per_bucket_minutes, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / per_bucket_minutes, 0.5, 0.03);
  EXPECT_NEAR(counts[2] / per_bucket_minutes, 2.0, 0.06);
  EXPECT_NEAR(counts[3] / per_bucket_minutes, 0.4, 0.03);
}

TEST(ArrivalProcessSimTest, MaxWaitGuaranteeHoldsUnderDiurnalLoad) {
  // The paper's structural property: w = (l − B)/n is a *schedule*
  // guarantee — bursty arrivals cannot break it.
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  const auto arrivals = SinusoidalArrivals::Create(0.5, 0.9, 1440.0);
  ASSERT_TRUE(arrivals.ok());

  SimulationOptions options;
  options.arrivals = std::make_shared<SinusoidalArrivals>(*arrivals);
  options.behavior = paper::Fig7MixedBehavior();
  options.warmup_minutes = 1000.0;
  options.measurement_minutes = 20000.0;
  const auto report = RunSimulation(*layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->max_wait_minutes, layout->max_wait() + 1e-9);
  EXPECT_GT(report->max_wait_minutes, 0.9 * layout->max_wait());
  // The hit probability is also load-independent (geometry only).
  EXPECT_NEAR(report->hit_probability_in_partition, 0.6584, 0.03);
}

TEST(ArrivalProcessSimTest, ConcurrentViewersTrackTheMeanRate) {
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  SimulationOptions options;
  options.arrivals = std::make_shared<PoissonArrivals>(0.25);
  options.behavior.interactivity = nullptr;  // passive: Little's law exact
  options.warmup_minutes = 1000.0;
  options.measurement_minutes = 20000.0;
  const auto report = RunSimulation(*layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->mean_concurrent_viewers, 0.25 * 120.0, 2.0);
}

}  // namespace
}  // namespace vod
