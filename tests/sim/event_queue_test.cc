#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace vod {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(3.0, [&] { order.push_back(3); });
  q.Schedule(1.0, [&] { order.push_back(1); });
  q.Schedule(2.0, [&] { order.push_back(2); });
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
}

TEST(EventQueueTest, SimultaneousEventsRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(1.0, [&] { order.push_back(1); });
  const EventToken t = q.Schedule(2.0, [&] { order.push_back(2); });
  q.Schedule(3.0, [&] { order.push_back(3); });
  q.Cancel(t);
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelUnknownTokenIsHarmless) {
  EventQueue q;
  q.Cancel(9999);
  q.Schedule(1.0, [] {});
  EXPECT_TRUE(q.RunNext());
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  q.Schedule(1.0, [&] {
    times.push_back(q.Now());
    q.Schedule(2.5, [&] { times.push_back(q.Now()); });
  });
  while (q.RunNext()) {
  }
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
}

TEST(EventQueueTest, SchedulingInThePastAborts) {
  EventQueue q;
  q.Schedule(5.0, [] {});
  EXPECT_TRUE(q.RunNext());
  EXPECT_DEATH(q.Schedule(4.0, [] {}), "past");
}

TEST(EventQueueTest, RunUntilStopsAtHorizon) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(1.0, [&] { order.push_back(1); });
  q.Schedule(2.0, [&] { order.push_back(2); });
  q.Schedule(5.0, [&] { order.push_back(5); });
  q.RunUntil(3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 5}));
}

TEST(EventQueueTest, RunUntilExecutesEventAtExactHorizon) {
  EventQueue q;
  bool ran = false;
  q.Schedule(3.0, [&] { ran = true; });
  q.RunUntil(3.0);
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, RunUntilAdvancesClockOnEmptyQueue) {
  EventQueue q;
  q.RunUntil(7.0);
  EXPECT_DOUBLE_EQ(q.Now(), 7.0);
}

TEST(EventQueueTest, PendingCountExcludesCancelled) {
  EventQueue q;
  q.Schedule(1.0, [] {});
  const EventToken t = q.Schedule(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.Cancel(t);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueueTest, CancelledHeadDoesNotBlockHorizonCheck) {
  EventQueue q;
  bool ran = false;
  const EventToken t = q.Schedule(1.0, [] {});
  q.Schedule(2.0, [&] { ran = true; });
  q.Cancel(t);
  q.RunUntil(2.5);
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  double last = -1.0;
  int count = 0;
  // Deterministic pseudo-random times.
  uint64_t state = 12345;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double t = static_cast<double>(state >> 40);
    q.Schedule(t, [&, t] {
      EXPECT_GE(t, last);
      last = t;
      ++count;
    });
  }
  while (q.RunNext()) {
  }
  EXPECT_EQ(count, 10000);
}

}  // namespace
}  // namespace vod
