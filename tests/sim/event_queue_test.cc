#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/serialize.h"

namespace vod {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(3.0, [&] { order.push_back(3); });
  q.Schedule(1.0, [&] { order.push_back(1); });
  q.Schedule(2.0, [&] { order.push_back(2); });
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
}

TEST(EventQueueTest, SimultaneousEventsRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(1.0, [&] { order.push_back(1); });
  const EventToken t = q.Schedule(2.0, [&] { order.push_back(2); });
  q.Schedule(3.0, [&] { order.push_back(3); });
  q.Cancel(t);
  while (q.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelUnknownTokenIsHarmless) {
  EventQueue q;
  q.Cancel(9999);
  q.Schedule(1.0, [] {});
  EXPECT_TRUE(q.RunNext());
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  q.Schedule(1.0, [&] {
    times.push_back(q.Now());
    q.Schedule(2.5, [&] { times.push_back(q.Now()); });
  });
  while (q.RunNext()) {
  }
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
}

TEST(EventQueueTest, SchedulingInThePastAborts) {
  EventQueue q;
  q.Schedule(5.0, [] {});
  EXPECT_TRUE(q.RunNext());
  EXPECT_DEATH(q.Schedule(4.0, [] {}), "past");
}

TEST(EventQueueTest, RunUntilStopsAtHorizon) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(1.0, [&] { order.push_back(1); });
  q.Schedule(2.0, [&] { order.push_back(2); });
  q.Schedule(5.0, [&] { order.push_back(5); });
  q.RunUntil(3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 5}));
}

TEST(EventQueueTest, RunUntilExecutesEventAtExactHorizon) {
  EventQueue q;
  bool ran = false;
  q.Schedule(3.0, [&] { ran = true; });
  q.RunUntil(3.0);
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, RunUntilAdvancesClockOnEmptyQueue) {
  EventQueue q;
  q.RunUntil(7.0);
  EXPECT_DOUBLE_EQ(q.Now(), 7.0);
}

TEST(EventQueueTest, PendingCountExcludesCancelled) {
  EventQueue q;
  q.Schedule(1.0, [] {});
  const EventToken t = q.Schedule(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.Cancel(t);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueueTest, CancelledHeadDoesNotBlockHorizonCheck) {
  EventQueue q;
  bool ran = false;
  const EventToken t = q.Schedule(1.0, [] {});
  q.Schedule(2.0, [&] { ran = true; });
  q.Cancel(t);
  q.RunUntil(2.5);
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, CancellingAnAlreadyPoppedTokenIsANoOp) {
  EventQueue q;
  int runs = 0;
  const EventToken t = q.Schedule(1.0, [&] { ++runs; });
  EXPECT_TRUE(q.RunNext());
  EXPECT_EQ(runs, 1);
  q.Cancel(t);  // token already executed; must not poison anything
  EXPECT_EQ(q.pending(), 0u);
  // A later event must still run (a stale cancel must not eat it even if
  // token values were ever reused).
  q.Schedule(2.0, [&] { ++runs; });
  EXPECT_TRUE(q.RunNext());
  EXPECT_EQ(runs, 2);
}

TEST(EventQueueTest, CancelAfterPopDoesNotCancelLaterEventAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  const EventToken first = q.Schedule(1.0, [&] { order.push_back(0); });
  q.Schedule(1.0, [&] { order.push_back(1); });
  EXPECT_TRUE(q.RunNext());
  q.Cancel(first);  // stale: the event at the same timestamp must survive
  EXPECT_TRUE(q.RunNext());
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueueTest, ObserverFiresAfterEachExecutedEvent) {
  EventQueue q;
  std::vector<double> observed;
  int side_effect = 0;
  q.set_observer([&](double t) {
    observed.push_back(t);
    // Observer fires *after* the action: state must be settled.
    EXPECT_GT(side_effect, 0);
  });
  q.Schedule(1.0, [&] { ++side_effect; });
  const EventToken t = q.Schedule(2.0, [&] { ++side_effect; });
  q.Schedule(3.0, [&] { ++side_effect; });
  q.Cancel(t);
  while (q.RunNext()) {
  }
  // Cancelled events never execute, so the observer must not see them.
  EXPECT_EQ(observed, (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(q.executed(), 2u);
}

// ---- tagged snapshot / restore --------------------------------------------

TEST(EventQueueSnapshotTest, RestoreMidHeapPreservesOrderAndClock) {
  // Build a queue, run part of it, snapshot mid-heap, and check the restored
  // queue drains the remaining events in the identical order.
  std::vector<std::pair<uint64_t, double>> executed;
  auto factory = [&executed](uint64_t kind, uint64_t payload,
                             double time) -> std::function<void()> {
    (void)payload;
    return [&executed, kind, time] { executed.push_back({kind, time}); };
  };

  EventQueue q;
  for (uint64_t i = 0; i < 10; ++i) {
    const double t = static_cast<double>((i * 7) % 10) + 1.0;
    q.ScheduleTagged(t, /*kind=*/i, /*payload=*/i * 100, factory(i, i * 100, t));
  }
  // Run the first 4 events, leaving a part-consumed heap.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.RunNext());
  const std::vector<std::pair<uint64_t, double>> prefix = executed;
  const double clock = q.Now();
  const size_t remaining = q.pending();

  ByteWriter snapshot;
  ASSERT_TRUE(q.Snapshot(&snapshot).ok());

  // Drain the original for the reference tail.
  while (q.RunNext()) {
  }
  std::vector<std::pair<uint64_t, double>> reference_tail(
      executed.begin() + static_cast<ptrdiff_t>(prefix.size()),
      executed.end());

  executed.clear();
  EventQueue restored;
  ByteReader reader(snapshot.bytes());
  ASSERT_TRUE(restored.Restore(&reader, factory).ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_DOUBLE_EQ(restored.Now(), clock);
  EXPECT_EQ(restored.pending(), remaining);
  while (restored.RunNext()) {
  }
  EXPECT_EQ(executed, reference_tail);
}

TEST(EventQueueSnapshotTest, TokensSurviveRestoreForCancellation) {
  EventQueue q;
  int runs = 0;
  auto noop_factory = [&runs](uint64_t, uint64_t,
                              double) -> std::function<void()> {
    return [&runs] { ++runs; };
  };
  q.ScheduleTagged(1.0, 1, 0, [&runs] { ++runs; });
  const EventToken victim = q.ScheduleTagged(2.0, 2, 0, [&runs] { ++runs; });
  ByteWriter snapshot;
  ASSERT_TRUE(q.Snapshot(&snapshot).ok());

  EventQueue restored;
  ByteReader reader(snapshot.bytes());
  ASSERT_TRUE(restored.Restore(&reader, noop_factory).ok());
  restored.Cancel(victim);  // pre-snapshot token targets the same event
  while (restored.RunNext()) {
  }
  EXPECT_EQ(runs, 1);
}

TEST(EventQueueSnapshotTest, CancelledEventsAreDroppedFromSnapshots) {
  EventQueue q;
  q.ScheduleTagged(1.0, 1, 0, [] {});
  const EventToken t = q.ScheduleTagged(2.0, 2, 0, [] {});
  q.Cancel(t);
  ByteWriter snapshot;
  ASSERT_TRUE(q.Snapshot(&snapshot).ok());

  EventQueue restored;
  ByteReader reader(snapshot.bytes());
  ASSERT_TRUE(restored
                  .Restore(&reader,
                           [](uint64_t, uint64_t,
                              double) -> std::function<void()> {
                             return [] {};
                           })
                  .ok());
  EXPECT_EQ(restored.pending(), 1u);
}

TEST(EventQueueSnapshotTest, UntaggedEventMakesSnapshotNotSupported) {
  EventQueue q;
  q.ScheduleTagged(1.0, 1, 0, [] {});
  q.Schedule(2.0, [] {});  // closure-only: cannot persist
  ByteWriter snapshot;
  const Status st = q.Snapshot(&snapshot);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotSupported());
  EXPECT_NE(st.message().find("untagged"), std::string::npos);
}

TEST(EventQueueSnapshotTest, RestoreIntoNonEmptyQueueIsRejected) {
  EventQueue q;
  q.ScheduleTagged(1.0, 1, 0, [] {});
  ByteWriter snapshot;
  ASSERT_TRUE(q.Snapshot(&snapshot).ok());
  ByteReader reader(snapshot.bytes());
  EXPECT_FALSE(q.Restore(&reader,
                         [](uint64_t, uint64_t,
                            double) -> std::function<void()> {
                           return [] {};
                         })
                   .ok());
}

TEST(EventQueueSnapshotTest, TruncatedSnapshotIsRejected) {
  EventQueue q;
  q.ScheduleTagged(1.0, 1, 0, [] {});
  q.ScheduleTagged(2.0, 2, 0, [] {});
  ByteWriter snapshot;
  ASSERT_TRUE(q.Snapshot(&snapshot).ok());
  const std::string cut =
      snapshot.bytes().substr(0, snapshot.bytes().size() - 9);
  EventQueue restored;
  ByteReader reader(cut);
  const Status st = restored.Restore(&reader,
                                     [](uint64_t, uint64_t,
                                        double) -> std::function<void()> {
                                       return [] {};
                                     });
  ASSERT_FALSE(st.ok());
  // All-or-nothing: the failed restore must not leave partial state.
  EXPECT_EQ(restored.pending(), 0u);
  EXPECT_DOUBLE_EQ(restored.Now(), 0.0);
}

TEST(EventQueueSnapshotTest, UnknownKindIsRejected) {
  EventQueue q;
  q.ScheduleTagged(1.0, /*kind=*/77, 0, [] {});
  ByteWriter snapshot;
  ASSERT_TRUE(q.Snapshot(&snapshot).ok());
  EventQueue restored;
  ByteReader reader(snapshot.bytes());
  const Status st = restored.Restore(
      &reader,
      [](uint64_t kind, uint64_t, double) -> std::function<void()> {
        if (kind == 77) return nullptr;  // factory refuses this kind
        return [] {};
      });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("kind"), std::string::npos);
}

TEST(EventQueueSnapshotTest, SimultaneousEventsKeepScheduleOrderAcrossRestore) {
  // Tie-breaking at equal timestamps must be the insertion order, and a
  // snapshot/restore cycle must not perturb it.
  std::vector<uint64_t> executed;
  auto factory = [&executed](uint64_t kind, uint64_t,
                             double) -> std::function<void()> {
    return [&executed, kind] { executed.push_back(kind); };
  };
  EventQueue q;
  for (uint64_t i = 0; i < 6; ++i) {
    q.ScheduleTagged(5.0, i, 0, factory(i, 0, 5.0));
  }
  ByteWriter snapshot;
  ASSERT_TRUE(q.Snapshot(&snapshot).ok());
  EventQueue restored;
  ByteReader reader(snapshot.bytes());
  ASSERT_TRUE(restored.Restore(&reader, factory).ok());
  while (restored.RunNext()) {
  }
  EXPECT_EQ(executed, (std::vector<uint64_t>{0, 1, 2, 3, 4, 5}));
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  double last = -1.0;
  int count = 0;
  // Deterministic pseudo-random times.
  uint64_t state = 12345;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double t = static_cast<double>(state >> 40);
    q.Schedule(t, [&, t] {
      EXPECT_GE(t, last);
      last = t;
      ++count;
    });
  }
  while (q.RunNext()) {
  }
  EXPECT_EQ(count, 10000);
}

}  // namespace
}  // namespace vod
