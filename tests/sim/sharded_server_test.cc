#include "sim/sharded_server.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/mailbox.h"
#include "obs/event_log.h"
#include "sim/shard.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

std::vector<ServerMovieSpec> FourMovies() {
  std::vector<ServerMovieSpec> movies;
  movies.push_back({"alpha", MakeLayout(120.0, 40, 80.0), 0.5, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"beta", MakeLayout(90.0, 30, 45.0), 0.25, nullptr,
                    paper::Fig7SingleOpBehavior(VcrOp::kFastForward)});
  movies.push_back({"gamma", MakeLayout(100.0, 20, 50.0), 0.4, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"delta", MakeLayout(110.0, 25, 60.0), 0.3, nullptr,
                    paper::Fig7MixedBehavior()});
  return movies;
}

ShardedServerOptions BaseOptions(int shards, int threads) {
  ShardedServerOptions options;
  options.base.rates = paper::Rates();
  options.base.dynamic_stream_reserve = 60;
  options.base.warmup_minutes = 500.0;
  options.base.measurement_minutes = 4000.0;
  options.base.seed = 17;
  options.shards = shards;
  options.threads = threads;
  options.window_minutes = 50.0;
  return options;
}

TEST(ShardedServerTest, Validation) {
  auto movies = FourMovies();
  auto bad_shards = BaseOptions(0, 1);
  EXPECT_TRUE(RunShardedServerSimulation(movies, bad_shards)
                  .status()
                  .IsInvalidArgument());
  auto bad_window = BaseOptions(2, 1);
  bad_window.window_minutes = 0.0;
  EXPECT_TRUE(RunShardedServerSimulation(movies, bad_window)
                  .status()
                  .IsInvalidArgument());
  // The windowed ladder is supported, but its hysteresis knob must be sane.
  auto bad_recover = BaseOptions(2, 1);
  bad_recover.base.degradation.enabled = true;
  bad_recover.ladder_recover_windows = 0;
  const auto st = RunShardedServerSimulation(movies, bad_recover).status();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("ladder_recover_windows"), std::string::npos);
  // recover_windows is only read when the ladder is armed: a bogus value
  // with the ladder off must not reject a faults-only run.
  auto ladder_off = BaseOptions(2, 1);
  ladder_off.ladder_recover_windows = 0;
  ladder_off.base.measurement_minutes = 500.0;
  EXPECT_TRUE(RunShardedServerSimulation(movies, ladder_off).ok());
}

ShardedServerOptions LadderOptions(int shards, int threads) {
  ShardedServerOptions options = BaseOptions(shards, threads);
  options.base.dynamic_stream_reserve = 24;  // scarce: the ladder must work
  options.base.degradation.enabled = true;
  options.base.degradation.queue_deadline_minutes = 5.0;
  options.base.faults.enabled = true;
  options.base.faults.disks = 4;
  options.base.faults.profile.mtbf_minutes = 700.0;
  options.base.faults.profile.mttr_minutes = 350.0;
  options.base.audit.enabled = true;
  return options;
}

TEST(ShardedServerTest, WindowedLadderEngagesUnderFaults) {
  const auto report =
      RunShardedServerSimulation(FourMovies(), LadderOptions(2, 2));
  ASSERT_TRUE(report.ok()) << report.status().message();
  const ResilienceReport& rz = report->server.resilience;
  // The run must actually walk the ladder: rungs above normal, queued VCR
  // work, and a closed queue ledger.
  EXPECT_GT(rz.total_transitions, 0);
  double above_normal = 0.0;
  for (int level = 1; level < kNumDegradationLevels; ++level) {
    above_normal += rz.time_in_level[level];
  }
  EXPECT_GT(above_normal, 0.0);
  EXPECT_GT(rz.vcr_queued, 0);
  EXPECT_EQ(rz.vcr_queued, rz.vcr_queue_grants + rz.vcr_queue_expirations +
                               rz.vcr_queue_pending);
  // Dwell times integrate to the horizon exactly (the barrier integrates
  // every window into the level it ran under): warmup + measurement.
  double total = 0.0;
  for (int level = 0; level < kNumDegradationLevels; ++level) {
    total += rz.time_in_level[level];
  }
  EXPECT_DOUBLE_EQ(total, 500.0 + 4000.0);
}

TEST(ShardedServerTest, LadderReportIndependentOfShardAndThreadCount) {
  // The acceptance matrix: ladder + faults + audit live, byte-identical
  // across (shards, threads).
  const auto golden =
      RunShardedServerSimulation(FourMovies(), LadderOptions(1, 1));
  ASSERT_TRUE(golden.ok()) << golden.status().message();
  const std::string golden_text = golden->ToString();
  EXPECT_GT(golden->server.resilience.total_transitions, 0);
  for (int shards : {2, 3, 4}) {
    for (int threads : {1, 2}) {
      const auto got = RunShardedServerSimulation(FourMovies(),
                                                  LadderOptions(shards, threads));
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_EQ(got->ToString(), golden_text)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardedServerTest, LadderOffPreservesFaultsOnlyBytes) {
  // Arming machinery must be inert when the ladder is off: a faults-only
  // run reports the legacy hardcoded-normal resilience block and the same
  // message totals as before the ladder existed (no pressure/echo/rung
  // traffic).
  auto faults_only = LadderOptions(2, 2);
  faults_only.base.degradation.enabled = false;
  const auto report = RunShardedServerSimulation(FourMovies(), faults_only);
  ASSERT_TRUE(report.ok()) << report.status().message();
  const ResilienceReport& rz = report->server.resilience;
  EXPECT_EQ(rz.total_transitions, 0);
  EXPECT_EQ(rz.final_level, DegradationLevel::kNormal);
  EXPECT_EQ(rz.vcr_queued, 0);
  const auto ladder_on = RunShardedServerSimulation(FourMovies(),
                                                    LadderOptions(2, 2));
  ASSERT_TRUE(ladder_on.ok());
  EXPECT_LT(report->messages_posted, ladder_on->messages_posted);
}

TEST(ShardedServerTest, RunsAndReportsEveryMovie) {
  const auto report = RunShardedServerSimulation(FourMovies(),
                                                 BaseOptions(2, 2));
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_EQ(report->server.movies.size(), 4u);
  EXPECT_EQ(report->server.movies[0].name, "alpha");
  EXPECT_EQ(report->server.movies[3].name, "delta");
  EXPECT_GT(report->server.movies[0].report.total_resumes, 0);
  EXPECT_GT(report->aggregate.total_resumes,
            report->server.movies[0].report.total_resumes);
  EXPECT_GT(report->windows, 0);
  EXPECT_TRUE(report->complete);
  // Every cross-shard message is drained when the run ends.
  EXPECT_EQ(report->messages_posted, report->messages_drained);
  EXPECT_GT(report->messages_posted, 0u);
}

TEST(ShardedServerTest, AggregateMatchesSumOfMovies) {
  const auto report = RunShardedServerSimulation(FourMovies(),
                                                 BaseOptions(3, 2));
  ASSERT_TRUE(report.ok()) << report.status().message();
  int64_t resumes = 0;
  int64_t admissions = 0;
  for (const auto& m : report->server.movies) {
    resumes += m.report.total_resumes;
    admissions += m.report.admissions;
  }
  EXPECT_EQ(report->aggregate.total_resumes, resumes);
  EXPECT_EQ(report->aggregate.admissions, admissions);
}

TEST(ShardedServerTest, ReportIndependentOfShardAndThreadCount) {
  const auto golden = RunShardedServerSimulation(FourMovies(),
                                                 BaseOptions(1, 1));
  ASSERT_TRUE(golden.ok()) << golden.status().message();
  const std::string golden_text = golden->ToString();
  for (int shards : {2, 3, 4}) {
    for (int threads : {1, 2}) {
      const auto got = RunShardedServerSimulation(
          FourMovies(), BaseOptions(shards, threads));
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_EQ(got->ToString(), golden_text)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardedServerTest, ReserveLedgerConservedUnderAudit) {
  auto options = BaseOptions(2, 2);
  options.base.audit.enabled = true;
  options.base.dynamic_stream_reserve = 10;  // scarce: credits matter
  const auto report = RunShardedServerSimulation(FourMovies(), options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GT(report->server.refused_acquisitions, 0);
}

TEST(ShardedServerTest, ScarceReserveRefusesMoreThanAmpleReserve) {
  auto scarce = BaseOptions(2, 1);
  scarce.base.dynamic_stream_reserve = 5;
  auto ample = BaseOptions(2, 1);
  ample.base.dynamic_stream_reserve = 500;
  const auto scarce_report = RunShardedServerSimulation(FourMovies(), scarce);
  const auto ample_report = RunShardedServerSimulation(FourMovies(), ample);
  ASSERT_TRUE(scarce_report.ok() && ample_report.ok());
  EXPECT_GT(scarce_report->server.refusal_probability,
            ample_report->server.refusal_probability);
  EXPECT_LE(ample_report->server.refusal_probability, 0.01);
}

TEST(CreditStreamSupplierTest, CreditAndDebtLifecycle) {
  CreditStreamSupplier supplier;
  supplier.SetLedger(/*credit=*/2, /*debt=*/0);
  EXPECT_TRUE(supplier.TryAcquire(1.0));
  EXPECT_TRUE(supplier.TryAcquire(2.0));
  EXPECT_FALSE(supplier.TryAcquire(3.0));  // credit exhausted
  EXPECT_EQ(supplier.held(), 2);
  EXPECT_EQ(supplier.refused(), 1);
  // A fault assigns retirement debt: the next release retires instead of
  // re-lending.
  supplier.SetLedger(/*credit=*/0, /*debt=*/1);
  supplier.Release(4.0);
  EXPECT_EQ(supplier.held(), 1);
  EXPECT_EQ(supplier.debt(), 0);
  EXPECT_EQ(supplier.credit(), 0);
  supplier.Release(5.0);
  EXPECT_EQ(supplier.credit(), 1);
  EXPECT_EQ(supplier.window_refused(), 1);
  EXPECT_EQ(supplier.window_acquired(), 2);
  supplier.ResetWindow();
  EXPECT_EQ(supplier.window_refused(), 0);
  EXPECT_EQ(supplier.window_acquired(), 0);
}

TEST(ShardMailboxTest, SequenceAccounting) {
  ShardMailbox box;
  for (int i = 0; i < 5; ++i) {
    ShardMessage m;
    m.kind = 1;
    m.movie = i;
    box.Post(m);
  }
  EXPECT_EQ(box.posted(), 5u);
  const auto batch = box.Drain();
  ASSERT_EQ(batch.size(), 5u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].seq, i);
  }
  EXPECT_EQ(box.drained(), 5u);
  EXPECT_EQ(box.sequence_gaps(), 0u);
  EXPECT_TRUE(box.empty());
  // Draining an empty box is a no-op, not a gap.
  EXPECT_TRUE(box.Drain().empty());
  EXPECT_EQ(box.sequence_gaps(), 0u);
}

}  // namespace
}  // namespace vod
