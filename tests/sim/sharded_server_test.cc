#include "sim/sharded_server.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/mailbox.h"
#include "obs/event_log.h"
#include "sim/shard.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

std::vector<ServerMovieSpec> FourMovies() {
  std::vector<ServerMovieSpec> movies;
  movies.push_back({"alpha", MakeLayout(120.0, 40, 80.0), 0.5, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"beta", MakeLayout(90.0, 30, 45.0), 0.25, nullptr,
                    paper::Fig7SingleOpBehavior(VcrOp::kFastForward)});
  movies.push_back({"gamma", MakeLayout(100.0, 20, 50.0), 0.4, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"delta", MakeLayout(110.0, 25, 60.0), 0.3, nullptr,
                    paper::Fig7MixedBehavior()});
  return movies;
}

ShardedServerOptions BaseOptions(int shards, int threads) {
  ShardedServerOptions options;
  options.base.rates = paper::Rates();
  options.base.dynamic_stream_reserve = 60;
  options.base.warmup_minutes = 500.0;
  options.base.measurement_minutes = 4000.0;
  options.base.seed = 17;
  options.shards = shards;
  options.threads = threads;
  options.window_minutes = 50.0;
  return options;
}

TEST(ShardedServerTest, Validation) {
  auto movies = FourMovies();
  auto bad_shards = BaseOptions(0, 1);
  EXPECT_TRUE(RunShardedServerSimulation(movies, bad_shards)
                  .status()
                  .IsInvalidArgument());
  auto bad_window = BaseOptions(2, 1);
  bad_window.window_minutes = 0.0;
  EXPECT_TRUE(RunShardedServerSimulation(movies, bad_window)
                  .status()
                  .IsInvalidArgument());
  auto degradation = BaseOptions(2, 1);
  degradation.base.degradation.enabled = true;
  const auto st = RunShardedServerSimulation(movies, degradation).status();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("degradation"), std::string::npos);
  auto traced = BaseOptions(2, 1);
  EventLog log;
  traced.base.obs.event_log = &log;
  EXPECT_TRUE(RunShardedServerSimulation(movies, traced)
                  .status()
                  .IsInvalidArgument());
}

TEST(ShardedServerTest, RunsAndReportsEveryMovie) {
  const auto report = RunShardedServerSimulation(FourMovies(),
                                                 BaseOptions(2, 2));
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_EQ(report->server.movies.size(), 4u);
  EXPECT_EQ(report->server.movies[0].name, "alpha");
  EXPECT_EQ(report->server.movies[3].name, "delta");
  EXPECT_GT(report->server.movies[0].report.total_resumes, 0);
  EXPECT_GT(report->aggregate.total_resumes,
            report->server.movies[0].report.total_resumes);
  EXPECT_GT(report->windows, 0);
  EXPECT_TRUE(report->complete);
  // Every cross-shard message is drained when the run ends.
  EXPECT_EQ(report->messages_posted, report->messages_drained);
  EXPECT_GT(report->messages_posted, 0u);
}

TEST(ShardedServerTest, AggregateMatchesSumOfMovies) {
  const auto report = RunShardedServerSimulation(FourMovies(),
                                                 BaseOptions(3, 2));
  ASSERT_TRUE(report.ok()) << report.status().message();
  int64_t resumes = 0;
  int64_t admissions = 0;
  for (const auto& m : report->server.movies) {
    resumes += m.report.total_resumes;
    admissions += m.report.admissions;
  }
  EXPECT_EQ(report->aggregate.total_resumes, resumes);
  EXPECT_EQ(report->aggregate.admissions, admissions);
}

TEST(ShardedServerTest, ReportIndependentOfShardAndThreadCount) {
  const auto golden = RunShardedServerSimulation(FourMovies(),
                                                 BaseOptions(1, 1));
  ASSERT_TRUE(golden.ok()) << golden.status().message();
  const std::string golden_text = golden->ToString();
  for (int shards : {2, 3, 4}) {
    for (int threads : {1, 2}) {
      const auto got = RunShardedServerSimulation(
          FourMovies(), BaseOptions(shards, threads));
      ASSERT_TRUE(got.ok()) << got.status().message();
      EXPECT_EQ(got->ToString(), golden_text)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(ShardedServerTest, ReserveLedgerConservedUnderAudit) {
  auto options = BaseOptions(2, 2);
  options.base.audit.enabled = true;
  options.base.dynamic_stream_reserve = 10;  // scarce: credits matter
  const auto report = RunShardedServerSimulation(FourMovies(), options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GT(report->server.refused_acquisitions, 0);
}

TEST(ShardedServerTest, ScarceReserveRefusesMoreThanAmpleReserve) {
  auto scarce = BaseOptions(2, 1);
  scarce.base.dynamic_stream_reserve = 5;
  auto ample = BaseOptions(2, 1);
  ample.base.dynamic_stream_reserve = 500;
  const auto scarce_report = RunShardedServerSimulation(FourMovies(), scarce);
  const auto ample_report = RunShardedServerSimulation(FourMovies(), ample);
  ASSERT_TRUE(scarce_report.ok() && ample_report.ok());
  EXPECT_GT(scarce_report->server.refusal_probability,
            ample_report->server.refusal_probability);
  EXPECT_LE(ample_report->server.refusal_probability, 0.01);
}

TEST(CreditStreamSupplierTest, CreditAndDebtLifecycle) {
  CreditStreamSupplier supplier;
  supplier.SetLedger(/*credit=*/2, /*debt=*/0);
  EXPECT_TRUE(supplier.TryAcquire(1.0));
  EXPECT_TRUE(supplier.TryAcquire(2.0));
  EXPECT_FALSE(supplier.TryAcquire(3.0));  // credit exhausted
  EXPECT_EQ(supplier.held(), 2);
  EXPECT_EQ(supplier.refused(), 1);
  // A fault assigns retirement debt: the next release retires instead of
  // re-lending.
  supplier.SetLedger(/*credit=*/0, /*debt=*/1);
  supplier.Release(4.0);
  EXPECT_EQ(supplier.held(), 1);
  EXPECT_EQ(supplier.debt(), 0);
  EXPECT_EQ(supplier.credit(), 0);
  supplier.Release(5.0);
  EXPECT_EQ(supplier.credit(), 1);
  EXPECT_EQ(supplier.window_refused(), 1);
  EXPECT_EQ(supplier.window_acquired(), 2);
  supplier.ResetWindow();
  EXPECT_EQ(supplier.window_refused(), 0);
  EXPECT_EQ(supplier.window_acquired(), 0);
}

TEST(ShardMailboxTest, SequenceAccounting) {
  ShardMailbox box;
  for (int i = 0; i < 5; ++i) {
    ShardMessage m;
    m.kind = 1;
    m.movie = i;
    box.Post(m);
  }
  EXPECT_EQ(box.posted(), 5u);
  const auto batch = box.Drain();
  ASSERT_EQ(batch.size(), 5u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].seq, i);
  }
  EXPECT_EQ(box.drained(), 5u);
  EXPECT_EQ(box.sequence_gaps(), 0u);
  EXPECT_TRUE(box.empty());
  // Draining an empty box is a no-op, not a gap.
  EXPECT_TRUE(box.Drain().empty());
  EXPECT_EQ(box.sequence_gaps(), 0u);
}

}  // namespace
}  // namespace vod
