#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/deterministic.h"
#include "dist/exponential.h"
#include "dist/gamma.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

SimulationOptions ShortRun(VcrOp op) {
  SimulationOptions options;
  options.behavior = paper::Fig7SingleOpBehavior(op);
  options.warmup_minutes = 500.0;
  options.measurement_minutes = 8000.0;
  options.seed = 11;
  return options;
}

TEST(SimulatorTest, ValidatesOptions) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  SimulationOptions bad = ShortRun(VcrOp::kFastForward);
  bad.mean_interarrival_minutes = 0.0;
  EXPECT_TRUE(RunSimulation(layout, paper::Rates(), bad)
                  .status()
                  .IsInvalidArgument());
  bad = ShortRun(VcrOp::kFastForward);
  bad.measurement_minutes = 0.0;
  EXPECT_TRUE(RunSimulation(layout, paper::Rates(), bad)
                  .status()
                  .IsInvalidArgument());
  PlaybackRates bad_rates = paper::Rates();
  bad_rates.fast_forward = 0.5;
  EXPECT_TRUE(RunSimulation(layout, bad_rates, ShortRun(VcrOp::kFastForward))
                  .status()
                  .IsInvalidArgument());
}

TEST(SimulatorTest, DeterministicForSameSeed) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const auto a =
      RunSimulation(layout, paper::Rates(), ShortRun(VcrOp::kFastForward));
  const auto b =
      RunSimulation(layout, paper::Rates(), ShortRun(VcrOp::kFastForward));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->total_resumes, b->total_resumes);
  EXPECT_DOUBLE_EQ(a->hit_probability, b->hit_probability);
  EXPECT_EQ(a->admissions, b->admissions);
}

TEST(SimulatorTest, DifferentSeedsDiffer) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  SimulationOptions other = ShortRun(VcrOp::kFastForward);
  other.seed = 12;
  const auto a =
      RunSimulation(layout, paper::Rates(), ShortRun(VcrOp::kFastForward));
  const auto b = RunSimulation(layout, paper::Rates(), other);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->total_resumes, b->total_resumes);
}

TEST(SimulatorTest, MaxWaitNeverExceedsEquationTwo) {
  // The defining property of static partitioning: no viewer waits more than
  // w = (l − B)/n.
  for (int n : {20, 40}) {
    for (double b : {40.0, 80.0}) {
      const PartitionLayout layout = MakeLayout(120.0, n, b);
      const auto report = RunSimulation(layout, paper::Rates(),
                                        ShortRun(VcrOp::kFastForward));
      ASSERT_TRUE(report.ok());
      EXPECT_LE(report->max_wait_minutes, layout.max_wait() + 1e-9)
          << layout.ToString();
      // With Poisson arrivals the bound is essentially attained.
      EXPECT_GT(report->max_wait_minutes, 0.9 * layout.max_wait());
      EXPECT_LE(report->mean_wait_minutes, report->max_wait_minutes);
    }
  }
}

TEST(SimulatorTest, WaitQuantilesMatchTheMixtureShape) {
  // Arrivals land uniformly over the restart period: a fraction B/l waits
  // zero (type 2), the rest uniformly up to w. With B/l = 2/3 the median
  // wait is 0 and the p99 sits near w.
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const auto report = RunSimulation(layout, paper::Rates(),
                                    ShortRun(VcrOp::kPause));
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->p50_wait_minutes, 0.0, 0.02);
  EXPECT_GT(report->p99_wait_minutes, 0.85 * layout.max_wait());
  EXPECT_LE(report->p99_wait_minutes, layout.max_wait() + 1e-9);
}

TEST(SimulatorTest, Type2FractionMatchesWindowCoverage) {
  // Arrivals are uniform over the restart period; the enrollment window is
  // open for W out of T minutes, so the type-2 fraction ≈ W/T = B/l.
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const auto report = RunSimulation(layout, paper::Rates(),
                                    ShortRun(VcrOp::kFastForward));
  ASSERT_TRUE(report.ok());
  const double fraction = static_cast<double>(report->type2_admissions) /
                          static_cast<double>(report->admissions);
  EXPECT_NEAR(fraction, layout.coverage(), 0.03);
}

TEST(SimulatorTest, PassiveViewersNeverResume) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  SimulationOptions options;
  options.behavior.interactivity = nullptr;  // no VCR ops at all
  options.warmup_minutes = 100.0;
  options.measurement_minutes = 3000.0;
  const auto report = RunSimulation(layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_resumes, 0);
  EXPECT_DOUBLE_EQ(report->mean_dedicated_streams, 0.0);
  EXPECT_GT(report->completions, 0);
}

TEST(SimulatorTest, ConservationOfResumeOutcomes) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const auto report = RunSimulation(layout, paper::Rates(),
                                    ShortRun(VcrOp::kFastForward));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->hits_within + report->hits_jump + report->end_releases +
                report->misses,
            report->total_resumes);
  EXPECT_GT(report->total_resumes, 1000);
}

TEST(SimulatorTest, PureBatchingHasOnlyEndReleasesForFF) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 0.0);
  const auto report = RunSimulation(layout, paper::Rates(),
                                    ShortRun(VcrOp::kFastForward));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->hits_within, 0);
  EXPECT_EQ(report->hits_jump, 0);
  EXPECT_GT(report->end_releases, 0);
  EXPECT_GT(report->misses, 0);
}

TEST(SimulatorTest, FullBufferPauseAlwaysHits) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 120.0);
  const auto report =
      RunSimulation(layout, paper::Rates(), ShortRun(VcrOp::kPause));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->misses, 0);
  EXPECT_DOUBLE_EQ(report->hit_probability, 1.0);
}

TEST(SimulatorTest, ThroughputMatchesArrivalRate) {
  // Little's-law style sanity: admissions ≈ measurement_minutes / (1/λ).
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  SimulationOptions options = ShortRun(VcrOp::kPause);
  options.mean_interarrival_minutes = 2.0;
  const auto report = RunSimulation(layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  const double expected = options.measurement_minutes / 2.0;
  EXPECT_NEAR(report->admissions, expected, 0.05 * expected);
}

TEST(SimulatorTest, ConcurrentViewersNearLittlesLaw) {
  // Without VCR (passive), each admitted viewer stays l minutes:
  // E[viewers] = λ · l = 0.5 · 120 = 60.
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  SimulationOptions options;
  options.behavior.interactivity = nullptr;
  options.warmup_minutes = 1000.0;
  options.measurement_minutes = 20000.0;
  const auto report = RunSimulation(layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->mean_concurrent_viewers, 60.0, 3.0);
}

TEST(SimulatorTest, MissesHoldDedicatedStreams) {
  // A small buffer makes misses common; the dedicated-stream average must be
  // visibly positive.
  const PartitionLayout layout = MakeLayout(120.0, 40, 10.0);
  const auto report = RunSimulation(layout, paper::Rates(),
                                    ShortRun(VcrOp::kFastForward));
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->misses, 0);
  EXPECT_GT(report->mean_dedicated_streams, 0.5);
  EXPECT_GE(report->peak_dedicated_streams, report->mean_dedicated_streams);
}

TEST(SimulatorTest, LargerBufferYieldsHigherHitProbability) {
  const auto small = RunSimulation(MakeLayout(120.0, 40, 20.0),
                                   paper::Rates(),
                                   ShortRun(VcrOp::kFastForward));
  const auto large = RunSimulation(MakeLayout(120.0, 40, 100.0),
                                   paper::Rates(),
                                   ShortRun(VcrOp::kFastForward));
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->hit_probability, small->hit_probability + 0.2);
}

TEST(SimulatorTest, DeterministicPauseDurationHitsPeriodically) {
  // Pause of exactly one restart period T: the window pattern returns to the
  // same place, so the outcome equals "was I in a window when I paused" —
  // hit probability ≈ W/T for in-partition viewers... but every in-partition
  // viewer is in a window by definition, so all their pauses hit.
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);  // T = 3
  SimulationOptions options;
  options.behavior.mix = VcrMix::Only(VcrOp::kPause);
  options.behavior.durations =
      VcrDurations::AllSame(std::make_shared<DeterministicDistribution>(3.0));
  options.behavior.interactivity =
      std::make_shared<ExponentialDistribution>(30.0);
  options.warmup_minutes = 300.0;
  options.measurement_minutes = 6000.0;
  const auto report = RunSimulation(layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  // In-partition pauses of exactly T always resume inside the next window.
  EXPECT_GT(report->hit_probability_in_partition, 0.999);
}

TEST(SimulatorTest, ReportToStringMentionsKeyFields) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const auto report = RunSimulation(layout, paper::Rates(),
                                    ShortRun(VcrOp::kFastForward));
  ASSERT_TRUE(report.ok());
  const std::string s = report->ToString();
  EXPECT_NE(s.find("P(hit)"), std::string::npos);
  EXPECT_NE(s.find("resumes"), std::string::npos);
}

TEST(SimulatorTest, BatchMeansHalfWidthIsReportedAndSane) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const auto report = RunSimulation(layout, paper::Rates(),
                                    ShortRun(VcrOp::kFastForward));
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->in_partition_resumes, 2000);  // enough for >= 2 batches
  EXPECT_GT(report->hit_probability_in_partition_bm_halfwidth, 0.0);
  EXPECT_LT(report->hit_probability_in_partition_bm_halfwidth, 0.1);
  // Autocorrelation can only widen the interval relative to Wilson.
  const double wilson_half = 0.5 * (report->hit_probability_in_partition_high -
                                    report->hit_probability_in_partition_low);
  EXPECT_GT(report->hit_probability_in_partition_bm_halfwidth,
            0.5 * wilson_half);
}

TEST(SimulatorTest, WilsonIntervalBracketsEstimate) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const auto report = RunSimulation(layout, paper::Rates(),
                                    ShortRun(VcrOp::kRewind));
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->hit_probability_low, report->hit_probability);
  EXPECT_GE(report->hit_probability_high, report->hit_probability);
  EXPECT_LT(report->hit_probability_high - report->hit_probability_low,
            0.05);
}

}  // namespace
}  // namespace vod
