#include "sim/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/hit_model.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

TEST(VcrTraceTest, RecordsAndCounts) {
  VcrTrace trace;
  trace.Record(1.0, VcrOp::kFastForward, 5.0);
  trace.Record(2.0, VcrOp::kPause, 3.0);
  trace.Record(3.0, VcrOp::kFastForward, 7.0);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.CountOf(VcrOp::kFastForward), 2);
  EXPECT_EQ(trace.CountOf(VcrOp::kRewind), 0);
  EXPECT_EQ(trace.CountOf(VcrOp::kPause), 1);
  EXPECT_EQ(trace.DurationsOf(VcrOp::kFastForward),
            (std::vector<double>{5.0, 7.0}));
}

TEST(VcrTraceTest, CsvRoundTrip) {
  VcrTrace trace;
  trace.Record(1.25, VcrOp::kFastForward, 5.5);
  trace.Record(2.5, VcrOp::kRewind, 0.75);
  trace.Record(9.0, VcrOp::kPause, 12.0);
  std::ostringstream os;
  trace.WriteCsv(os);
  std::istringstream is(os.str());
  const auto parsed = VcrTrace::ReadCsv(is);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_DOUBLE_EQ(parsed->records()[0].time, 1.25);
  EXPECT_EQ(parsed->records()[1].op, VcrOp::kRewind);
  EXPECT_DOUBLE_EQ(parsed->records()[2].duration, 12.0);
}

TEST(VcrTraceTest, CsvRejectsMalformedInput) {
  {
    std::istringstream is("not,a,header\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
  {
    std::istringstream is("time,op,duration\n1.0,FF\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
  {
    std::istringstream is("time,op,duration\n1.0,SKIP,2.0\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
  {
    std::istringstream is("time,op,duration\nxx,FF,2.0\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
}

TEST(VcrTraceTest, CsvSkipsBlankLines) {
  // Editors and concatenation leave blank lines; they carry no data and
  // must not shift record indices or abort the parse.
  std::istringstream is(
      "time,op,duration\n\n1.0,FF,2.0\n\n\n2.0,RW,3.0\n\n");
  const auto parsed = VcrTrace::ReadCsv(is);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->records()[1].op, VcrOp::kRewind);
}

TEST(VcrTraceTest, CsvAcceptsWindowsLineEndings) {
  std::istringstream is("time,op,duration\r\n1.0,FF,2.0\r\n2.5,PAU,0.5\r\n");
  const auto parsed = VcrTrace::ReadCsv(is);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->records()[1].time, 2.5);
  EXPECT_EQ(parsed->records()[1].op, VcrOp::kPause);
}

TEST(VcrTraceTest, CsvRejectsTrailingAndEmbeddedGarbage) {
  {
    // Trailing comma: the duration field becomes "2.0," which must not
    // silently parse as 2.0.
    std::istringstream is("time,op,duration\n1.0,FF,2.0,\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
  {
    // Extra field smuggled into the duration column.
    std::istringstream is("time,op,duration\n1.0,FF,2.0,extra\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
  {
    // Units suffix on a numeric field.
    std::istringstream is("time,op,duration\n1.0min,FF,2.0\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
  {
    // Empty numeric fields.
    std::istringstream is("time,op,duration\n,FF,2.0\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
  {
    std::istringstream is("time,op,duration\n1.0,FF,\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
}

TEST(VcrTraceTest, CsvRejectsNonFiniteAndNegativeValues) {
  {
    std::istringstream is("time,op,duration\nnan,FF,2.0\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
  {
    std::istringstream is("time,op,duration\n1.0,FF,inf\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
  {
    std::istringstream is("time,op,duration\n1.0,FF,-2.0\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument());
  }
}

TEST(VcrTraceTest, CsvRejectsOutOfRangeOpNames) {
  // Case and whitespace matter: the writer emits exactly "FF"/"RW"/"PAU".
  for (const char* op : {"ff", "FFX", " FF", "PAUSE", "3", ""}) {
    std::istringstream is(std::string("time,op,duration\n1.0,") + op +
                          ",2.0\n");
    EXPECT_TRUE(VcrTrace::ReadCsv(is).status().IsInvalidArgument())
        << "op '" << op << "' should be rejected";
  }
}

TEST(VcrTraceTest, CsvRoundTripPropertyOnRandomTraces) {
  // Property test: ReadCsv(WriteCsv(t)) == t bit-for-bit, including
  // awkward doubles (subnormals, near-integer, many digits).
  Rng rng(20260806);
  for (int round = 0; round < 20; ++round) {
    VcrTrace trace;
    const int n = 1 + static_cast<int>(rng.UniformInt(200));
    for (int i = 0; i < n; ++i) {
      const double time = rng.Uniform(0.0, 1e6);
      const auto op =
          static_cast<VcrOp>(static_cast<int>(rng.UniformInt(3)));
      double duration = rng.Uniform(0.0, 120.0);
      if (rng.UniformInt(10) == 0) duration = 5e-324;  // min subnormal
      if (rng.UniformInt(10) == 0) duration = 0.0;
      trace.Record(time, op, duration);
    }
    std::ostringstream os;
    trace.WriteCsv(os);
    std::istringstream is(os.str());
    const auto parsed = VcrTrace::ReadCsv(is);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ASSERT_EQ(parsed->size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(parsed->records()[i].time, trace.records()[i].time);
      EXPECT_EQ(parsed->records()[i].op, trace.records()[i].op);
      EXPECT_EQ(parsed->records()[i].duration, trace.records()[i].duration);
    }
  }
}

TEST(FitBehaviorTest, RecoversMixAndDurations) {
  VcrTrace trace;
  Rng rng(5);
  const auto behavior = paper::Fig7MixedBehavior();
  for (int i = 0; i < 20000; ++i) {
    const VcrOp op = behavior.SampleOp(&rng);
    trace.Record(static_cast<double>(i), op,
                 behavior.SampleDuration(op, &rng));
  }
  const auto fitted = FitBehaviorFromTrace(trace);
  ASSERT_TRUE(fitted.ok()) << fitted.status();
  EXPECT_NEAR(fitted->mix.p_fast_forward, 0.2, 0.02);
  EXPECT_NEAR(fitted->mix.p_rewind, 0.2, 0.02);
  EXPECT_NEAR(fitted->mix.p_pause, 0.6, 0.02);
  EXPECT_TRUE(fitted->mix.Validate().ok());
  ASSERT_NE(fitted->durations.fast_forward, nullptr);
  EXPECT_NEAR(fitted->durations.fast_forward->Mean(), 8.0, 0.3);
  EXPECT_NEAR(fitted->durations.pause->Mean(), 8.0, 0.3);
}

TEST(FitBehaviorTest, ErrorsOnEmptyOrSparseTraces) {
  VcrTrace empty;
  EXPECT_TRUE(FitBehaviorFromTrace(empty).status().IsInvalidArgument());

  VcrTrace sparse;
  for (int i = 0; i < 100; ++i) {
    sparse.Record(i, VcrOp::kFastForward, 5.0 + i * 0.01);
  }
  sparse.Record(200.0, VcrOp::kRewind, 1.0);  // a single RW sample
  EXPECT_TRUE(FitBehaviorFromTrace(sparse).status().IsInvalidArgument());
  // With the RW op absent it fits fine.
  VcrTrace clean;
  for (int i = 0; i < 100; ++i) {
    clean.Record(i, VcrOp::kFastForward, 5.0 + i * 0.01);
  }
  const auto fitted = FitBehaviorFromTrace(clean);
  ASSERT_TRUE(fitted.ok());
  EXPECT_DOUBLE_EQ(fitted->mix.p_fast_forward, 1.0);
  EXPECT_EQ(fitted->durations.rewind, nullptr);
}

TEST(FitBehaviorTest, SimulatorTraceFeedsTheModel) {
  // The full operator loop: simulate "production", log the trace, fit, and
  // check the model evaluated on the *fitted* behavior matches the model on
  // the *true* behavior.
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  ASSERT_TRUE(layout.ok());
  VcrTrace trace;
  SimulationOptions options;
  options.behavior = paper::Fig7MixedBehavior();
  options.warmup_minutes = 0.0;  // behavior logging needs no warmup
  options.measurement_minutes = 30000.0;
  options.trace = &trace;
  const auto report = RunSimulation(*layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(trace.size(), 10000u);

  const auto fitted = FitBehaviorFromTrace(trace);
  ASSERT_TRUE(fitted.ok());

  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(model.ok());
  const auto p_true = model->HitProbability(
      VcrMix::PaperMixed(), VcrDurations::AllSame(paper::Fig7Duration()));
  const auto p_fitted =
      model->HitProbability(fitted->mix, fitted->durations);
  ASSERT_TRUE(p_true.ok() && p_fitted.ok());
  EXPECT_NEAR(*p_fitted, *p_true, 0.02);
}

}  // namespace
}  // namespace vod
