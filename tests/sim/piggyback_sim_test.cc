// Piggyback merging end-to-end in the single-movie simulator.

#include <gtest/gtest.h>

#include "core/piggyback.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

SimulationOptions BaseOptions(VcrOp op) {
  SimulationOptions options;
  options.behavior = paper::Fig7SingleOpBehavior(op);
  options.warmup_minutes = 1000.0;
  options.measurement_minutes = 20000.0;
  options.seed = 99;
  return options;
}

TEST(PiggybackSimTest, MergesHappenAndReduceStreamHolding) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 40.0);  // miss-heavy
  SimulationOptions without = BaseOptions(VcrOp::kFastForward);
  SimulationOptions with = BaseOptions(VcrOp::kFastForward);
  with.piggyback.enabled = true;
  with.piggyback.speed_delta = 0.05;

  const auto a = RunSimulation(layout, paper::Rates(), without);
  const auto b = RunSimulation(layout, paper::Rates(), with);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->piggyback_merges, 0);
  EXPECT_GT(b->piggyback_merges, 1000);
  // The whole point: merged viewers release their streams early.
  EXPECT_LT(b->mean_dedicated_streams, 0.6 * a->mean_dedicated_streams);
}

TEST(PiggybackSimTest, MeanMergeTimeNearAnalyticExpectation) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 40.0);  // w = 2
  SimulationOptions options = BaseOptions(VcrOp::kFastForward);
  options.piggyback.enabled = true;
  options.piggyback.speed_delta = 0.05;
  const auto report = RunSimulation(layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  const double expected =
      ExpectedPiggybackMergeMinutes(layout, options.piggyback);
  EXPECT_NEAR(expected, 2.0 / 0.2, 1e-12);  // w/(4Δ) = 10 minutes
  // Resume phases are not exactly uniform in the gap and drifts can be
  // interrupted by further VCR activity or the movie end, so allow a wide
  // band around the uniform-phase expectation.
  EXPECT_GT(report->mean_merge_minutes, 0.4 * expected);
  EXPECT_LT(report->mean_merge_minutes, 1.6 * expected);
}

TEST(PiggybackSimTest, FasterDeltaMergesSooner) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 40.0);
  SimulationOptions slow = BaseOptions(VcrOp::kPause);
  slow.piggyback.enabled = true;
  slow.piggyback.speed_delta = 0.02;
  SimulationOptions fast = BaseOptions(VcrOp::kPause);
  fast.piggyback.enabled = true;
  fast.piggyback.speed_delta = 0.10;
  const auto a = RunSimulation(layout, paper::Rates(), slow);
  const auto b = RunSimulation(layout, paper::Rates(), fast);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(a->mean_merge_minutes, 2.0 * b->mean_merge_minutes);
}

TEST(PiggybackSimTest, HitProbabilityIsUnaffected) {
  // Merging only changes what happens *after* a miss; the resume hit
  // probability of in-partition viewers must stay put.
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  SimulationOptions without = BaseOptions(VcrOp::kPause);
  SimulationOptions with = BaseOptions(VcrOp::kPause);
  with.piggyback.enabled = true;
  with.piggyback.speed_delta = 0.05;
  const auto a = RunSimulation(layout, paper::Rates(), without);
  const auto b = RunSimulation(layout, paper::Rates(), with);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->hit_probability_in_partition,
              b->hit_probability_in_partition, 0.02);
}

TEST(PiggybackSimTest, ValidationPropagates) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  SimulationOptions options = BaseOptions(VcrOp::kPause);
  options.piggyback.enabled = true;
  options.piggyback.speed_delta = 2.0;
  EXPECT_TRUE(RunSimulation(layout, paper::Rates(), options)
                  .status()
                  .IsInvalidArgument());
}

TEST(PiggybackSimTest, PureBatchingDisablesDriftGracefully) {
  // No windows to merge into: the option is a no-op, not a crash.
  const PartitionLayout layout = MakeLayout(120.0, 40, 0.0);
  SimulationOptions options = BaseOptions(VcrOp::kFastForward);
  options.piggyback.enabled = true;
  const auto report = RunSimulation(layout, paper::Rates(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->piggyback_merges, 0);
}

}  // namespace
}  // namespace vod
