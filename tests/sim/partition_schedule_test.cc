#include "sim/partition_schedule.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "common/rng.h"

namespace vod {
namespace {

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

// Oracle: scan a wide stream-index range and apply the coverage definition
// directly.
std::optional<int64_t> BruteForceCovering(const PartitionLayout& layout,
                                          bool stationary, double t,
                                          double p) {
  if (p < 0.0 || p > layout.movie_length() || layout.window() <= 0.0) {
    return std::nullopt;
  }
  const double period = layout.restart_period();
  std::optional<int64_t> best;
  for (int64_t k = -500; k <= 500; ++k) {
    if (!stationary && k < 0) continue;
    const double lead = t - k * period;
    const double buffered_lo = std::max(0.0, lead - layout.window());
    const double buffered_hi = std::min(lead, layout.movie_length());
    if (lead <= 0.0) continue;
    if (p >= buffered_lo && p <= buffered_hi) {
      if (!best.has_value() || k > *best) best = k;  // youngest
    }
  }
  return best;
}

TEST(PartitionScheduleTest, NextRestartOnGrid) {
  PartitionSchedule schedule(MakeLayout(120.0, 40, 80.0));  // T = 3
  EXPECT_DOUBLE_EQ(schedule.NextRestart(0.0), 0.0);
  EXPECT_DOUBLE_EQ(schedule.NextRestart(0.1), 3.0);
  EXPECT_DOUBLE_EQ(schedule.NextRestart(2.999), 3.0);
  EXPECT_DOUBLE_EQ(schedule.NextRestart(3.0), 3.0);
  EXPECT_DOUBLE_EQ(schedule.NextRestart(100.5), 102.0);
}

TEST(PartitionScheduleTest, NonStationaryClampsToZero) {
  PartitionSchedule schedule(MakeLayout(120.0, 40, 80.0),
                             /*stationary=*/false);
  EXPECT_DOUBLE_EQ(schedule.NextRestart(-5.0), 0.0);
}

TEST(PartitionScheduleTest, StreamLeadIsElapsedTime) {
  PartitionSchedule schedule(MakeLayout(120.0, 40, 80.0));
  EXPECT_DOUBLE_EQ(schedule.StreamLead(0, 7.5), 7.5);
  EXPECT_DOUBLE_EQ(schedule.StreamLead(2, 7.5), 1.5);
  EXPECT_DOUBLE_EQ(schedule.StreamLead(-1, 7.5), 10.5);
}

TEST(PartitionScheduleTest, CoveringStreamBasicGeometry) {
  // T = 3, W = 2. At t = 100 (a restart boundary + 1 period...), position
  // p is covered iff some lead ∈ [p, p + 2].
  PartitionSchedule schedule(MakeLayout(120.0, 40, 80.0));
  const double t = 100.0;
  // p = 99.5: leads are 100 - 3k; k=1 gives lead 97 < 99.5; k=0 gives 100
  // ∈ [99.5, 101.5] -> covered by stream 0.
  const auto hit = schedule.FindCoveringStream(t, 99.5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0);
  // p = 97.5: lead must be in [97.5, 99.5]; leads near: 100 (k=0), 97 (k=1):
  // neither -> gap.
  EXPECT_FALSE(schedule.FindCoveringStream(t, 97.5).has_value());
}

TEST(PartitionScheduleTest, PositionOutsideMovieNeverCovered) {
  PartitionSchedule schedule(MakeLayout(120.0, 40, 80.0));
  EXPECT_FALSE(schedule.FindCoveringStream(50.0, -0.5).has_value());
  EXPECT_FALSE(schedule.FindCoveringStream(50.0, 121.0).has_value());
}

TEST(PartitionScheduleTest, PureBatchingNeverCovers) {
  PartitionSchedule schedule(MakeLayout(120.0, 40, 0.0));
  for (double p : {0.0, 10.0, 60.0}) {
    EXPECT_FALSE(schedule.FindCoveringStream(33.3, p).has_value());
  }
  EXPECT_FALSE(schedule.EnrollmentOpen(33.3));
}

TEST(PartitionScheduleTest, FullBufferAlwaysCovers) {
  PartitionSchedule schedule(MakeLayout(120.0, 40, 120.0));
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.Uniform(0.0, 500.0);
    const double p = rng.Uniform(0.0, 120.0);
    EXPECT_TRUE(schedule.FindCoveringStream(t, p).has_value())
        << "t=" << t << " p=" << p;
  }
}

TEST(PartitionScheduleTest, EnrollmentOpenFractionIsWindowOverPeriod) {
  // Position 0 is covered exactly while the newest stream's lead <= W:
  // a fraction W/T of the time.
  PartitionSchedule schedule(MakeLayout(120.0, 40, 80.0));  // W/T = 2/3
  int open = 0;
  const int samples = 30000;
  Rng rng(5);
  for (int i = 0; i < samples; ++i) {
    if (schedule.EnrollmentOpen(rng.Uniform(0.0, 3000.0))) ++open;
  }
  EXPECT_NEAR(static_cast<double>(open) / samples, 2.0 / 3.0, 0.01);
}

TEST(PartitionScheduleTest, MatchesBruteForceOracle) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  for (bool stationary : {true, false}) {
    PartitionSchedule schedule(layout, stationary);
    Rng rng(6);
    for (int i = 0; i < 3000; ++i) {
      const double t = rng.Uniform(0.0, 400.0);
      const double p = rng.Uniform(-5.0, 125.0);
      const auto expected = BruteForceCovering(layout, stationary, t, p);
      const auto got = schedule.FindCoveringStream(t, p);
      ASSERT_EQ(got.has_value(), expected.has_value())
          << "t=" << t << " p=" << p << " stationary=" << stationary;
      if (expected.has_value()) {
        ASSERT_EQ(*got, *expected) << "t=" << t << " p=" << p;
      }
    }
  }
}

TEST(PartitionScheduleTest, EarlyTimesNonStationaryHaveNoHistory) {
  PartitionSchedule schedule(MakeLayout(120.0, 40, 80.0),
                             /*stationary=*/false);
  // At t = 1 only stream 0 exists with lead 1; position 50 can't be covered.
  EXPECT_FALSE(schedule.FindCoveringStream(1.0, 50.0).has_value());
  // Stationary pretends history exists.
  PartitionSchedule stationary(MakeLayout(120.0, 40, 80.0));
  EXPECT_TRUE(stationary.FindCoveringStream(1.0, 50.0).has_value() ||
              !stationary.FindCoveringStream(1.0, 50.0).has_value());
  // Specifically, position 49.5 at t = 1: lead 49.5..51.5 needs k with
  // 1 - 3k in that band -> k = -17 gives lead 52 (no), k = -16 gives 49 (no).
  // Just assert the oracle agrees.
  const auto expected = BruteForceCovering(MakeLayout(120.0, 40, 80.0), true,
                                           1.0, 49.5);
  EXPECT_EQ(stationary.FindCoveringStream(1.0, 49.5).has_value(),
            expected.has_value());
}

TEST(PartitionScheduleTest, ActiveStreamsCountIsAboutN) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  PartitionSchedule schedule(layout);
  // Streams hold buffers for l + W minutes, spaced T apart:
  // (l + W)/T = 122/3 ≈ 40.7 -> 40 or 41 active.
  for (double t : {10.0, 55.5, 100.0, 333.3}) {
    const auto active = schedule.ActiveStreams(t);
    EXPECT_GE(active.size(), 40u) << "t=" << t;
    EXPECT_LE(active.size(), 41u) << "t=" << t;
    // Oldest first.
    for (size_t i = 1; i < active.size(); ++i) {
      EXPECT_LT(active[i - 1], active[i]);
    }
  }
}

TEST(PartitionScheduleTest, CoveringStreamLeadBracketsPosition) {
  const PartitionLayout layout = MakeLayout(90.0, 30, 45.0);
  PartitionSchedule schedule(layout);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double t = rng.Uniform(0.0, 300.0);
    const double p = rng.Uniform(0.0, 90.0);
    const auto k = schedule.FindCoveringStream(t, p);
    if (!k.has_value()) continue;
    const double lead = schedule.StreamLead(*k, t);
    EXPECT_GE(lead, p - 1e-9);
    EXPECT_LE(lead, p + layout.window() + 1e-9);
  }
}

}  // namespace
}  // namespace vod
