// Differential wall for the batched event kernel (DESIGN.md §15): every
// driver must produce a byte-identical report whether the kernel dispatches
// events one at a time (scalar_event_dispatch = true) or extracts same-kind
// same-time runs and hands them to batch handlers (the default). Batching is
// a pure execution-strategy change — any report byte that moves is a kernel
// bug, and this suite is the tripwire.
//
// Coverage matrix: single-movie basic, piggyback merging, server with
// faults + degradation + paranoid audit, server with the reallocation
// controller, and the sharded server at 1/4/8 shards (single- and
// multi-threaded). The paranoid-audit leg additionally proves that observer
// ticks fired after a batch (K ticks at the shared timestamp) still satisfy
// every conservation law at the settled state.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/arrival_process.h"
#include "sim/server.h"
#include "sim/sharded_server.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

SimulationOptions BasicOptions(uint64_t seed) {
  SimulationOptions options;
  options.behavior = paper::Fig7MixedBehavior();
  options.warmup_minutes = 200.0;
  options.measurement_minutes = 6000.0;
  options.seed = seed;
  return options;
}

TEST(DispatchDifferentialTest, SingleMovieReportsAreByteIdentical) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  for (uint64_t seed : {42u, 7u, 999u}) {
    SimulationOptions batched = BasicOptions(seed);
    SimulationOptions scalar = BasicOptions(seed);
    scalar.scalar_event_dispatch = true;
    const auto rb = RunSimulation(layout, paper::Rates(), batched);
    const auto rs = RunSimulation(layout, paper::Rates(), scalar);
    ASSERT_TRUE(rb.ok() && rs.ok());
    EXPECT_EQ(rb->ToString(), rs->ToString()) << "seed " << seed;
    // Both strategies execute the same logical events.
    EXPECT_EQ(rb->executed_events, rs->executed_events) << "seed " << seed;
  }
}

TEST(DispatchDifferentialTest, PiggybackReportsAreByteIdentical) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  SimulationOptions batched = BasicOptions(42);
  batched.piggyback.enabled = true;
  batched.piggyback.speed_delta = 0.05;
  SimulationOptions scalar = batched;
  scalar.scalar_event_dispatch = true;
  const auto rb = RunSimulation(layout, paper::Rates(), batched);
  const auto rs = RunSimulation(layout, paper::Rates(), scalar);
  ASSERT_TRUE(rb.ok() && rs.ok());
  ASSERT_GT(rb->piggyback_merges, 0) << "leg must exercise merging";
  EXPECT_EQ(rb->ToString(), rs->ToString());
}

std::vector<ServerMovieSpec> ThreeMovies() {
  std::vector<ServerMovieSpec> movies;
  movies.push_back({"alpha", MakeLayout(120.0, 40, 80.0), 0.5, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"beta", MakeLayout(90.0, 30, 45.0), 0.25, nullptr,
                    paper::Fig7SingleOpBehavior(VcrOp::kFastForward)});
  movies.push_back({"gamma", MakeLayout(100.0, 20, 50.0), 0.4, nullptr,
                    paper::Fig7MixedBehavior()});
  return movies;
}

ServerOptions ServerBase(uint64_t seed) {
  ServerOptions options;
  options.rates = paper::Rates();
  options.dynamic_stream_reserve = 40;
  options.warmup_minutes = 300.0;
  options.measurement_minutes = 5000.0;
  options.seed = seed;
  return options;
}

TEST(DispatchDifferentialTest, FaultsAndParanoidAuditAreByteIdentical) {
  ServerOptions batched = ServerBase(17);
  batched.dynamic_stream_reserve = 24;  // scarce: the ladder must engage
  batched.faults.enabled = true;
  batched.faults.disks = 4;
  batched.faults.profile.mtbf_minutes = 1500.0;
  batched.faults.profile.mttr_minutes = 300.0;
  batched.degradation.enabled = true;
  batched.degradation.queue_deadline_minutes = 5.0;
  batched.audit.enabled = true;
  batched.audit.every_events = 1;  // paranoid: audit after every event
  ServerOptions scalar = batched;
  scalar.scalar_event_dispatch = true;
  const auto rb = RunServerSimulation(ThreeMovies(), batched);
  const auto rs = RunServerSimulation(ThreeMovies(), scalar);
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_GT(rb->resilience.disk_failures, 0) << "leg must exercise faults";
  EXPECT_EQ(rb->ToString(), rs->ToString());
}

TEST(DispatchDifferentialTest, ActiveControllerIsByteIdentical) {
  std::vector<ServerMovieSpec> movies = ThreeMovies();
  const auto flash = FlashArrivals::Create(
      movies[0].arrival_rate_per_minute, /*peak_factor=*/4.0,
      /*start_minutes=*/200.0, /*duration_minutes=*/1200.0);
  ASSERT_TRUE(flash.ok());
  movies[0].arrivals = std::make_shared<FlashArrivals>(*flash);

  ServerOptions batched = ServerBase(42);
  batched.dynamic_stream_reserve = 20;
  batched.degradation.enabled = true;
  batched.degradation.queue_deadline_minutes = 5.0;
  batched.controller.enabled = true;
  batched.audit.enabled = true;  // a violated law fails the run
  ServerOptions scalar = batched;
  scalar.scalar_event_dispatch = true;
  const auto rb = RunServerSimulation(movies, batched);
  const auto rs = RunServerSimulation(movies, scalar);
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_TRUE(rb->controller.Active()) << "leg must exercise migrations";
  EXPECT_EQ(rb->ToString(), rs->ToString());
}

std::vector<ServerMovieSpec> FourMovies() {
  std::vector<ServerMovieSpec> movies = ThreeMovies();
  movies.push_back({"delta", MakeLayout(110.0, 25, 60.0), 0.3, nullptr,
                    paper::Fig7MixedBehavior()});
  return movies;
}

ShardedServerOptions ShardedOptions(int shards, int threads) {
  ShardedServerOptions options;
  options.base.rates = paper::Rates();
  options.base.dynamic_stream_reserve = 60;
  options.base.warmup_minutes = 300.0;
  options.base.measurement_minutes = 3000.0;
  options.base.seed = 17;
  options.shards = shards;
  options.threads = threads;
  options.window_minutes = 50.0;
  return options;
}

TEST(DispatchDifferentialTest, ShardedReportsAreByteIdentical) {
  for (int shards : {1, 4, 8}) {
    ShardedServerOptions batched = ShardedOptions(shards, shards > 1 ? 2 : 1);
    ShardedServerOptions scalar = batched;
    scalar.base.scalar_event_dispatch = true;
    const auto rb = RunShardedServerSimulation(FourMovies(), batched);
    const auto rs = RunShardedServerSimulation(FourMovies(), scalar);
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rb->ToString(), rs->ToString()) << shards << " shards";
  }
}

}  // namespace
}  // namespace vod
