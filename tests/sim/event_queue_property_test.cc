// Property, regression, and format-compatibility tests for the slab/4-ary
// heap event-queue kernel.
//
//  * Randomized property test: the kernel is driven with a mixed
//    schedule/cancel/pop workload and compared op-for-op against a naive
//    std::multimap reference keyed by (time, insertion sequence). Covers pop
//    order, Cancel semantics, and stale-token safety while slots are being
//    reused. Labeled "unit" so the asan/ubsan and tsan CI legs execute it.
//  * Compaction regression: cancel-heavy bursts must not pin heap memory
//    (the lazy-deletion leak the compactor exists to prevent).
//  * PR 3-era snapshot compatibility: a hand-built old-format blob (the
//    pre-slab layout: clock, seq counter, executed, (time, seq, kind,
//    payload) entries) must restore and drain in the original order.

#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "common/serialize.h"

namespace vod {
namespace {

// ---- randomized property test vs std::multimap ----------------------------

/// Deterministic 64-bit LCG so failures reproduce exactly.
class MixRng {
 public:
  explicit MixRng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 11;
  }
  /// Uniform in [0, n).
  uint64_t Below(uint64_t n) { return Next() % n; }

 private:
  uint64_t state_;
};

/// Reference model: events keyed by (time, schedule sequence), the exact
/// order the kernel promises. Also remembers every token ever issued and
/// whether its event is still live, so stale cancels can be replayed against
/// both implementations.
struct ReferenceModel {
  // (time, seq) -> event id. multimap iteration order is the required
  // execution order.
  std::multimap<std::pair<double, uint64_t>, uint64_t> pending;
  uint64_t next_seq = 0;
};

TEST(EventQueuePropertyTest, MatchesMultimapReferenceUnderRandomMix) {
  for (const uint64_t seed : {1ULL, 42ULL, 20260806ULL}) {
    EventQueue q;
    ReferenceModel ref;
    MixRng rng(seed);

    std::vector<uint64_t> executed_ids;        // from the kernel
    std::vector<uint64_t> expected_ids;        // from the reference
    uint64_t next_id = 0;

    // Handler path: payload is the event id. Exercises the allocation-free
    // fast path alongside closure events.
    const uint64_t kHandlerKind = q.AddHandler(
        [&executed_ids](uint64_t payload) { executed_ids.push_back(payload); });

    // Live bookkeeping: token -> (event id, reference key). Dead tokens move
    // to `stale_tokens` and are fired at the kernel later, while their slots
    // are being recycled by new schedules.
    std::map<EventToken, std::pair<uint64_t, std::pair<double, uint64_t>>>
        live;
    std::vector<EventToken> stale_tokens;

    const auto schedule_one = [&] {
      const double t =
          q.Now() + static_cast<double>(rng.Below(1000)) / 16.0;
      const uint64_t id = next_id++;
      EventToken tok;
      if (rng.Below(2) == 0) {
        tok = q.ScheduleHandler(t, kHandlerKind, id);
      } else {
        tok = q.Schedule(t, [&executed_ids, id] { executed_ids.push_back(id); });
      }
      const auto key = std::make_pair(t, ref.next_seq++);
      ref.pending.emplace(key, id);
      ASSERT_TRUE(live.emplace(tok, std::make_pair(id, key)).second)
          << "kernel issued a duplicate token for a live event";
    };

    for (int op = 0; op < 20000; ++op) {
      const uint64_t dice = rng.Below(10);
      if (dice < 5) {  // 50%: schedule
        schedule_one();
      } else if (dice < 7 && !live.empty()) {  // 20%: cancel a live event
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.Below(live.size())));
        q.Cancel(it->first);
        ref.pending.erase(ref.pending.find(it->second.second));
        stale_tokens.push_back(it->first);
        live.erase(it);
      } else if (dice == 7 && !stale_tokens.empty()) {  // 10%: stale cancel
        // Must be a no-op even though the token's slot may by now hold a
        // different live event.
        q.Cancel(stale_tokens[rng.Below(stale_tokens.size())]);
      } else {  // pop
        const bool kernel_ran = q.RunNext();
        ASSERT_EQ(kernel_ran, !ref.pending.empty());
        if (kernel_ran) {
          const auto head = ref.pending.begin();
          expected_ids.push_back(head->second);
          // Retire the executed event's token.
          for (auto it = live.begin(); it != live.end(); ++it) {
            if (it->second.first == head->second) {
              stale_tokens.push_back(it->first);
              live.erase(it);
              break;
            }
          }
          ref.pending.erase(head);
        }
      }
      ASSERT_EQ(q.pending(), ref.pending.size());
    }

    // Drain both and compare the complete execution history.
    while (q.RunNext()) {
      const auto head = ref.pending.begin();
      ASSERT_NE(head, ref.pending.end());
      expected_ids.push_back(head->second);
      ref.pending.erase(head);
    }
    EXPECT_TRUE(ref.pending.empty());
    EXPECT_EQ(executed_ids, expected_ids) << "seed " << seed;
  }
}

TEST(EventQueuePropertyTest, StaleTokenNeverCancelsSlotReuser) {
  // Directed version of the reuse hazard: cancel A, let B recycle A's slab
  // slot, then replay A's token. Generation stamps must protect B.
  EventQueue q;
  int b_runs = 0;
  const EventToken a = q.Schedule(1.0, [] { FAIL() << "A was cancelled"; });
  q.Cancel(a);
  // The freed slot is head of the free list, so B reuses it immediately.
  const EventToken b = q.Schedule(2.0, [&b_runs] { ++b_runs; });
  EXPECT_EQ(static_cast<uint32_t>(a), static_cast<uint32_t>(b))
      << "test premise: B must recycle A's slot";
  q.Cancel(a);  // stale token, same slot, older generation
  while (q.RunNext()) {
  }
  EXPECT_EQ(b_runs, 1);
}

TEST(EventQueuePropertyTest, TokensRemainDistinctAcrossManyReuses) {
  // A slot reused N times must issue N distinct tokens, and only the newest
  // may cancel the current occupant.
  EventQueue q;
  std::vector<EventToken> history;
  for (int round = 0; round < 100; ++round) {
    const EventToken t = q.Schedule(1.0, [] { FAIL() << "cancelled"; });
    for (const EventToken old : history) EXPECT_NE(old, t);
    // Older tokens are all stale; none may touch the live event.
    for (const EventToken old : history) q.Cancel(old);
    EXPECT_EQ(q.pending(), 1u);
    q.Cancel(t);
    history.push_back(t);
  }
  EXPECT_EQ(q.pending(), 0u);
  int runs = 0;
  q.Schedule(1.0, [&runs] { ++runs; });
  while (q.RunNext()) {
  }
  EXPECT_EQ(runs, 1);
}

// ---- compaction / lazy-deletion leak regression ----------------------------

TEST(EventQueueCompactionTest, CancelHeavyBurstDoesNotPinHeapMemory) {
  // Before the compactor, each cancelled event left its heap key behind
  // until pop time; a mass-abandonment burst at a far-future timestamp
  // pinned O(cancelled) memory indefinitely. Now tombstones may never
  // exceed live keys (plus the small-heap threshold below which compaction
  // is pointless).
  EventQueue q;
  std::vector<EventToken> tokens;
  constexpr int kBurst = 100000;
  tokens.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    tokens.push_back(q.Schedule(1.0e6 + i, [] {}));
  }
  // Keep a handful alive so the heap cannot trivially empty.
  for (int i = 0; i < kBurst - 10; ++i) q.Cancel(tokens[i]);
  EXPECT_EQ(q.pending(), 10u);
  // Invariant maintained by Cancel: tombstones <= max(live, threshold).
  EXPECT_LE(q.heap_nodes(), 2u * q.pending() + 64u)
      << "cancelled keys are pinning heap memory";
}

TEST(EventQueueCompactionTest, RepeatedBurstsKeepSlabAndHeapBounded) {
  // Steady-state churn: every round schedules a wave and cancels most of
  // it. Slab and heap must stay proportional to the peak concurrent
  // population, not to cumulative throughput.
  EventQueue q;
  constexpr int kRounds = 50;
  constexpr int kWave = 1000;
  size_t max_concurrent = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<EventToken> wave;
    wave.reserve(kWave);
    const double base = q.Now() + 1.0;
    for (int i = 0; i < kWave; ++i) {
      wave.push_back(q.Schedule(base + i, [] {}));
    }
    max_concurrent = std::max(max_concurrent, q.pending());
    for (int i = 0; i < kWave; ++i) {
      if (i % 10 != 0) q.Cancel(wave[i]);
    }
    q.RunUntil(base + kWave);  // drain the survivors
  }
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.heap_nodes(), 0u);
  EXPECT_LE(q.slab_slots(), max_concurrent + 64)
      << "slab grew with throughput instead of peak population";
}

TEST(EventQueueCompactionTest, CompactionPreservesExecutionOrder) {
  // Force a compaction mid-stream and check the survivors still run in
  // (time, schedule order).
  EventQueue q;
  std::vector<int> order;
  std::vector<EventToken> victims;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 37) % 500) + 1.0;
    if (i % 5 == 0) {
      q.Schedule(t, [&order, i] { order.push_back(i); });
    } else {
      victims.push_back(q.Schedule(t, [] { FAIL() << "cancelled"; }));
    }
  }
  for (const EventToken t : victims) q.Cancel(t);  // 800 tombstones -> compact
  EXPECT_LE(q.heap_nodes(), 2u * q.pending() + 64u);
  while (q.RunNext()) {
  }
  ASSERT_EQ(order.size(), 200u);
  // Reference order: stable sort of the survivor ids by time (schedule
  // order breaks ties because i increases monotonically).
  std::vector<int> survivors;
  for (int i = 0; i < 1000; i += 5) survivors.push_back(i);
  std::stable_sort(survivors.begin(), survivors.end(), [](int a, int b) {
    return (a * 37) % 500 < (b * 37) % 500;
  });
  EXPECT_EQ(order, survivors);
}

// ---- run extraction (DESIGN.md §15) ----------------------------------------

/// Shared recorder for the scalar-vs-batched differential: both dispatch
/// strategies funnel through OnEvent, so the execution log is directly
/// comparable. Handlers may reschedule (same kind and cross kind, at the
/// current timestamp) to exercise the generation-ordering argument that
/// makes run extraction safe: events born during a run always sort after
/// the extracted prefix, exactly as they would in the scalar loop.
struct RunHarness {
  EventQueue q;
  uint64_t kind_a = 0;
  uint64_t kind_b = 0;
  std::vector<std::pair<uint64_t, uint64_t>> log;  ///< (kind tag, payload)
  std::vector<size_t> batch_spans;                 ///< extracted run sizes
  bool reschedule = false;

  void OnEvent(uint64_t tag, uint64_t payload) {
    log.emplace_back(tag, payload);
    // First-generation events only (the offset keeps child ids out of the
    // trigger ranges), so the cascade terminates.
    constexpr uint64_t kChild = uint64_t{1} << 20;
    if (!reschedule || payload >= kChild) return;
    if (payload % 5 == 0) {  // same kind, same timestamp
      q.ScheduleHandler(q.Now(), tag == 0 ? kind_a : kind_b,
                        payload + kChild);
    } else if (payload % 7 == 3) {  // other kind, same timestamp
      q.ScheduleHandler(q.Now(), tag == 0 ? kind_b : kind_a,
                        payload + 2 * kChild);
    }
  }

  void Register() {
    kind_a = q.AddHandler(
        [](void* c, uint64_t p) { static_cast<RunHarness*>(c)->OnEvent(0, p); },
        this);
    kind_b = q.AddHandler(
        [](void* c, uint64_t p) { static_cast<RunHarness*>(c)->OnEvent(1, p); },
        this);
  }

  void RegisterBatches() {
    q.AddBatchHandler(
        kind_a,
        [](void* c, std::span<const EventQueue::RunEvent> run) {
          static_cast<RunHarness*>(c)->OnBatch(0, run);
        },
        this);
    q.AddBatchHandler(
        kind_b,
        [](void* c, std::span<const EventQueue::RunEvent> run) {
          static_cast<RunHarness*>(c)->OnBatch(1, run);
        },
        this);
  }

  void OnBatch(uint64_t tag, std::span<const EventQueue::RunEvent> run) {
    batch_spans.push_back(run.size());
    for (const EventQueue::RunEvent& e : run) {
      // Every member of an extracted run shares the run's timestamp.
      EXPECT_EQ(e.time, run.front().time);
      OnEvent(tag, e.payload);
    }
  }
};

TEST(EventQueueRunExtractionTest, MatchesScalarDispatchUnderRandomMix) {
  // The core differential property: with an identical op stream, the
  // batched loop must produce the identical execution history as the
  // scalar loop — including handlers that reschedule at the current
  // timestamp and cancels landing between windows. Times draw from a
  // coarse integer grid so same-time runs are common.
  for (const uint64_t seed : {3ULL, 77ULL, 20260808ULL}) {
    RunHarness scalar;
    RunHarness batched;
    for (RunHarness* h : {&scalar, &batched}) {
      h->reschedule = true;
      h->Register();
      h->RegisterBatches();
    }
    scalar.q.set_scalar_dispatch(true);

    MixRng rng(seed);
    uint64_t next_id = 0;
    std::vector<std::pair<EventToken, EventToken>> tokens;
    for (int round = 0; round < 150; ++round) {
      const uint64_t burst = rng.Below(24);
      for (uint64_t i = 0; i < burst; ++i) {
        const double t =
            scalar.q.Now() + static_cast<double>(rng.Below(6));
        const uint64_t id = next_id++;
        const uint64_t dice = rng.Below(3);
        if (dice < 2) {
          const uint64_t ks = dice == 0 ? scalar.kind_a : scalar.kind_b;
          const uint64_t kb = dice == 0 ? batched.kind_a : batched.kind_b;
          tokens.emplace_back(scalar.q.ScheduleHandler(t, ks, id),
                              batched.q.ScheduleHandler(t, kb, id));
        } else {
          RunHarness* s = &scalar;
          RunHarness* b = &batched;
          tokens.emplace_back(
              scalar.q.Schedule(t, [s, id] { s->log.emplace_back(2, id); }),
              batched.q.Schedule(t, [b, id] { b->log.emplace_back(2, id); }));
        }
      }
      // Cancels between windows hit live and stale tokens alike; both
      // queues have identical liveness state, so the effect is symmetric.
      const uint64_t cancels = rng.Below(4);
      for (uint64_t i = 0; i < cancels && !tokens.empty(); ++i) {
        const auto& pick = tokens[rng.Below(tokens.size())];
        scalar.q.Cancel(pick.first);
        batched.q.Cancel(pick.second);
      }
      const double horizon =
          scalar.q.Now() + static_cast<double>(rng.Below(4));
      scalar.q.RunUntil(horizon);
      batched.q.RunUntil(horizon);
      ASSERT_EQ(scalar.q.Now(), batched.q.Now()) << "seed " << seed;
      ASSERT_EQ(scalar.q.pending(), batched.q.pending()) << "seed " << seed;
    }
    scalar.q.RunUntil(1.0e18);
    batched.q.RunUntil(1.0e18);

    EXPECT_EQ(scalar.log, batched.log) << "seed " << seed;
    EXPECT_EQ(scalar.q.executed(), batched.q.executed()) << "seed " << seed;
    // The property is vacuous unless extraction actually fired...
    EXPECT_FALSE(batched.batch_spans.empty()) << "seed " << seed;
    EXPECT_GE(*std::max_element(batched.batch_spans.begin(),
                                batched.batch_spans.end()),
              2u)
        << "seed " << seed << ": no multi-event run was ever extracted";
    // ... and the forced-scalar queue must never have batched.
    EXPECT_TRUE(scalar.batch_spans.empty());
  }
}

TEST(EventQueueRunExtractionTest, EqualTimeRunsBreakAtKindBoundaries) {
  // Interleaved kinds at one timestamp: extraction may only take the
  // maximal same-kind prefix, never leap over a foreign event to extend a
  // run — that would reorder equal-time events.
  RunHarness h;
  h.Register();
  h.RegisterBatches();
  h.q.ScheduleHandler(1.0, h.kind_a, 0);
  h.q.ScheduleHandler(1.0, h.kind_a, 1);
  h.q.ScheduleHandler(1.0, h.kind_b, 2);
  h.q.ScheduleHandler(1.0, h.kind_a, 3);
  h.q.Schedule(1.0, [&h] { h.log.emplace_back(2, 4); });
  h.q.ScheduleHandler(1.0, h.kind_a, 5);
  h.q.RunUntil(2.0);
  const std::vector<std::pair<uint64_t, uint64_t>> want = {
      {0, 0}, {0, 1}, {1, 2}, {0, 3}, {2, 4}, {0, 5}};
  EXPECT_EQ(h.log, want);
  EXPECT_EQ(h.batch_spans, (std::vector<size_t>{2, 1, 1, 1}));
}

TEST(EventQueueRunExtractionTest, TimeSpreadEventsNeverFormOneRun) {
  // Same kind, different timestamps: each must be its own run (the
  // time-spread extraction §15 rejects would batch them and collapse the
  // clock onto the first timestamp, breaking handlers that read Now()).
  RunHarness h;
  h.Register();
  h.RegisterBatches();
  std::vector<double> now_at_dispatch;
  for (uint64_t i = 0; i < 4; ++i) {
    h.q.ScheduleHandler(1.0 + static_cast<double>(i), h.kind_a, i);
  }
  // Observe the clock after every event: it must track each timestamp.
  h.q.set_observer(
      [](void* c, double t) {
        static_cast<std::vector<double>*>(c)->push_back(t);
      },
      &now_at_dispatch);
  h.q.RunUntil(10.0);
  EXPECT_EQ(h.batch_spans, (std::vector<size_t>{1, 1, 1, 1}));
  EXPECT_EQ(now_at_dispatch, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(EventQueueRunExtractionTest, CancelledMembersAreSkippedExactly) {
  // Tombstones inside a would-be run vanish during extraction exactly
  // where the scalar loop would have skipped them.
  RunHarness h;
  h.Register();
  h.RegisterBatches();
  std::vector<EventToken> toks;
  for (uint64_t i = 0; i < 5; ++i) {
    toks.push_back(h.q.ScheduleHandler(1.0, h.kind_a, i));
  }
  h.q.Cancel(toks[1]);
  h.q.Cancel(toks[3]);
  h.q.RunUntil(2.0);
  const std::vector<std::pair<uint64_t, uint64_t>> want = {
      {0, 0}, {0, 2}, {0, 4}};
  EXPECT_EQ(h.log, want);
  EXPECT_EQ(h.batch_spans, (std::vector<size_t>{3}));
}

TEST(EventQueueRunExtractionTest, SameTimeChildrenFormASecondRun) {
  // Events scheduled *during* a batch at the batch's own timestamp must
  // run after the extracted run (their generation is higher), in a second
  // extraction — mirroring the scalar loop's behavior.
  RunHarness h;
  h.reschedule = true;
  h.Register();
  h.RegisterBatches();
  // payloads 0 and 5 trigger same-kind same-time children (+1<<20).
  for (uint64_t i = 0; i < 6; ++i) h.q.ScheduleHandler(1.0, h.kind_a, i);
  h.q.RunUntil(2.0);
  constexpr uint64_t kChild = uint64_t{1} << 20;
  const std::vector<std::pair<uint64_t, uint64_t>> want = {
      {0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5},
      {0, kChild}, {1, 3 + 2 * kChild}, {0, 5 + kChild}};
  EXPECT_EQ(h.log, want);
  // One six-event run, then the same-time children: the two kind-A
  // children straddle a kind-B child, splitting them into separate runs.
  EXPECT_EQ(h.batch_spans, (std::vector<size_t>{6, 1, 1, 1}));
}

TEST(EventQueueRunExtractionTest, RunNextStaysScalar) {
  // Single-step drivers must see per-event granularity: RunNext never
  // fires a batch handler even when one is registered for the kind.
  RunHarness h;
  h.Register();
  h.RegisterBatches();
  for (uint64_t i = 0; i < 4; ++i) h.q.ScheduleHandler(1.0, h.kind_a, i);
  while (h.q.RunNext()) {
  }
  const std::vector<std::pair<uint64_t, uint64_t>> want = {
      {0, 0}, {0, 1}, {0, 2}, {0, 3}};
  EXPECT_EQ(h.log, want);
  EXPECT_TRUE(h.batch_spans.empty());
}

TEST(EventQueueRunExtractionTest, ObserverFiresPerEventAfterTheRunSettles) {
  // Under batch dispatch the observer contract is "K ticks at the shared
  // timestamp, after the run" — the tick count per (kind, time) must match
  // the scalar loop exactly.
  RunHarness h;
  h.Register();
  h.RegisterBatches();
  std::vector<double> ticks;
  h.q.set_observer(
      [](void* c, double t) {
        static_cast<std::vector<double>*>(c)->push_back(t);
      },
      &ticks);
  for (uint64_t i = 0; i < 3; ++i) h.q.ScheduleHandler(1.0, h.kind_a, i);
  h.q.ScheduleHandler(2.0, h.kind_b, 9);
  h.q.RunUntil(3.0);
  EXPECT_EQ(ticks, (std::vector<double>{1.0, 1.0, 1.0, 2.0}));
  // All three kind-A observer ticks fired after the whole run executed:
  // the log was complete before the first tick recorded... the ordering is
  // implied by the span assertion below (one 3-event extraction).
  EXPECT_EQ(h.batch_spans, (std::vector<size_t>{3, 1}));
}

TEST(EventQueueRunExtractionTest, SnapshotRoundTripsWithBatchHandlers) {
  // The action-marker bit (slot kind bit 63) is kernel-internal: snapshots
  // must carry the caller's kind values unchanged, and a restored queue
  // with batch handlers registered must extract runs from restored events.
  RunHarness h;
  h.Register();
  for (uint64_t i = 0; i < 4; ++i) h.q.ScheduleHandler(5.0, h.kind_a, i);
  h.q.ScheduleHandler(6.0, h.kind_b, 7);
  // A tagged closure event rides along; its tag must survive bit-63-free.
  const uint64_t kTag = 900;
  h.q.ScheduleTagged(7.0, kTag, 13, [] {});
  ByteWriter blob;
  ASSERT_TRUE(h.q.Snapshot(&blob).ok());

  RunHarness restored;
  restored.Register();
  restored.RegisterBatches();
  std::vector<std::pair<uint64_t, uint64_t>> factory_seen;
  ByteReader reader(blob.bytes());
  ASSERT_TRUE(restored.q
                  .Restore(&reader,
                           [&factory_seen](uint64_t kind, uint64_t payload,
                                           double) -> std::function<void()> {
                             factory_seen.emplace_back(kind, payload);
                             return [] {};
                           })
                  .ok());
  restored.q.RunUntil(10.0);
  const std::vector<std::pair<uint64_t, uint64_t>> want = {
      {0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 7}};
  EXPECT_EQ(restored.log, want);
  EXPECT_EQ(restored.batch_spans, (std::vector<size_t>{4, 1}));
  EXPECT_EQ(factory_seen,
            (std::vector<std::pair<uint64_t, uint64_t>>{{kTag, 13}}));
}

// ---- PR 3-era (pre-slab) snapshot compatibility ----------------------------

/// Serializes the old kernel's layout exactly: clock, u64 sequence counter,
/// executed count, entry count, then (time, seq, kind, payload) per entry.
struct V1Event {
  double time;
  uint64_t seq;
  uint64_t kind;
  uint64_t payload;
};

std::string BuildV1Blob(double clock, uint64_t next_seq, uint64_t executed,
                        const std::vector<V1Event>& events) {
  ByteWriter w;
  w.PutDouble(clock);
  w.PutU64(next_seq);
  w.PutU64(executed);
  w.PutU64(events.size());
  for (const V1Event& e : events) {
    w.PutDouble(e.time);
    w.PutU64(e.seq);
    w.PutU64(e.kind);
    w.PutU64(e.payload);
  }
  return w.bytes();
}

TEST(EventQueueV1CompatTest, RestoresPreSlabSnapshotInOriginalOrder) {
  // Mirror of the scenario the old kernel's own test serialized: ten events
  // at times ((i*7) % 10) + 1, four already executed (clock 4.0), and the
  // six survivors written in schedule order (unsorted), seq == i.
  std::vector<V1Event> survivors;
  for (uint64_t i = 0; i < 10; ++i) {
    const double t = static_cast<double>((i * 7) % 10) + 1.0;
    if (t <= 4.0) continue;  // executed before the snapshot
    survivors.push_back({t, i, /*kind=*/i, /*payload=*/i * 100});
  }
  ASSERT_EQ(survivors.size(), 6u);
  const std::string blob =
      BuildV1Blob(/*clock=*/4.0, /*next_seq=*/10, /*executed=*/4, survivors);

  std::vector<std::pair<uint64_t, double>> executed;
  EventQueue q;
  ByteReader reader(blob);
  const Status st = q.Restore(
      &reader, [&executed, &q](uint64_t kind, uint64_t payload,
                               double /*time*/) -> std::function<void()> {
        EXPECT_EQ(payload, kind * 100);
        return [&executed, &q, kind] { executed.push_back({kind, q.Now()}); };
      });
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_DOUBLE_EQ(q.Now(), 4.0);
  EXPECT_EQ(q.pending(), 6u);
  EXPECT_EQ(q.executed(), 4u);
  while (q.RunNext()) {
  }
  const std::vector<std::pair<uint64_t, double>> want = {
      {2, 5.0}, {5, 6.0}, {8, 7.0}, {1, 8.0}, {4, 9.0}, {7, 10.0}};
  EXPECT_EQ(executed, want);
}

TEST(EventQueueV1CompatTest, RegisteredHandlersServeV1Kinds) {
  // A v1 snapshot restored into a queue with a handler table must route
  // entries through the table, not the factory.
  const std::string blob = BuildV1Blob(
      0.0, /*next_seq=*/2, /*executed=*/0,
      {{1.0, 0, /*kind=*/0, /*payload=*/7}, {2.0, 1, /*kind=*/0, 9}});
  EventQueue q;
  std::vector<uint64_t> payloads;
  const uint64_t kind = q.AddHandler(
      [&payloads](uint64_t payload) { payloads.push_back(payload); });
  ASSERT_EQ(kind, 0u);
  ByteReader reader(blob);
  ASSERT_TRUE(q.Restore(&reader,
                        [](uint64_t, uint64_t, double) -> std::function<void()> {
                          ADD_FAILURE() << "factory consulted for a "
                                           "handler-registered kind";
                          return [] {};
                        })
                  .ok());
  while (q.RunNext()) {
  }
  EXPECT_EQ(payloads, (std::vector<uint64_t>{7, 9}));
}

TEST(EventQueueV1CompatTest, V1TieBreaksFollowSequenceNotFileOrder) {
  // Entries at the same timestamp must drain by seq even when the file
  // stores them reversed.
  const std::string blob =
      BuildV1Blob(0.0, /*next_seq=*/8, /*executed=*/0,
                  {{3.0, 6, 106, 0}, {3.0, 2, 102, 0}, {3.0, 4, 104, 0}});
  EventQueue q;
  std::vector<uint64_t> kinds;
  ByteReader reader(blob);
  ASSERT_TRUE(
      q.Restore(&reader,
                [&kinds](uint64_t kind, uint64_t, double) -> std::function<void()> {
                  return [&kinds, kind] { kinds.push_back(kind); };
                })
          .ok());
  while (q.RunNext()) {
  }
  EXPECT_EQ(kinds, (std::vector<uint64_t>{102, 104, 106}));
}

TEST(EventQueueV1CompatTest, V1EntryBeforeClockIsRejected) {
  const std::string blob =
      BuildV1Blob(5.0, /*next_seq=*/1, /*executed=*/3, {{4.0, 0, 1, 0}});
  EventQueue q;
  ByteReader reader(blob);
  const Status st = q.Restore(
      &reader, [](uint64_t, uint64_t, double) -> std::function<void()> {
        return [] {};
      });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("precedes the snapshot clock"),
            std::string::npos);
}

TEST(EventQueueV1CompatTest, V1SeqBeyondCounterIsRejected) {
  const std::string blob =
      BuildV1Blob(0.0, /*next_seq=*/3, /*executed=*/0, {{1.0, 3, 1, 0}});
  EventQueue q;
  ByteReader reader(blob);
  const Status st = q.Restore(
      &reader, [](uint64_t, uint64_t, double) -> std::function<void()> {
        return [] {};
      });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("sequence counter"), std::string::npos);
}

TEST(EventQueueV1CompatTest, RestoredV1QueueSnapshotsInCurrentFormat) {
  // Round-trip: v1 in, run a little, v2 out, restore again. The second
  // restore must preserve both order and clock.
  const std::string v1 = BuildV1Blob(
      0.0, /*next_seq=*/4, /*executed=*/0,
      {{1.0, 0, 10, 0}, {2.0, 1, 11, 0}, {3.0, 2, 12, 0}, {4.0, 3, 13, 0}});
  std::vector<uint64_t> kinds;
  const auto factory = [&kinds](uint64_t kind, uint64_t,
                                double) -> std::function<void()> {
    return [&kinds, kind] { kinds.push_back(kind); };
  };
  EventQueue q;
  {
    ByteReader reader(v1);
    ASSERT_TRUE(q.Restore(&reader, factory).ok());
  }
  ASSERT_TRUE(q.RunNext());  // runs kind 10, clock -> 1.0
  ByteWriter v2;
  ASSERT_TRUE(q.Snapshot(&v2).ok());

  EventQueue q2;
  ByteReader reader(v2.bytes());
  ASSERT_TRUE(q2.Restore(&reader, factory).ok());
  EXPECT_DOUBLE_EQ(q2.Now(), 1.0);
  EXPECT_EQ(q2.pending(), 3u);
  while (q2.RunNext()) {
  }
  EXPECT_EQ(kinds, (std::vector<uint64_t>{10, 11, 12, 13}));
}

}  // namespace
}  // namespace vod
