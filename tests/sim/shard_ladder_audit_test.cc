// Corruption-injection tests for the windowed-ladder conservation laws
// (sim/audit.h, ShardState::Ladder).
//
// Mirrors shard_audit_test.cc: each test builds a healthy barrier snapshot
// of a ladder-armed sharded run, injects exactly one defect, and asserts
// the named invariant fires. The names (shard-ladder-rung,
// shard-ladder-reclaim, shard-ladder-queue) are part of the auditor's
// contract — the sharded coordinator publishes its rung decision and quota
// ledger specifically so these laws can recompute them from first
// principles.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sim/audit.h"
#include "sim/degradation.h"

namespace vod {
namespace {

AuditOptions EnabledOptions() {
  AuditOptions options;
  options.enabled = true;
  options.every_events = 1;
  return options;
}

/// A healthy barrier snapshot of a ladder-armed three-movie sharded run.
/// Reserve ledger closes at capacity 50; the ladder holds kQueueing
/// (sum_queued = 2 > 0 at full capacity), the barrier issued quota 3 last
/// window and the shards echoed exactly 3 (2 + 1 + 0, each fully applied),
/// and every movie's queue accounting closes:
/// queued = grants + expirations + pending.
AuditSnapshot HealthyLadderSnapshot() {
  AuditSnapshot s;
  s.time = 600.0;
  s.shard.enabled = true;
  s.shard.capacity = 50;
  s.shard.movies.push_back({/*movie=*/0, /*held=*/7, /*credit=*/10,
                            /*debt=*/0, /*entered=*/40, /*exited=*/33,
                            /*live=*/7, /*vcr_queued=*/10, /*queue_grants=*/6,
                            /*queue_expirations=*/3, /*queue_pending=*/1,
                            /*reclaim_quota=*/2, /*reclaim_applied=*/2});
  s.shard.movies.push_back({/*movie=*/1, /*held=*/3, /*credit=*/20,
                            /*debt=*/0, /*entered=*/12, /*exited=*/9,
                            /*live=*/3, /*vcr_queued=*/4, /*queue_grants=*/2,
                            /*queue_expirations=*/2, /*queue_pending=*/0,
                            /*reclaim_quota=*/1, /*reclaim_applied=*/1});
  s.shard.movies.push_back({/*movie=*/2, /*held=*/1, /*credit=*/10,
                            /*debt=*/1, /*entered=*/25, /*exited=*/24,
                            /*live=*/1, /*vcr_queued=*/3, /*queue_grants=*/1,
                            /*queue_expirations=*/1, /*queue_pending=*/1,
                            /*reclaim_quota=*/0, /*reclaim_applied=*/0});
  s.shard.messages_posted = 36;
  s.shard.messages_drained = 36;
  s.shard.sequence_gaps = 0;

  s.shard.ladder.enabled = true;
  s.shard.ladder.prev_level = static_cast<int>(DegradationLevel::kQueueing);
  s.shard.ladder.prev_streak = 0;
  s.shard.ladder.next_level = static_cast<int>(DegradationLevel::kQueueing);
  s.shard.ladder.next_streak = 0;
  s.shard.ladder.nominal_capacity = 50;
  s.shard.ladder.sum_held = 11;  // = 7 + 3 + 1
  s.shard.ladder.sum_queued = 2;
  s.shard.ladder.shed_below_fraction = 0.5;
  s.shard.ladder.batching_below_fraction = 0.2;
  s.shard.ladder.recover_windows = 2;
  s.shard.ladder.quota_issued_prev = 3;
  return s;
}

std::vector<std::string> FiredInvariants(const InvariantAuditor& auditor) {
  std::vector<std::string> names;
  for (const AuditViolation& v : auditor.violations()) {
    names.push_back(v.invariant);
  }
  return names;
}

TEST(ShardLadderAuditTest, HealthyLadderSnapshotIsClean) {
  InvariantAuditor auditor(EnabledOptions());
  auditor.Audit(HealthyLadderSnapshot());
  EXPECT_EQ(auditor.total_violations(), 0);
  EXPECT_TRUE(auditor.status().ok());
}

TEST(ShardLadderAuditTest, DisabledLadderIsNeverChecked) {
  // A mangled ladder block must not fire on a faults-only sharded run —
  // the laws only exist once the ladder is armed.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyLadderSnapshot();
  s.shard.ladder.enabled = false;
  s.shard.ladder.next_level = 99;
  s.shard.movies[0].reclaim_applied = 1000;
  s.shard.movies[0].vcr_queued = -5;
  auditor.Audit(s);
  EXPECT_EQ(auditor.total_violations(), 0);
}

TEST(ShardLadderAuditTest, WrongRungFiresLadderRung) {
  // The barrier announces a rung the pure function does not produce.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyLadderSnapshot();
  s.shard.ladder.next_level = static_cast<int>(DegradationLevel::kShedVcr);
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-ladder-rung"});
  EXPECT_NE(auditor.violations()[0].detail.find("pure function"),
            std::string::npos);
}

TEST(ShardLadderAuditTest, WrongStreakFiresLadderRung) {
  // Hysteresis bookkeeping is part of the decision: a tampered
  // below-streak diverges the replay even when the rung matches.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyLadderSnapshot();
  s.shard.ladder.next_streak = 1;
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-ladder-rung"});
}

TEST(ShardLadderAuditTest, TamperedPressureFiresLadderRung) {
  // Oversubscribed pressure (held > capacity) demands kReclaim; a barrier
  // that still claims kQueueing mis-folded the shard mailboxes.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyLadderSnapshot();
  s.shard.ladder.sum_held = 60;
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-ladder-rung"});
}

TEST(ShardLadderAuditTest, HysteresisShortcutFiresLadderRung) {
  // Calm pressure under a held kShedVcr rung with recover_windows=2 must
  // hold the rung at streak 1; stepping straight down is a shortcut the
  // auditor rejects.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyLadderSnapshot();
  s.shard.ladder.prev_level = static_cast<int>(DegradationLevel::kShedVcr);
  s.shard.ladder.sum_queued = 0;  // raw = kNormal at full capacity
  s.shard.ladder.next_level = static_cast<int>(DegradationLevel::kNormal);
  s.shard.ladder.next_streak = 0;
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-ladder-rung"});
}

TEST(ShardLadderAuditTest, OverQuotaReclaimFiresLadderReclaim) {
  // A shard reclaimed more streams than the barrier's quota allowed. The
  // echoed sum then also exceeds what was issued, so the law fires twice —
  // the per-movie violation must come first and name the movie.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyLadderSnapshot();
  s.shard.movies[1].reclaim_quota = 2;  // echoed sum now 4 != issued 3
  s.shard.movies[1].reclaim_applied = 3;
  auditor.Audit(s);
  const auto fired = FiredInvariants(auditor);
  ASSERT_FALSE(fired.empty());
  EXPECT_EQ(fired.front(), "shard-ladder-reclaim");
  EXPECT_NE(auditor.violations()[0].detail.find("movie 1"),
            std::string::npos);
}

TEST(ShardLadderAuditTest, MintedQuotaFiresLadderReclaim) {
  // The shards echo more quota than the barrier issued last window.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyLadderSnapshot();
  s.shard.ladder.quota_issued_prev = 2;
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-ladder-reclaim"});
  EXPECT_NE(auditor.violations()[0].detail.find("minted or lost"),
            std::string::npos);
}

TEST(ShardLadderAuditTest, LostQueuedViewerFiresLadderQueue) {
  // One granted waiter vanished from the ledger: queued != grants +
  // expirations + pending.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyLadderSnapshot();
  s.shard.movies[0].queue_grants -= 1;
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-ladder-queue"});
  EXPECT_NE(auditor.violations()[0].detail.find("movie 0"),
            std::string::npos);
}

TEST(ShardLadderAuditTest, PhantomPendingFiresLadderQueue) {
  // A waiter counted as still pending that was never queued.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyLadderSnapshot();
  s.shard.movies[2].queue_pending += 1;
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-ladder-queue"});
}

}  // namespace
}  // namespace vod
