#include "sim/degradation.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

DegradationPolicy EnabledPolicy() {
  DegradationPolicy policy;
  policy.enabled = true;
  policy.queue_deadline_minutes = 5.0;
  policy.backoff_initial_minutes = 0.25;
  policy.backoff_factor = 2.0;
  policy.shed_below_fraction = 0.5;
  policy.batching_below_fraction = 0.2;
  return policy;
}

TEST(DegradationPolicyTest, Validation) {
  EXPECT_TRUE(EnabledPolicy().Validate().ok());
  DegradationPolicy p = EnabledPolicy();
  p.queue_deadline_minutes = -1.0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = EnabledPolicy();
  p.backoff_initial_minutes = 0.0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = EnabledPolicy();
  p.backoff_factor = 0.5;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = EnabledPolicy();
  p.shed_below_fraction = 1.5;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p = EnabledPolicy();
  p.batching_below_fraction = 0.8;  // above shed_below_fraction = 0.5
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(ReserveManagerTest, LegacySemanticsWithPolicyDisabled) {
  EventQueue queue;
  ReserveManager mgr(2, DegradationPolicy{}, &queue, 0.0);
  EXPECT_TRUE(mgr.TryAcquire(0.0));
  EXPECT_TRUE(mgr.TryAcquire(0.0));
  EXPECT_FALSE(mgr.TryAcquire(0.0));
  EXPECT_EQ(mgr.refused(), 1);
  EXPECT_EQ(mgr.acquired(), 2);
  // No queueing with the policy off: the callback is never taken.
  bool invoked = false;
  EXPECT_FALSE(
      mgr.TryQueueAcquire(0.0, [&invoked](double, bool) { invoked = true; }));
  EXPECT_FALSE(invoked);
  EXPECT_EQ(mgr.vcr_denied(), 1);
  mgr.Release(1.0);
  EXPECT_TRUE(mgr.TryAcquire(1.0));
}

TEST(ReserveManagerTest, OversubscriptionClampsAndDrains) {
  EventQueue queue;
  ReserveManager mgr(5, DegradationPolicy{}, &queue, 0.0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(mgr.TryAcquire(0.0));
  mgr.SetCapacity(1.0, 3);
  EXPECT_EQ(mgr.in_use(), 5);
  EXPECT_EQ(mgr.capacity(), 3);
  EXPECT_EQ(mgr.oversubscription(), 2);
  EXPECT_EQ(mgr.max_oversubscription(), 2);
  EXPECT_EQ(mgr.min_capacity_seen(), 3);
  EXPECT_EQ(mgr.level(), DegradationLevel::kReclaim);
  EXPECT_FALSE(mgr.TryAcquire(1.5));
  // The overhang drains as holders release; never negative anywhere.
  mgr.Release(2.0);
  mgr.Release(2.0);
  EXPECT_EQ(mgr.oversubscription(), 0);
  EXPECT_FALSE(mgr.TryAcquire(2.5));  // still full: in_use == capacity
  mgr.Release(3.0);
  EXPECT_TRUE(mgr.TryAcquire(3.5));
  EXPECT_EQ(mgr.max_oversubscription(), 2);
}

TEST(ReserveManagerTest, QueuedRequestGrantedAfterRelease) {
  EventQueue queue;
  ReserveManager mgr(1, EnabledPolicy(), &queue, 0.0);
  ASSERT_TRUE(mgr.TryAcquire(0.0));
  ASSERT_FALSE(mgr.TryAcquire(0.0));
  bool granted = false;
  double decision_time = -1.0;
  ASSERT_TRUE(mgr.TryQueueAcquire(0.0, [&](double t, bool g) {
    granted = g;
    decision_time = t;
  }));
  EXPECT_EQ(mgr.level(), DegradationLevel::kQueueing);
  EXPECT_EQ(mgr.queue_length(), 1);
  mgr.Release(0.1);
  queue.RunUntil(10.0);
  EXPECT_TRUE(granted);
  // Re-offer happens at the first backoff retry after the release.
  EXPECT_NEAR(decision_time, 0.25, 1e-12);
  EXPECT_EQ(mgr.vcr_queued(), 1);
  EXPECT_EQ(mgr.vcr_queue_grants(), 1);
  EXPECT_EQ(mgr.vcr_queue_expirations(), 0);
  EXPECT_EQ(mgr.in_use(), 1);  // the granted stream belongs to the caller
  EXPECT_EQ(mgr.level(), DegradationLevel::kNormal);
  EXPECT_NEAR(mgr.queued_wait().mean(), 0.25, 1e-12);
}

TEST(ReserveManagerTest, QueuedRequestExpiresAtDeadline) {
  EventQueue queue;
  ReserveManager mgr(1, EnabledPolicy(), &queue, 0.0);
  ASSERT_TRUE(mgr.TryAcquire(0.0));
  bool granted = true;
  double decision_time = -1.0;
  ASSERT_TRUE(mgr.TryQueueAcquire(0.0, [&](double t, bool g) {
    granted = g;
    decision_time = t;
  }));
  queue.RunUntil(10.0);  // never released
  EXPECT_FALSE(granted);
  EXPECT_NEAR(decision_time, 5.0, 1e-12);  // the configured deadline
  EXPECT_EQ(mgr.vcr_queue_expirations(), 1);
  EXPECT_EQ(mgr.vcr_queue_grants(), 0);
  EXPECT_EQ(mgr.queue_length(), 0);
}

TEST(ReserveManagerTest, ShedLevelClosesAdmissionAndQueue) {
  EventQueue queue;
  ReserveManager mgr(10, EnabledPolicy(), &queue, 0.0);
  mgr.SetCapacity(1.0, 4);  // 40% of nominal < shed_below_fraction
  EXPECT_EQ(mgr.level(), DegradationLevel::kShedVcr);
  EXPECT_FALSE(mgr.TryAcquire(1.5));  // admission closed despite free units
  bool invoked = false;
  EXPECT_FALSE(
      mgr.TryQueueAcquire(1.5, [&invoked](double, bool) { invoked = true; }));
  EXPECT_FALSE(invoked);
  EXPECT_EQ(mgr.vcr_denied(), 1);
  mgr.SetCapacity(2.0, 10);
  EXPECT_EQ(mgr.level(), DegradationLevel::kNormal);
  EXPECT_TRUE(mgr.TryAcquire(2.5));
}

TEST(ReserveManagerTest, BatchingOnlyReclaimsEverything) {
  EventQueue queue;
  ReserveManager mgr(10, EnabledPolicy(), &queue, 0.0);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(mgr.TryAcquire(0.0));
  int64_t reclaim_requests = 0;
  mgr.set_reclaim_hook([&](double t, int64_t need) {
    reclaim_requests += need;
    for (int64_t i = 0; i < need; ++i) mgr.Release(t);
    return need;
  });
  mgr.SetCapacity(1.0, 1);  // 10% of nominal < batching_below_fraction
  EXPECT_EQ(reclaim_requests, 6);
  EXPECT_EQ(mgr.forced_reclaims(), 6);
  EXPECT_EQ(mgr.in_use(), 0);
  EXPECT_EQ(mgr.level(), DegradationLevel::kBatchingOnly);
  // Repair: back to normal, and the excursion counts as one recovery.
  mgr.SetCapacity(5.0, 10);
  EXPECT_EQ(mgr.level(), DegradationLevel::kNormal);
  EXPECT_EQ(mgr.recovery_times().count(), 1);
  EXPECT_NEAR(mgr.recovery_times().mean(), 4.0, 1e-12);
}

TEST(ReserveManagerTest, PartialReclaimOnOversubscription) {
  EventQueue queue;
  ReserveManager mgr(10, EnabledPolicy(), &queue, 0.0);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(mgr.TryAcquire(0.0));
  mgr.set_reclaim_hook([&](double t, int64_t need) {
    for (int64_t i = 0; i < need; ++i) mgr.Release(t);
    return need;
  });
  mgr.SetCapacity(1.0, 6);  // 60% of nominal: above shed, but oversubscribed
  // Only the overhang (2) is reclaimed, not everything.
  EXPECT_EQ(mgr.forced_reclaims(), 2);
  EXPECT_EQ(mgr.in_use(), 6);
  EXPECT_EQ(mgr.oversubscription(), 0);
}

TEST(ReserveManagerTest, TimeInLevelsSumToHorizonAndLogTransitions) {
  EventQueue queue;
  ReserveManager mgr(10, EnabledPolicy(), &queue, 0.0);
  mgr.SetCapacity(10.0, 4);  // normal -> shed
  mgr.SetCapacity(30.0, 10);  // shed -> normal
  mgr.Finalize(100.0);
  double total = 0.0;
  for (int i = 0; i < kNumDegradationLevels; ++i) {
    total += mgr.time_in_level(static_cast<DegradationLevel>(i));
  }
  EXPECT_NEAR(total, 100.0, 1e-9);
  EXPECT_NEAR(mgr.time_in_level(DegradationLevel::kShedVcr), 20.0, 1e-9);
  EXPECT_NEAR(mgr.time_in_level(DegradationLevel::kNormal), 80.0, 1e-9);
  ASSERT_EQ(mgr.transitions().size(), 2u);
  EXPECT_EQ(mgr.total_transitions(), 2);
  EXPECT_EQ(mgr.transitions()[0].from, DegradationLevel::kNormal);
  EXPECT_EQ(mgr.transitions()[0].to, DegradationLevel::kShedVcr);
  EXPECT_EQ(mgr.transitions()[1].to, DegradationLevel::kNormal);
  EXPECT_EQ(mgr.recovery_times().count(), 1);
  EXPECT_NEAR(mgr.recovery_times().mean(), 20.0, 1e-9);
}

TEST(ReserveManagerTest, QueueAccountingIdentity) {
  EventQueue queue;
  ReserveManager mgr(1, EnabledPolicy(), &queue, 0.0);
  ASSERT_TRUE(mgr.TryAcquire(0.0));
  int decided = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(mgr.TryQueueAcquire(
        static_cast<double>(i), [&decided](double, bool) { ++decided; }));
  }
  // Keep the manager's clock monotone: run the queue up to the release
  // time first (those retries find no free stream), release, then let the
  // next retry re-offer. Releasing at 2.5 with unexecuted earlier retry
  // events still pending would step the time-weighted trackers backwards.
  queue.RunUntil(2.5);
  mgr.Release(2.5);  // exactly one waiter can be re-offered (at the 2.75 retry)
  queue.RunUntil(3.0);  // before the deadlines: expirations still pending
  mgr.Finalize(3.0);
  EXPECT_EQ(mgr.vcr_queued(), mgr.vcr_queue_grants() +
                                  mgr.vcr_queue_expirations() +
                                  mgr.queue_length());
  EXPECT_EQ(mgr.vcr_queue_grants(), 1);
  EXPECT_EQ(mgr.queue_length(), 2);
  EXPECT_EQ(decided, 1);
}

// ---- windowed cross-shard ladder (pure functions) -------------------------

WindowedPressure Pressure(int64_t capacity, int64_t nominal, int64_t held,
                          int64_t queued) {
  WindowedPressure p;
  p.capacity = capacity;
  p.nominal_capacity = nominal;
  p.sum_held = held;
  p.sum_queued = queued;
  return p;
}

TEST(WindowedLadderTest, ComputeLevelMirrorsReserveManagerThresholds) {
  const DegradationPolicy policy = EnabledPolicy();
  // Full capacity, nothing held or queued: normal.
  EXPECT_EQ(ComputeWindowedLevel(Pressure(50, 50, 10, 0), policy),
            DegradationLevel::kNormal);
  // Any queued demand raises kQueueing.
  EXPECT_EQ(ComputeWindowedLevel(Pressure(50, 50, 10, 1), policy),
            DegradationLevel::kQueueing);
  // Below half of nominal: shed new VCR work (queued or not).
  EXPECT_EQ(ComputeWindowedLevel(Pressure(24, 50, 10, 0), policy),
            DegradationLevel::kShedVcr);
  // Oversubscribed (held > capacity) outranks shed.
  EXPECT_EQ(ComputeWindowedLevel(Pressure(24, 50, 30, 5), policy),
            DegradationLevel::kReclaim);
  // Below the batching fraction outranks everything.
  EXPECT_EQ(ComputeWindowedLevel(Pressure(9, 50, 30, 5), policy),
            DegradationLevel::kBatchingOnly);
}

TEST(WindowedLadderTest, DegradingStepsApplyImmediately) {
  const DegradationPolicy policy = EnabledPolicy();
  WindowedLadderState state;  // kNormal, streak 0
  state = StepWindowedLadder(state, Pressure(9, 50, 30, 5), policy,
                             /*recover_windows=*/3);
  EXPECT_EQ(state.level, DegradationLevel::kBatchingOnly);
  EXPECT_EQ(state.below_streak, 0);
}

TEST(WindowedLadderTest, RecoveryNeedsConsecutiveCalmWindows) {
  const DegradationPolicy policy = EnabledPolicy();
  WindowedLadderState state;
  state.level = DegradationLevel::kShedVcr;
  const WindowedPressure calm = Pressure(50, 50, 10, 0);  // raw = kNormal
  // Two calm windows with recover_windows=3: rung held, streak counts up.
  state = StepWindowedLadder(state, calm, policy, 3);
  EXPECT_EQ(state.level, DegradationLevel::kShedVcr);
  EXPECT_EQ(state.below_streak, 1);
  state = StepWindowedLadder(state, calm, policy, 3);
  EXPECT_EQ(state.level, DegradationLevel::kShedVcr);
  EXPECT_EQ(state.below_streak, 2);
  // Third calm window: the rung finally steps down, streak resets.
  state = StepWindowedLadder(state, calm, policy, 3);
  EXPECT_EQ(state.level, DegradationLevel::kNormal);
  EXPECT_EQ(state.below_streak, 0);
}

TEST(WindowedLadderTest, PressureSpikeMidRecoveryResetsTheStreak) {
  const DegradationPolicy policy = EnabledPolicy();
  WindowedLadderState state;
  state.level = DegradationLevel::kShedVcr;
  state = StepWindowedLadder(state, Pressure(50, 50, 10, 0), policy, 2);
  EXPECT_EQ(state.below_streak, 1);
  // Raw pressure back at the held rung: the streak must restart from zero.
  state = StepWindowedLadder(state, Pressure(24, 50, 10, 0), policy, 2);
  EXPECT_EQ(state.level, DegradationLevel::kShedVcr);
  EXPECT_EQ(state.below_streak, 0);
  state = StepWindowedLadder(state, Pressure(50, 50, 10, 0), policy, 2);
  EXPECT_EQ(state.below_streak, 1);
  state = StepWindowedLadder(state, Pressure(50, 50, 10, 0), policy, 2);
  EXPECT_EQ(state.level, DegradationLevel::kNormal);
}

TEST(WindowedLadderTest, RecoverWindowsBelowOneBehavesAsOne) {
  const DegradationPolicy policy = EnabledPolicy();
  WindowedLadderState state;
  state.level = DegradationLevel::kQueueing;
  state = StepWindowedLadder(state, Pressure(50, 50, 10, 0), policy,
                             /*recover_windows=*/0);
  EXPECT_EQ(state.level, DegradationLevel::kNormal);
}

TEST(WindowedLadderTest, RecoveryDescendsOneRawLevelAtATime) {
  const DegradationPolicy policy = EnabledPolicy();
  WindowedLadderState state;
  state.level = DegradationLevel::kReclaim;
  // Raw pressure at kQueueing: recovery lands there, not at kNormal.
  const WindowedPressure queued = Pressure(50, 50, 10, 3);
  state = StepWindowedLadder(state, queued, policy, 1);
  EXPECT_EQ(state.level, DegradationLevel::kQueueing);
  EXPECT_EQ(state.below_streak, 0);
  state = StepWindowedLadder(state, queued, policy, 1);
  EXPECT_EQ(state.level, DegradationLevel::kQueueing);
}

}  // namespace
}  // namespace vod
