// Tests for the runtime invariant auditor (sim/audit.h).
//
// Each corruption test builds an AuditSnapshot with exactly one injected
// defect and asserts the named invariant fires — the names are part of the
// auditor's contract. The live-run tests prove a healthy simulation passes
// a paranoid audit and that the observer wiring reports violations through
// Status instead of aborting.

#include "sim/audit.h"

#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/partition_layout.h"
#include "gtest/gtest.h"
#include "sim/server.h"
#include "sim/simulator.h"

namespace vod {
namespace {

PartitionLayout TestLayout() {
  auto layout = PartitionLayout::FromBuffer(120.0, 4, 40.0);
  VOD_CHECK(layout.ok());
  return *layout;
}

AuditOptions EnabledOptions() {
  AuditOptions options;
  options.enabled = true;
  options.every_events = 1;
  return options;
}

/// A snapshot of a healthy two-movie server: conservation holds, partitions
/// legal, ladder quiet. Corruption tests perturb exactly one aspect.
AuditSnapshot HealthySnapshot() {
  AuditSnapshot s;
  s.time = 100.0;
  s.supplier_in_use = 7;
  s.sum_world_holds = 7;
  s.supplier_capacity = 50;
  s.nominal_capacity = 50;
  s.movies.push_back(BuildMovieAuditBuffers("gone_with_the_wind", TestLayout()));
  s.movies.push_back(BuildMovieAuditBuffers("casablanca", TestLayout()));
  return s;
}

std::vector<std::string> FiredInvariants(const InvariantAuditor& auditor) {
  std::vector<std::string> names;
  for (const AuditViolation& v : auditor.violations()) {
    names.push_back(v.invariant);
  }
  return names;
}

TEST(AuditOptionsTest, ValidateRejectsNonPositiveCadence) {
  AuditOptions options;
  options.every_events = 0;
  EXPECT_FALSE(options.Validate().ok());
  options.every_events = -5;
  EXPECT_FALSE(options.Validate().ok());
  options.every_events = 1;
  options.trace_tail = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(InvariantAuditorTest, HealthySnapshotIsClean) {
  InvariantAuditor auditor(EnabledOptions());
  auditor.Audit(HealthySnapshot());
  EXPECT_EQ(auditor.total_violations(), 0);
  EXPECT_TRUE(auditor.status().ok());
}

TEST(InvariantAuditorTest, LeakedStreamFiresStreamConservation) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  s.supplier_in_use = 8;  // supplier thinks one more stream is out
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"stream-conservation"});
}

TEST(InvariantAuditorTest, DoubleReleaseFiresNegativeStreams) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  s.supplier_in_use = -1;
  s.sum_world_holds = -1;
  auditor.Audit(s);
  const auto fired = FiredInvariants(auditor);
  ASSERT_FALSE(fired.empty());
  EXPECT_EQ(fired.front(), "negative-streams");
}

TEST(InvariantAuditorTest, OverCapacityUseFiresCapacityBound) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  s.supplier_in_use = 51;
  s.sum_world_holds = 51;
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"capacity-bound"});
}

TEST(InvariantAuditorTest, OversubscriptionAfterCapacityLossIsLegal) {
  // A fault shrank capacity below in_use: the excess drains via reclaim,
  // and the auditor must not cry wolf meanwhile.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  s.supplier_capacity = 5;  // nominal stays 50
  s.supplier_in_use = 7;
  s.sum_world_holds = 7;
  auditor.Audit(s);
  EXPECT_EQ(auditor.total_violations(), 0);
}

TEST(InvariantAuditorTest, RepairedAboveNominalFiresCapacityExceedsNominal) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  s.supplier_capacity = 60;  // "repair" restored more than exists
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"capacity-exceeds-nominal"});
}

TEST(InvariantAuditorTest, OverlappingPartitionsFirePartitionOverlap) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  // Slide movie 0's second partition back onto the first.
  s.movies[0].partitions[1].start = s.movies[0].partitions[0].start +
                                    s.movies[0].partitions[0].size / 2.0;
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"partition-overlap"});
}

TEST(InvariantAuditorTest, BudgetOverrunFiresPartitionBudget) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  s.movies[1].budget = 39.0;  // partitions still sum to 40
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"partition-budget"});
}

TEST(InvariantAuditorTest, NegativePartitionFiresPartitionBudget) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  s.movies[0].partitions[2].size = -1.0;
  auditor.Audit(s);
  const auto fired = FiredInvariants(auditor);
  ASSERT_FALSE(fired.empty());
  EXPECT_EQ(fired.front(), "partition-budget");
}

TEST(InvariantAuditorTest, BogusLevelFiresLadderLevelRange) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  s.degradation_level = kNumDegradationLevels;  // one past the deepest rung
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"ladder-level-range"});
}

TEST(InvariantAuditorTest, SkippedLadderStepFiresLadderContinuity) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  // normal -> queueing, then a transition claiming to leave kReclaim:
  // the recorded history skipped the queueing -> reclaim step.
  std::vector<DegradationTransition> transitions = {
      {10.0, DegradationLevel::kNormal, DegradationLevel::kQueueing, 40},
      {20.0, DegradationLevel::kReclaim, DegradationLevel::kBatchingOnly, 5},
  };
  s.transitions = &transitions;
  s.degradation_level = static_cast<int>(DegradationLevel::kBatchingOnly);
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"ladder-continuity"});
}

TEST(InvariantAuditorTest, LogNotEndingAtLiveLevelFiresLadderContinuity) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  std::vector<DegradationTransition> transitions = {
      {10.0, DegradationLevel::kNormal, DegradationLevel::kQueueing, 40},
  };
  s.transitions = &transitions;
  s.degradation_level = static_cast<int>(DegradationLevel::kNormal);
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"ladder-continuity"});
}

TEST(InvariantAuditorTest, TruncatedTransitionLogSkipsEndOfLogCheck) {
  // When the stored log was capped (total > stored), the live level is
  // allowed to disagree with the last *stored* transition.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  std::vector<DegradationTransition> transitions = {
      {10.0, DegradationLevel::kNormal, DegradationLevel::kQueueing, 40},
  };
  s.transitions = &transitions;
  s.total_transitions = 7;  // six transitions were dropped from the log
  s.degradation_level = static_cast<int>(DegradationLevel::kNormal);
  auditor.Audit(s);
  EXPECT_EQ(auditor.total_violations(), 0);
}

TEST(InvariantAuditorTest, TimeRegressionInLogFiresLadderContinuity) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  std::vector<DegradationTransition> transitions = {
      {20.0, DegradationLevel::kNormal, DegradationLevel::kQueueing, 40},
      {10.0, DegradationLevel::kQueueing, DegradationLevel::kNormal, 50},
  };
  s.transitions = &transitions;
  s.degradation_level = static_cast<int>(DegradationLevel::kNormal);
  auditor.Audit(s);
  const auto fired = FiredInvariants(auditor);
  ASSERT_FALSE(fired.empty());
  EXPECT_EQ(fired.front(), "ladder-continuity");
}

TEST(InvariantAuditorTest, StatusCarriesFirstViolationCountAndTrace) {
  AuditOptions options = EnabledOptions();
  options.trace_tail = 4;
  InvariantAuditor auditor(options);
  for (int i = 0; i < 6; ++i) {
    auditor.RecordEvent(10.0 * (i + 1));
  }
  AuditSnapshot s = HealthySnapshot();
  s.supplier_in_use = 9;  // conservation breaks...
  s.supplier_capacity = 60;  // ...and so does the nominal bound
  auditor.Audit(s);
  EXPECT_EQ(auditor.total_violations(), 2);
  const Status status = auditor.status();
  ASSERT_FALSE(status.ok());
  const std::string message = status.message();
  EXPECT_NE(message.find("stream-conservation"), std::string::npos) << message;
  EXPECT_NE(message.find("1 further violation"), std::string::npos) << message;
  // The trace tail holds the last 4 of the 6 recorded events.
  EXPECT_NE(message.find("#3@t=30"), std::string::npos) << message;
  EXPECT_NE(message.find("#6@t=60"), std::string::npos) << message;
  EXPECT_EQ(message.find("#2@t=20"), std::string::npos) << message;
}

TEST(InvariantAuditorTest, ViolationRecordingIsCappedButCountIsExact) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthySnapshot();
  s.supplier_in_use = 9;
  for (int i = 0; i < 100; ++i) auditor.Audit(s);
  EXPECT_EQ(auditor.total_violations(), 100);
  EXPECT_LE(auditor.violations().size(), 32u);
}

TEST(InvariantAuditorTest, CadenceGatesAuditDue) {
  AuditOptions options = EnabledOptions();
  options.every_events = 3;
  InvariantAuditor auditor(options);
  EXPECT_FALSE(auditor.AuditDue());
  auditor.RecordEvent(1.0);
  auditor.RecordEvent(2.0);
  EXPECT_FALSE(auditor.AuditDue());
  auditor.RecordEvent(3.0);
  EXPECT_TRUE(auditor.AuditDue());
  auditor.Audit(HealthySnapshot());
  EXPECT_FALSE(auditor.AuditDue());
}

TEST(BuildMovieAuditBuffersTest, ExpandsLayoutGeometry) {
  const PartitionLayout layout = TestLayout();  // l=120, n=4, B=40
  const auto buffers = BuildMovieAuditBuffers("m", layout);
  EXPECT_EQ(buffers.budget, 40.0);
  ASSERT_EQ(buffers.partitions.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(buffers.partitions[k].start, k * 30.0);
    EXPECT_DOUBLE_EQ(buffers.partitions[k].size, 10.0);
  }
}

// ---- live-run integration -------------------------------------------------

TEST(AuditIntegrationTest, HealthySingleMovieRunPassesParanoidAudit) {
  auto layout = PartitionLayout::FromBuffer(120.0, 6, 60.0);
  ASSERT_TRUE(layout.ok());
  SimulationOptions options;
  options.warmup_minutes = 100.0;
  options.measurement_minutes = 2000.0;
  options.seed = 7;
  options.audit.enabled = true;
  options.audit.every_events = 1;  // paranoid: every executed event
  auto report = RunSimulation(*layout, PlaybackRates{}, options);
  ASSERT_TRUE(report.ok()) << report.status().message();
}

TEST(AuditIntegrationTest, HealthyServerRunWithDegradationPassesAudit) {
  auto layout = PartitionLayout::FromBuffer(120.0, 6, 60.0);
  ASSERT_TRUE(layout.ok());
  std::vector<ServerMovieSpec> movies;
  movies.push_back({"a", *layout, 0.5, nullptr, {}});
  movies.push_back({"b", *layout, 0.25, nullptr, {}});
  ServerOptions options;
  options.dynamic_stream_reserve = 20;
  options.warmup_minutes = 100.0;
  options.measurement_minutes = 2000.0;
  options.seed = 11;
  options.faults.enabled = true;
  options.faults.disks = 4;
  options.faults.profile.mtbf_minutes = 400.0;
  options.faults.profile.mttr_minutes = 60.0;
  options.degradation.enabled = true;
  options.audit.enabled = true;
  options.audit.every_events = 1;
  auto report = RunServerSimulation(movies, options);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report->resilience_enabled);
}

TEST(AuditIntegrationTest, AuditedRunMatchesUnauditedRunExactly) {
  // The auditor observes; it must never perturb the simulation.
  auto layout = PartitionLayout::FromBuffer(120.0, 6, 60.0);
  ASSERT_TRUE(layout.ok());
  SimulationOptions options;
  options.warmup_minutes = 100.0;
  options.measurement_minutes = 2000.0;
  options.seed = 7;
  auto plain = RunSimulation(*layout, PlaybackRates{}, options);
  options.audit.enabled = true;
  options.audit.every_events = 1;
  auto audited = RunSimulation(*layout, PlaybackRates{}, options);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(audited.ok());
  EXPECT_EQ(plain->ToString(), audited->ToString());
  EXPECT_EQ(plain->hit_probability, audited->hit_probability);
  EXPECT_EQ(plain->total_resumes, audited->total_resumes);
}

TEST(ServerValidationTest, RejectsBadInputsWithOneLineDiagnostics) {
  auto layout = PartitionLayout::FromBuffer(120.0, 4, 40.0);
  ASSERT_TRUE(layout.ok());
  std::vector<ServerMovieSpec> movies;
  movies.push_back({"m", *layout, 0.5, nullptr, {}});
  ServerOptions options;

  EXPECT_TRUE(ValidateServerInputs(movies, options).ok());

  {
    auto bad = movies;
    bad[0].arrival_rate_per_minute = 0.0;
    const Status s = ValidateServerInputs(bad, options);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("arrival rate"), std::string::npos);
  }
  {
    auto bad = movies;
    bad[0].arrival_rate_per_minute =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(ValidateServerInputs(bad, options).ok());
  }
  {
    const Status s = ValidateServerInputs({}, options);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("at least one movie"), std::string::npos);
  }
  {
    auto bad_options = options;
    bad_options.dynamic_stream_reserve = -1;
    EXPECT_FALSE(ValidateServerInputs(movies, bad_options).ok());
  }
  {
    auto bad_options = options;
    bad_options.warmup_minutes = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(ValidateServerInputs(movies, bad_options).ok());
  }
  {
    auto bad_options = options;
    bad_options.audit.enabled = true;
    bad_options.audit.every_events = 0;
    EXPECT_FALSE(ValidateServerInputs(movies, bad_options).ok());
  }
}

}  // namespace
}  // namespace vod
