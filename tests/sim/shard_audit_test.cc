// Corruption-injection tests for the cross-shard conservation laws
// (sim/audit.h, "Cross-shard ledgers" section).
//
// Mirrors audit_test.cc: each test builds a healthy barrier snapshot of a
// sharded run, injects exactly one defect, and asserts the named invariant
// fires. The names (shard-reserve-ledger, shard-credit-negative,
// shard-viewer-conservation, shard-mailbox-conservation) are part of the
// auditor's contract — the sharded coordinator relies on them and so do
// these tests.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sim/audit.h"

namespace vod {
namespace {

AuditOptions EnabledOptions() {
  AuditOptions options;
  options.enabled = true;
  options.every_events = 1;
  return options;
}

/// A healthy barrier snapshot of a three-movie sharded run: capacity 50,
/// movie 2 still repaying a retirement debt of 1 after a fault, so
/// Σ(held + credit - debt) = (7+10) + (3+20) + (1+10-1) = 50. Viewers
/// conserved per movie; mailboxes fully drained, sequence-gap-free.
AuditSnapshot HealthyShardSnapshot() {
  AuditSnapshot s;
  s.time = 300.0;
  s.shard.enabled = true;
  s.shard.capacity = 50;
  s.shard.movies.push_back({/*movie=*/0, /*held=*/7, /*credit=*/10,
                            /*debt=*/0, /*entered=*/40, /*exited=*/33,
                            /*live=*/7});
  s.shard.movies.push_back({/*movie=*/1, /*held=*/3, /*credit=*/20,
                            /*debt=*/0, /*entered=*/12, /*exited=*/9,
                            /*live=*/3});
  s.shard.movies.push_back({/*movie=*/2, /*held=*/1, /*credit=*/10,
                            /*debt=*/1, /*entered=*/25, /*exited=*/24,
                            /*live=*/1});
  s.shard.messages_posted = 18;
  s.shard.messages_drained = 18;
  s.shard.sequence_gaps = 0;
  return s;
}

std::vector<std::string> FiredInvariants(const InvariantAuditor& auditor) {
  std::vector<std::string> names;
  for (const AuditViolation& v : auditor.violations()) {
    names.push_back(v.invariant);
  }
  return names;
}

TEST(ShardAuditTest, HealthyBarrierSnapshotIsClean) {
  InvariantAuditor auditor(EnabledOptions());
  auditor.Audit(HealthyShardSnapshot());
  EXPECT_EQ(auditor.total_violations(), 0);
  EXPECT_TRUE(auditor.status().ok());
}

TEST(ShardAuditTest, DisabledShardStateIsNeverChecked) {
  // A broken ledger must not fire when the run is not sharded.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyShardSnapshot();
  s.shard.enabled = false;
  s.shard.capacity = 9999;
  s.shard.movies[0].held = -5;
  auditor.Audit(s);
  EXPECT_EQ(auditor.total_violations(), 0);
}

TEST(ShardAuditTest, MintedCreditFiresReserveLedger) {
  // A grant that lends one more credit than the reserve holds.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyShardSnapshot();
  s.shard.movies[1].credit += 1;
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-reserve-ledger"});
  EXPECT_NE(auditor.violations()[0].detail.find("minted or leaked"),
            std::string::npos);
}

TEST(ShardAuditTest, LeakedStreamFiresReserveLedger) {
  // A release that vanished: held dropped without a matching credit return.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyShardSnapshot();
  s.shard.movies[0].held -= 1;
  s.shard.movies[0].live -= 1;
  s.shard.movies[0].exited += 1;  // keep viewer conservation healthy
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-reserve-ledger"});
}

TEST(ShardAuditTest, PhantomDebtFiresReserveLedger) {
  // Debt invented at a barrier shrinks the ledger below capacity.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyShardSnapshot();
  s.shard.movies[2].debt += 2;
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-reserve-ledger"});
}

TEST(ShardAuditTest, NegativeCreditFiresCreditNegative) {
  // Spending a credit twice drives the counter below zero. The ledger sum
  // breaks too — the negative-counter law must name the movie first.
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyShardSnapshot();
  s.shard.movies[1].credit = -1;
  auditor.Audit(s);
  const auto fired = FiredInvariants(auditor);
  ASSERT_FALSE(fired.empty());
  EXPECT_EQ(fired.front(), "shard-credit-negative");
  EXPECT_NE(auditor.violations()[0].detail.find("movie 1"),
            std::string::npos);
}

TEST(ShardAuditTest, NegativeDebtFiresCreditNegative) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyShardSnapshot();
  s.shard.movies[2].debt = -1;
  auditor.Audit(s);
  const auto fired = FiredInvariants(auditor);
  ASSERT_FALSE(fired.empty());
  EXPECT_EQ(fired.front(), "shard-credit-negative");
}

TEST(ShardAuditTest, LostViewerInHandoffFiresViewerConservation) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyShardSnapshot();
  s.shard.movies[0].live -= 1;  // entered/exited say 7, shard says 6
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-viewer-conservation"});
  EXPECT_NE(auditor.violations()[0].detail.find("lost or duplicated"),
            std::string::npos);
}

TEST(ShardAuditTest, DuplicatedViewerFiresViewerConservation) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyShardSnapshot();
  s.shard.movies[1].live += 1;
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-viewer-conservation"});
}

TEST(ShardAuditTest, UndrainedMessageFiresMailboxConservation) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyShardSnapshot();
  s.shard.messages_posted += 1;  // one in-flight message at a barrier
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-mailbox-conservation"});
  EXPECT_NE(auditor.violations()[0].detail.find("lost"), std::string::npos);
}

TEST(ShardAuditTest, SequenceGapFiresMailboxConservation) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyShardSnapshot();
  s.shard.sequence_gaps = 1;  // posted == drained but order was violated
  auditor.Audit(s);
  EXPECT_EQ(FiredInvariants(auditor),
            std::vector<std::string>{"shard-mailbox-conservation"});
  EXPECT_NE(auditor.violations()[0].detail.find("reordered"),
            std::string::npos);
}

TEST(ShardAuditTest, EveryShardLawBreaksAtOnceAndAllAreNamed) {
  InvariantAuditor auditor(EnabledOptions());
  AuditSnapshot s = HealthyShardSnapshot();
  s.shard.movies[0].credit = -2;   // negative + ledger break
  s.shard.movies[1].live += 3;     // viewer break
  s.shard.messages_drained -= 1;   // mailbox break
  s.shard.sequence_gaps = 2;       // second mailbox break
  auditor.Audit(s);
  const auto fired = FiredInvariants(auditor);
  EXPECT_EQ(auditor.total_violations(), 5);
  auto has = [&fired](const char* name) {
    for (const auto& f : fired) {
      if (f == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("shard-credit-negative"));
  EXPECT_TRUE(has("shard-reserve-ledger"));
  EXPECT_TRUE(has("shard-viewer-conservation"));
  EXPECT_TRUE(has("shard-mailbox-conservation"));
  EXPECT_FALSE(auditor.status().ok());
}

}  // namespace
}  // namespace vod
