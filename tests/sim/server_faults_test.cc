// Server-level fault injection and graceful degradation: determinism,
// accounting identities (no viewer outcome goes missing), and convergence to
// the fault-free baseline as the failure model vanishes.

#include <gtest/gtest.h>

#include "sim/server.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

std::vector<ServerMovieSpec> TwoMovies() {
  std::vector<ServerMovieSpec> movies;
  movies.push_back({"alpha", MakeLayout(120.0, 40, 80.0), 0.5, nullptr,
                    paper::Fig7MixedBehavior()});
  movies.push_back({"beta", MakeLayout(90.0, 30, 45.0), 0.25, nullptr,
                    paper::Fig7SingleOpBehavior(VcrOp::kFastForward)});
  return movies;
}

ServerOptions FaultyOptions(int64_t reserve, double mtbf, double mttr) {
  ServerOptions options;
  options.rates = paper::Rates();
  options.dynamic_stream_reserve = reserve;
  options.warmup_minutes = 500.0;
  options.measurement_minutes = 8000.0;
  options.seed = 17;
  options.faults.enabled = true;
  options.faults.disks = 4;
  options.faults.profile.mtbf_minutes = mtbf;
  options.faults.profile.mttr_minutes = mttr;
  options.degradation.enabled = true;
  return options;
}

TEST(ServerFaultsTest, Validation) {
  ServerOptions options = FaultyOptions(50, 2000.0, 200.0);
  options.faults.disks = 0;
  EXPECT_TRUE(RunServerSimulation(TwoMovies(), options)
                  .status()
                  .IsInvalidArgument());
  options = FaultyOptions(50, -1.0, 200.0);
  EXPECT_TRUE(RunServerSimulation(TwoMovies(), options)
                  .status()
                  .IsInvalidArgument());
  options = FaultyOptions(50, 2000.0, 200.0);
  options.degradation.backoff_factor = 0.0;
  EXPECT_TRUE(RunServerSimulation(TwoMovies(), options)
                  .status()
                  .IsInvalidArgument());
}

TEST(ServerFaultsTest, ByteIdenticalDeterminismWithActiveFaults) {
  const ServerOptions options = FaultyOptions(40, 1500.0, 300.0);
  const auto a = RunServerSimulation(TwoMovies(), options);
  const auto b = RunServerSimulation(TwoMovies(), options);
  ASSERT_TRUE(a.ok() && b.ok());
  // The fault schedule must actually have fired for this to mean anything.
  EXPECT_GT(a->resilience.disk_failures, 0);
  EXPECT_EQ(a->ToString(), b->ToString());
}

TEST(ServerFaultsTest, InfiniteMtbfMatchesFaultFreeBaseline) {
  // With a (practically) infinite MTBF the fault schedule is empty, and
  // because the injector uses its own RNG sub-stream the run must reproduce
  // the fault-free legacy run's per-movie numbers exactly.
  ServerOptions faulty = FaultyOptions(40, 1e15, 10.0);
  faulty.degradation.enabled = false;  // pure legacy semantics
  ServerOptions baseline;
  baseline.rates = faulty.rates;
  baseline.dynamic_stream_reserve = faulty.dynamic_stream_reserve;
  baseline.warmup_minutes = faulty.warmup_minutes;
  baseline.measurement_minutes = faulty.measurement_minutes;
  baseline.seed = faulty.seed;
  const auto a = RunServerSimulation(TwoMovies(), faulty);
  const auto b = RunServerSimulation(TwoMovies(), baseline);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->resilience.disk_failures, 0);
  EXPECT_EQ(a->refused_acquisitions, b->refused_acquisitions);
  EXPECT_EQ(a->granted_acquisitions, b->granted_acquisitions);
  EXPECT_EQ(a->total_blocked_vcr, b->total_blocked_vcr);
  EXPECT_EQ(a->total_stalls, b->total_stalls);
  ASSERT_EQ(a->movies.size(), b->movies.size());
  for (size_t i = 0; i < a->movies.size(); ++i) {
    EXPECT_EQ(a->movies[i].report.total_resumes,
              b->movies[i].report.total_resumes);
    EXPECT_DOUBLE_EQ(a->movies[i].report.hit_probability,
                     b->movies[i].report.hit_probability);
    EXPECT_EQ(a->movies[i].report.blocked_vcr_requests,
              b->movies[i].report.blocked_vcr_requests);
  }
}

TEST(ServerFaultsTest, EveryRefusalAndQueueOutcomeIsAccounted) {
  const auto report =
      RunServerSimulation(TwoMovies(), FaultyOptions(30, 1000.0, 400.0));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->resilience_enabled);
  const ResilienceReport& rz = report->resilience;
  // Something actually happened under this harsh profile.
  EXPECT_GT(rz.disk_failures, 0);
  EXPECT_GT(rz.disk_repairs, 0);
  EXPECT_LT(rz.min_reserve_capacity, report->reserve_capacity);
  // No queued request vanishes: queued = granted + expired + still waiting.
  EXPECT_EQ(rz.vcr_queued,
            rz.vcr_queue_grants + rz.vcr_queue_expirations +
                rz.vcr_queue_pending);
  // Per-movie queue counts agree with the manager's.
  EXPECT_EQ(report->total_queued_vcr, rz.vcr_queued);
  EXPECT_EQ(report->total_forced_reclaims, rz.forced_reclaims);
  // Every blocked-VCR report is either an outright denial or an expired
  // wait — nothing is silently dropped.
  EXPECT_EQ(report->total_blocked_vcr,
            rz.vcr_denied + rz.vcr_queue_expirations);
  // Ladder time integrates to the horizon.
  double total_time = 0.0;
  for (int i = 0; i < kNumDegradationLevels; ++i) {
    total_time += rz.time_in_level[i];
  }
  EXPECT_NEAR(total_time, 8500.0, 1e-6);
}

TEST(ServerFaultsTest, HarsherFailuresDegradeQoS) {
  // MTTR 10x longer => strictly less healthy time and at least as many
  // stalls/blocks (same fault arrival schedule, longer outages).
  const auto mild =
      RunServerSimulation(TwoMovies(), FaultyOptions(30, 1500.0, 50.0));
  const auto harsh =
      RunServerSimulation(TwoMovies(), FaultyOptions(30, 1500.0, 2000.0));
  ASSERT_TRUE(mild.ok() && harsh.ok());
  const double mild_normal =
      mild->resilience.time_in_level[0] + mild->resilience.time_in_level[1];
  const double harsh_normal =
      harsh->resilience.time_in_level[0] + harsh->resilience.time_in_level[1];
  EXPECT_GT(mild_normal, harsh_normal);
  EXPECT_GE(harsh->total_stalls + harsh->total_blocked_vcr,
            mild->total_stalls + mild->total_blocked_vcr);
}

TEST(ServerFaultsTest, ReclaimedViewersFallBackToBatching) {
  // Deep capacity loss must trigger forced reclaims, and each reclaim shows
  // up as a stall (pure-batching service), not as a lost session.
  const auto report =
      RunServerSimulation(TwoMovies(), FaultyOptions(30, 800.0, 1500.0));
  ASSERT_TRUE(report.ok());
  const ResilienceReport& rz = report->resilience;
  if (rz.forced_reclaims > 0) {
    EXPECT_GT(report->total_stalls, 0);
  }
  // Recovery episodes were observed and have sane durations.
  if (rz.recovery_episodes > 0) {
    EXPECT_GT(rz.mean_recovery_minutes, 0.0);
    EXPECT_GE(rz.max_recovery_minutes, rz.mean_recovery_minutes);
  }
}

TEST(ServerFaultsTest, DegradationWithoutFaultsQueuesInsteadOfRefusing) {
  // A tight reserve with the ladder on but no faults: the queue absorbs
  // some phase-1 refusals, so blocked_vcr is no larger than the legacy
  // run's, and grants are strictly positive under sustained pressure.
  ServerOptions legacy;
  legacy.rates = paper::Rates();
  legacy.dynamic_stream_reserve = 5;
  legacy.warmup_minutes = 500.0;
  legacy.measurement_minutes = 8000.0;
  legacy.seed = 17;
  ServerOptions degraded = legacy;
  degraded.degradation.enabled = true;
  degraded.degradation.queue_deadline_minutes = 5.0;
  const auto a = RunServerSimulation(TwoMovies(), legacy);
  const auto b = RunServerSimulation(TwoMovies(), degraded);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(b->resilience_enabled);
  EXPECT_GT(b->resilience.vcr_queued, 0);
  EXPECT_GT(b->resilience.vcr_queue_grants, 0);
  EXPECT_LE(b->total_blocked_vcr, a->total_blocked_vcr);
  // Queued waits were measured and respect the deadline.
  EXPECT_GT(b->resilience.mean_queued_wait_minutes, 0.0);
  EXPECT_LE(b->resilience.p99_queued_wait_minutes, 5.0 + 1e-9);
}

}  // namespace
}  // namespace vod
