#include "core/piggyback.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

TEST(PiggybackOptionsTest, Validation) {
  PiggybackOptions off;
  EXPECT_TRUE(off.Validate().ok());  // disabled: delta unchecked

  PiggybackOptions on;
  on.enabled = true;
  on.speed_delta = 0.05;
  EXPECT_TRUE(on.Validate().ok());

  on.speed_delta = 0.0;
  EXPECT_TRUE(on.Validate().IsInvalidArgument());
  on.speed_delta = 1.0;
  EXPECT_TRUE(on.Validate().IsInvalidArgument());
  on.speed_delta = -0.1;
  EXPECT_TRUE(on.Validate().IsInvalidArgument());
}

TEST(PiggybackPlanTest, SpeedsUpTowardNearWindowAhead) {
  // l=120, n=40, B=80: T=3, W=2, gap (2, 3). Phase 2.2: 0.2 from the window
  // ahead, 0.8 from the one behind -> speed up.
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  PiggybackOptions options;
  options.enabled = true;
  options.speed_delta = 0.05;
  const auto plan = PlanPiggybackMerge(layout, 2.2, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->direction, PiggybackDirection::kSpeedUp);
  EXPECT_DOUBLE_EQ(plan->rate_factor, 1.05);
  EXPECT_NEAR(plan->merge_minutes, 0.2 / 0.05, 1e-12);
}

TEST(PiggybackPlanTest, SlowsDownTowardNearWindowBehind) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  PiggybackOptions options;
  options.enabled = true;
  options.speed_delta = 0.05;
  const auto plan = PlanPiggybackMerge(layout, 2.9, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->direction, PiggybackDirection::kSlowDown);
  EXPECT_DOUBLE_EQ(plan->rate_factor, 0.95);
  EXPECT_NEAR(plan->merge_minutes, 0.1 / 0.05, 1e-12);
}

TEST(PiggybackPlanTest, MidGapTieTakesSpeedUp) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  PiggybackOptions options;
  options.enabled = true;
  options.speed_delta = 0.1;
  const auto plan = PlanPiggybackMerge(layout, 2.5, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->direction, PiggybackDirection::kSpeedUp);
  EXPECT_NEAR(plan->merge_minutes, 0.5 / 0.1, 1e-12);
}

TEST(PiggybackPlanTest, LargerDeltaMergesFaster) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  PiggybackOptions slow;
  slow.enabled = true;
  slow.speed_delta = 0.02;
  PiggybackOptions fast;
  fast.enabled = true;
  fast.speed_delta = 0.1;
  const auto a = PlanPiggybackMerge(layout, 2.4, slow);
  const auto b = PlanPiggybackMerge(layout, 2.4, fast);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(a->merge_minutes, b->merge_minutes);
  EXPECT_NEAR(a->merge_minutes / b->merge_minutes, 5.0, 1e-9);
}

TEST(PiggybackPlanTest, RejectsBadInputs) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  PiggybackOptions options;
  options.enabled = true;
  // Phase inside a window is not a miss.
  EXPECT_TRUE(PlanPiggybackMerge(layout, 1.0, options)
                  .status()
                  .IsInvalidArgument());
  // Phase beyond the period is malformed.
  EXPECT_TRUE(PlanPiggybackMerge(layout, 3.5, options)
                  .status()
                  .IsInvalidArgument());
  // Disabled policy.
  PiggybackOptions off;
  EXPECT_TRUE(PlanPiggybackMerge(layout, 2.5, off)
                  .status()
                  .IsInvalidArgument());
  // Pure batching / full buffer have no gap geometry.
  EXPECT_TRUE(PlanPiggybackMerge(MakeLayout(120.0, 40, 0.0), 2.5, options)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PlanPiggybackMerge(MakeLayout(120.0, 40, 120.0), 2.5, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(PiggybackExpectationTest, ClosedForm) {
  // E[t] = w/(4Δ): gap w = (l − B)/n.
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);  // w = 1
  PiggybackOptions options;
  options.enabled = true;
  options.speed_delta = 0.05;
  EXPECT_NEAR(ExpectedPiggybackMergeMinutes(layout, options),
              1.0 / (4.0 * 0.05), 1e-12);
  options.speed_delta = 0.1;
  EXPECT_NEAR(ExpectedPiggybackMergeMinutes(layout, options), 2.5, 1e-12);
}

TEST(PiggybackExpectationTest, MatchesMonteCarloOverUniformPhase) {
  const PartitionLayout layout = MakeLayout(120.0, 30, 90.0);  // T=4, W=3
  PiggybackOptions options;
  options.enabled = true;
  options.speed_delta = 0.05;
  double sum = 0.0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const double g = layout.window() +
                     (layout.restart_period() - layout.window()) *
                         (i + 0.5) / samples;
    const auto plan = PlanPiggybackMerge(layout, g, options);
    ASSERT_TRUE(plan.ok());
    sum += plan->merge_minutes;
  }
  EXPECT_NEAR(sum / samples, ExpectedPiggybackMergeMinutes(layout, options),
              0.01);
}

TEST(PiggybackExpectationTest, DegenerateLayoutsGiveZero) {
  PiggybackOptions options;
  options.enabled = true;
  EXPECT_DOUBLE_EQ(ExpectedPiggybackMergeMinutes(
                       MakeLayout(120.0, 40, 120.0), options),
                   0.0);
  PiggybackOptions off;
  EXPECT_DOUBLE_EQ(
      ExpectedPiggybackMergeMinutes(MakeLayout(120.0, 40, 80.0), off), 0.0);
}

}  // namespace
}  // namespace vod
