#include "core/erlang.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/server.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

TEST(ErlangBTest, ClassicReferenceValues) {
  // Standard traffic-table values.
  EXPECT_NEAR(*ErlangBlockingProbability(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(*ErlangBlockingProbability(2, 1.0), 0.2, 1e-12);
  // B(c, a) = (a^c/c!) / Σ a^k/k!: B(3, 2) = (8/6)/(1+2+2+8/6) = 4/19.
  EXPECT_NEAR(*ErlangBlockingProbability(3, 2.0), 4.0 / 19.0, 1e-12);
  // Heavily offered: B(10, 100) ≈ 0.90 (almost everything blocked).
  EXPECT_NEAR(*ErlangBlockingProbability(10, 100.0), 0.90, 0.01);
}

TEST(ErlangBTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(*ErlangBlockingProbability(0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(*ErlangBlockingProbability(10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(*ErlangBlockingProbability(0, 0.0), 1.0);
  EXPECT_TRUE(ErlangBlockingProbability(-1, 1.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ErlangBlockingProbability(1, -1.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(ErlangBTest, MonotoneInServersAndLoad) {
  double previous = 1.0;
  for (int c = 1; c <= 60; ++c) {
    const double b = *ErlangBlockingProbability(c, 20.0);
    ASSERT_LT(b, previous) << c;
    previous = b;
  }
  previous = 0.0;
  for (double a = 1.0; a <= 60.0; a += 1.0) {
    const double b = *ErlangBlockingProbability(20, a);
    ASSERT_GT(b, previous) << a;
    previous = b;
  }
}

TEST(ErlangBTest, StableForLargeSystems) {
  // A naive factorial formulation would overflow; the recurrence must not.
  const auto b = ErlangBlockingProbability(10000, 9800.0);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(*b, 0.0);
  EXPECT_LT(*b, 0.1);
}

TEST(MinStreamsTest, InvertsBlocking) {
  const double a = 30.0;
  const auto c = MinStreamsForBlocking(a, 0.01);
  ASSERT_TRUE(c.ok());
  EXPECT_LE(*ErlangBlockingProbability(*c, a), 0.01);
  EXPECT_GT(*ErlangBlockingProbability(*c - 1, a), 0.01);
}

TEST(MinStreamsTest, EdgeCases) {
  EXPECT_EQ(*MinStreamsForBlocking(0.0, 0.01), 0);
  EXPECT_EQ(*MinStreamsForBlocking(5.0, 1.0), 0);  // everything may block
  EXPECT_TRUE(MinStreamsForBlocking(5.0, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      MinStreamsForBlocking(100.0, 1e-9, 10).status().IsInfeasible());
}

TEST(ErlangCarriedLoadTest, CappedByServers) {
  EXPECT_NEAR(*ErlangCarriedLoad(2, 1.0), 1.0 * 0.8, 1e-12);
  const double carried = *ErlangCarriedLoad(10, 100.0);
  EXPECT_LE(carried, 10.0);
  EXPECT_GT(carried, 9.0);
}

TEST(ErlangBTest, PredictsServerSimulatorRefusals) {
  // The end-to-end claim: measure the offered load from unlimited-supply
  // runs (mean busy dedicated streams), then Erlang-B over the summed load
  // must track the finite-reserve server's measured refusal probability.
  std::vector<ServerMovieSpec> movies;
  auto layout_a = PartitionLayout::FromBuffer(120.0, 40, 60.0);
  auto layout_b = PartitionLayout::FromBuffer(90.0, 30, 45.0);
  ASSERT_TRUE(layout_a.ok() && layout_b.ok());
  movies.push_back({"a", *layout_a, 0.5, nullptr, paper::Fig7MixedBehavior()});
  movies.push_back({"b", *layout_b, 0.33, nullptr, paper::Fig7MixedBehavior()});

  // Offered load from per-movie unlimited runs.
  double offered = 0.0;
  for (const auto& movie : movies) {
    SimulationOptions options;
    options.mean_interarrival_minutes = 1.0 / movie.arrival_rate_per_minute;
    options.behavior = movie.behavior;
    options.warmup_minutes = 1000.0;
    options.measurement_minutes = 20000.0;
    options.seed = 3;
    const auto report =
        RunSimulation(movie.layout, paper::Rates(), options);
    ASSERT_TRUE(report.ok());
    offered += report->mean_dedicated_streams;
  }
  ASSERT_GT(offered, 10.0);

  for (int64_t reserve : {30, 45, 60}) {
    ServerOptions options;
    options.rates = paper::Rates();
    options.dynamic_stream_reserve = reserve;
    options.warmup_minutes = 1000.0;
    options.measurement_minutes = 20000.0;
    options.seed = 4;
    const auto report = RunServerSimulation(movies, options);
    ASSERT_TRUE(report.ok());
    const auto predicted = ErlangBlockingProbability(
        static_cast<int>(reserve), offered);
    ASSERT_TRUE(predicted.ok());
    // Loss-model vs simulation with re-offered traffic: expect agreement in
    // magnitude, not to the decimal. Compare with an absolute band.
    EXPECT_NEAR(report->refusal_probability, *predicted, 0.10)
        << "reserve=" << reserve << " offered=" << offered;
  }
}

TEST(ErlangFailuresTest, Validation) {
  EXPECT_TRUE(
      ErlangBlockingWithFailures(0, 10, 5.0, 0.9).status().IsInvalidArgument());
  EXPECT_TRUE(ErlangBlockingWithFailures(4, -1, 5.0, 0.9)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ErlangBlockingWithFailures(4, 10, -1.0, 0.9)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ErlangBlockingWithFailures(4, 10, 5.0, 1.5)
                  .status()
                  .IsInvalidArgument());
}

TEST(ErlangFailuresTest, PerfectAvailabilityRecoversErlangB) {
  const auto with = ErlangBlockingWithFailures(4, 10, 25.0, 1.0);
  const auto plain = ErlangBlockingProbability(40, 25.0);
  ASSERT_TRUE(with.ok() && plain.ok());
  EXPECT_NEAR(*with, *plain, 1e-12);
}

TEST(ErlangFailuresTest, ZeroAvailabilityBlocksEverything) {
  const auto blocking = ErlangBlockingWithFailures(4, 10, 5.0, 0.0);
  ASSERT_TRUE(blocking.ok());
  EXPECT_DOUBLE_EQ(*blocking, 1.0);
}

TEST(ErlangFailuresTest, MonotoneInAvailability) {
  double previous = 1.1;
  for (double availability : {0.5, 0.8, 0.9, 0.95, 0.99, 1.0}) {
    const auto blocking = ErlangBlockingWithFailures(4, 10, 30.0, availability);
    ASSERT_TRUE(blocking.ok());
    EXPECT_LT(*blocking, previous) << availability;
    previous = *blocking;
  }
}

TEST(ErlangFailuresTest, MatchesDirectBinomialMixture) {
  // Small farm: compare against an explicit binomial expansion.
  const double a = 0.9;
  const double load = 8.0;
  double expected = 0.0;
  const double coeff[3] = {(1 - a) * (1 - a), 2 * a * (1 - a), a * a};
  for (int k = 0; k <= 2; ++k) {
    expected += coeff[k] * *ErlangBlockingProbability(k * 5, load);
  }
  const auto got = ErlangBlockingWithFailures(2, 5, load, a);
  ASSERT_TRUE(got.ok());
  EXPECT_NEAR(*got, expected, 1e-12);
}

}  // namespace
}  // namespace vod
