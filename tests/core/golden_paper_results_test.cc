// Golden-value regression suite for the paper's headline numbers.
//
// Unlike the structural tests (sizing_test, sizing_pipeline_test), these
// lock the *exact* values this repository reproduces, so any drift in the
// sizing constants, the hit model, or the duration presets fails loudly:
//
//   Example 1 (paper §5):  [(B, n)] = [(39, 360), (30, 60), (44.5, 182)],
//                          ΣB = 113.5 buffer-minutes, Σn = 602 streams,
//                          vs 1230 streams for pure batching.
//   Our reproduction under the Figure-7(d) mix:
//                          [(37.6, 374), (30.0, 60), (45.0, 180)],
//                          ΣB = 112.6, Σn = 614 — movie 2 exact, movies 1/3
//                          within the paper's 5-minute buffer step.
//   Example 2 (paper §5):  C_b = $750/movie-minute, C_n = $70/stream,
//                          10 streams per disk, φ = 75/7 ≈ 10.71 (the paper
//                          rounds to 11).
//
// Analytic quantities are asserted exactly; anything the paper states but
// our model derives under a (paper-unstated) operation mix is additionally
// checked against a tolerance band around the paper's own figures.

#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.h"
#include "core/sizing.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

// ---------------------------------------------------------------------------
// Example 1 — the three-movie allocation.

TEST(GoldenPaperResults, PureBatchingBaselineIs1230Streams) {
  // Σ ⌈l_i / w_i⌉ = ⌈75/0.1⌉ + ⌈60/0.5⌉ + ⌈90/0.25⌉ = 750 + 120 + 360.
  EXPECT_EQ(PureBatchingStreams(paper::Example1Movies()), 1230);
}

TEST(GoldenPaperResults, Example1MixedSizingExactGoldens) {
  // The reproduction's own golden values under the Fig-7(d) mix. The stream
  // counts are integers and locked exactly; each buffer follows from
  // B = l − n·w, so it is locked through the same equality.
  const auto movies = paper::Example1Movies(VcrMix::PaperMixed());

  const auto m1 = MinimumBufferChoice(movies[0]);
  ASSERT_TRUE(m1.ok()) << m1.status();
  EXPECT_EQ(m1->streams, 374);
  EXPECT_NEAR(m1->buffer_minutes, 75.0 - 374 * 0.1, 1e-9);

  const auto m2 = MinimumBufferChoice(movies[1]);
  ASSERT_TRUE(m2.ok()) << m2.status();
  EXPECT_EQ(m2->streams, 60);
  EXPECT_NEAR(m2->buffer_minutes, 60.0 - 60 * 0.5, 1e-9);

  const auto m3 = MinimumBufferChoice(movies[2]);
  ASSERT_TRUE(m3.ok()) << m3.status();
  EXPECT_EQ(m3->streams, 180);
  EXPECT_NEAR(m3->buffer_minutes, 90.0 - 180 * 0.25, 1e-9);
}

TEST(GoldenPaperResults, Example1MixedTotalsExactAndWithinPaperBands) {
  const auto sized =
      SizeSystem(paper::Example1Movies(VcrMix::PaperMixed()), 1230);
  ASSERT_TRUE(sized.ok()) << sized.status();

  // Exact goldens of this reproduction.
  EXPECT_EQ(sized->total_streams, 614);
  EXPECT_NEAR(sized->total_buffer_minutes, 112.6, 1e-9);

  // Band around the paper's stated totals (ΣB = 113.5, Σn = 602): the
  // residual is the paper's unstated mix and its 5-minute buffer step.
  EXPECT_NEAR(sized->total_buffer_minutes, 113.5, 3.0);
  EXPECT_NEAR(static_cast<double>(sized->total_streams), 602.0, 25.0);
}

TEST(GoldenPaperResults, Example1FastForwardOnlySizingExactGoldens) {
  // The FF-only variant (the operation the paper actually derives) is the
  // second reference point EXPERIMENTS.md documents; lock it too so a
  // change to the FF hit model cannot hide behind the mixed workload.
  const auto movies = paper::Example1Movies();

  const auto m1 = MinimumBufferChoice(movies[0]);
  ASSERT_TRUE(m1.ok()) << m1.status();
  EXPECT_EQ(m1->streams, 419);
  EXPECT_NEAR(m1->buffer_minutes, 75.0 - 419 * 0.1, 1e-9);

  const auto m2 = MinimumBufferChoice(movies[1]);
  ASSERT_TRUE(m2.ok()) << m2.status();
  EXPECT_EQ(m2->streams, 65);
  EXPECT_NEAR(m2->buffer_minutes, 60.0 - 65 * 0.5, 1e-9);

  const auto m3 = MinimumBufferChoice(movies[2]);
  ASSERT_TRUE(m3.ok()) << m3.status();
  EXPECT_EQ(m3->streams, 184);
  EXPECT_NEAR(m3->buffer_minutes, 90.0 - 184 * 0.25, 1e-9);

  const auto sized = SizeSystem(movies, 1230);
  ASSERT_TRUE(sized.ok()) << sized.status();
  EXPECT_EQ(sized->total_streams, 668);
  EXPECT_NEAR(sized->total_buffer_minutes, 104.6, 1e-9);
}

TEST(GoldenPaperResults, Example1EveryMovieMeetsItsHitTarget) {
  // The golden allocations are only meaningful if they are feasible: each
  // minimum-buffer choice must deliver P(hit) >= P* = 0.5.
  for (const auto mix :
       {VcrMix::Only(VcrOp::kFastForward), VcrMix::PaperMixed()}) {
    for (const auto& spec : paper::Example1Movies(mix)) {
      const auto choice = MinimumBufferChoice(spec);
      ASSERT_TRUE(choice.ok()) << spec.name << ": " << choice.status();
      EXPECT_GE(choice->hit_probability, spec.min_hit_probability)
          << spec.name;
      EXPECT_TRUE(choice->feasible) << spec.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Example 2 — the 1997 hardware cost arithmetic (all exact).

TEST(GoldenPaperResults, Example2HardwareCostArithmetic) {
  const HardwareCosts costs;
  // $700 disk at 5 MB/s, $25/MB DRAM, 4 Mbps MPEG-2:
  //   C_b = 60 s · 0.5 MB/s · $25/MB       = $750 per movie-minute
  //   streams/disk = 5 / 0.5               = 10
  //   C_n = $700 / 10                      = $70 per stream
  //   φ   = 750 / 70                       = 75/7 ≈ 10.71  (paper: ~11)
  EXPECT_DOUBLE_EQ(costs.BufferCostPerMovieMinute(), 750.0);
  EXPECT_DOUBLE_EQ(costs.StreamsPerDisk(), 10.0);
  EXPECT_DOUBLE_EQ(costs.StreamCost(), 70.0);
  EXPECT_DOUBLE_EQ(costs.Phi(), 75.0 / 7.0);
  EXPECT_EQ(std::lround(costs.Phi()), 11);
}

TEST(GoldenPaperResults, Example2AllocationCostClosesEq23) {
  // Eq. 23 on the golden mixed allocation, both normalized and in dollars:
  //   normalized = φ·ΣB + Σn = (75/7)·112.6 + 614
  //   dollars    = C_n · normalized = 750·112.6 + 70·614
  const auto sized =
      SizeSystem(paper::Example1Movies(VcrMix::PaperMixed()), 1230);
  ASSERT_TRUE(sized.ok()) << sized.status();

  const HardwareCosts costs;
  EXPECT_NEAR(AllocationCostNormalized(*sized, costs.Phi()),
              (75.0 / 7.0) * 112.6 + 614.0, 1e-6);
  EXPECT_NEAR(AllocationCostDollars(*sized, costs),
              750.0 * 112.6 + 70.0 * 614.0, 1e-6);
}

}  // namespace
}  // namespace vod
