#include "core/partition_layout.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(PartitionLayoutTest, FromBufferBasics) {
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  EXPECT_DOUBLE_EQ(layout->movie_length(), 120.0);
  EXPECT_EQ(layout->streams(), 40);
  EXPECT_DOUBLE_EQ(layout->buffer_minutes(), 80.0);
  EXPECT_DOUBLE_EQ(layout->restart_period(), 3.0);
  EXPECT_DOUBLE_EQ(layout->window(), 2.0);
  EXPECT_DOUBLE_EQ(layout->max_wait(), 1.0);  // Eq. (2): (120-80)/40
  EXPECT_NEAR(layout->coverage(), 2.0 / 3.0, 1e-15);
  EXPECT_FALSE(layout->is_pure_batching());
}

TEST(PartitionLayoutTest, Equation2RoundTrip) {
  // FromMaxWait must invert max_wait() exactly: B = l − n·w.
  for (double w : {0.1, 0.5, 1.0, 2.0}) {
    for (int n : {1, 7, 40, 100}) {
      const auto layout = PartitionLayout::FromMaxWait(120.0, n, w);
      if (!layout.ok()) continue;  // infeasible combination
      EXPECT_NEAR(layout->max_wait(), w, 1e-12) << "n=" << n << " w=" << w;
      EXPECT_NEAR(layout->buffer_minutes(), 120.0 - n * w, 1e-12);
    }
  }
}

TEST(PartitionLayoutTest, WindowPlusWaitEqualsPeriod) {
  // The enrollment window and the gap partition the restart period:
  // B/n + w = l/n.
  const auto layout = PartitionLayout::FromBuffer(90.0, 12, 30.0);
  ASSERT_TRUE(layout.ok());
  EXPECT_NEAR(layout->window() + layout->max_wait(),
              layout->restart_period(), 1e-12);
}

TEST(PartitionLayoutTest, RejectsInvalidArguments) {
  EXPECT_TRUE(PartitionLayout::FromBuffer(0.0, 1, 0.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PartitionLayout::FromBuffer(-5.0, 1, 0.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PartitionLayout::FromBuffer(100.0, 0, 10.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(PartitionLayout::FromBuffer(100.0, 5, -1.0)
                  .status()
                  .IsInvalidArgument());
  // B > l violates Eq. (2)'s B <= l.
  EXPECT_TRUE(PartitionLayout::FromBuffer(100.0, 5, 101.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(PartitionLayoutTest, FromMaxWaitRejectsOversubscription) {
  // n·w > l ⇒ negative buffer.
  EXPECT_TRUE(PartitionLayout::FromMaxWait(120.0, 100, 2.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(PartitionLayoutTest, FromMaxWaitBoundaryIsPureBatching) {
  // n·w == l exactly: B = 0.
  const auto layout = PartitionLayout::FromMaxWait(120.0, 60, 2.0);
  ASSERT_TRUE(layout.ok());
  EXPECT_DOUBLE_EQ(layout->buffer_minutes(), 0.0);
  EXPECT_TRUE(layout->is_pure_batching());
  EXPECT_DOUBLE_EQ(layout->window(), 0.0);
}

TEST(PartitionLayoutTest, PureBatchingUsesCeiling) {
  const auto exact = PartitionLayout::PureBatching(120.0, 2.0);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->streams(), 60);
  EXPECT_TRUE(exact->is_pure_batching());

  const auto rounded = PartitionLayout::PureBatching(120.0, 0.7);
  ASSERT_TRUE(rounded.ok());
  EXPECT_EQ(rounded->streams(), 172);  // ceil(120/0.7) = ceil(171.43)
  // Actual wait never exceeds the target.
  EXPECT_LE(rounded->restart_period(), 0.7 + 1e-12);
}

TEST(PartitionLayoutTest, PureBatchingRejectsBadInput) {
  EXPECT_TRUE(
      PartitionLayout::PureBatching(120.0, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      PartitionLayout::PureBatching(0.0, 1.0).status().IsInvalidArgument());
}

TEST(PartitionLayoutTest, FullBufferMeansZeroWait) {
  const auto layout = PartitionLayout::FromBuffer(120.0, 10, 120.0);
  ASSERT_TRUE(layout.ok());
  EXPECT_DOUBLE_EQ(layout->max_wait(), 0.0);
  EXPECT_DOUBLE_EQ(layout->coverage(), 1.0);
  EXPECT_DOUBLE_EQ(layout->window(), layout->restart_period());
}

TEST(PartitionLayoutTest, GrossBufferAddsPerPartitionReserve) {
  // Paper §3.1: B = B' − n·δ, so B' = B + n·δ.
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  EXPECT_DOUBLE_EQ(layout->gross_buffer_minutes(0.0), 80.0);
  EXPECT_DOUBLE_EQ(layout->gross_buffer_minutes(0.25), 80.0 + 40 * 0.25);
}

TEST(PartitionLayoutTest, ToStringMentionsParameters) {
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  const std::string s = layout->ToString();
  EXPECT_NE(s.find("l=120"), std::string::npos);
  EXPECT_NE(s.find("n=40"), std::string::npos);
  EXPECT_NE(s.find("B=80"), std::string::npos);
}

}  // namespace
}  // namespace vod
