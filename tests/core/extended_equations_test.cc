#include "core/extended_equations.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/hit_model.h"
#include "dist/exponential.h"
#include "dist/gamma.h"
#include "dist/uniform.h"

namespace vod {
namespace {

PlaybackRates PaperRates() {
  PlaybackRates rates;
  rates.fast_forward = 3.0;
  rates.rewind = 3.0;
  return rates;
}

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

TEST(ExtendedEquationsTest, ValidatesInputs) {
  const GammaDistribution gamma(2.0, 4.0);
  EXPECT_TRUE(ExtendedRewindHitProbability(MakeLayout(120.0, 40, 0.0),
                                           PaperRates(), gamma)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExtendedRewindHitProbability(MakeLayout(120.0, 40, 80.0),
                                           PaperRates(), gamma, 1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ExtendedPauseHitProbability(MakeLayout(120.0, 40, 80.0), gamma,
                                          32, 0.9)
                  .status()
                  .IsInvalidArgument());
}

TEST(ExtendedEquationsTest, RewindJumpIndexBound) {
  // j ≤ (l/γ + W)/T with γ = 0.75, T = 3, W = 2: (160 + 2)/3 = 54.
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  EXPECT_EQ(ExtendedMaxRewindJumpIndex(layout, PaperRates()), 54);
}

// The headline: the casewise transcription of DESIGN.md §5 must match the
// production interval engine, term structure included.
class ExtendedVsEngineTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ExtendedVsEngineTest, RewindAgrees) {
  const int n = std::get<0>(GetParam());
  const double w = std::get<1>(GetParam());
  const auto layout = PartitionLayout::FromMaxWait(120.0, n, w);
  if (!layout.ok() || layout->is_pure_batching()) GTEST_SKIP();
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const auto model = AnalyticHitModel::Create(*layout, PaperRates());
  ASSERT_TRUE(model.ok());
  const auto engine =
      model->Breakdown(VcrOp::kRewind, DistributionPtr(gamma));
  ASSERT_TRUE(engine.ok());
  const auto casewise =
      ExtendedRewindHitProbability(*layout, PaperRates(), *gamma, 48);
  ASSERT_TRUE(casewise.ok());
  EXPECT_NEAR(engine->total(), casewise->Total(), 5e-4)
      << "n=" << n << " w=" << w;
  EXPECT_NEAR(engine->within, casewise->hit_within, 5e-4);
  EXPECT_NEAR(engine->jump, casewise->JumpTotal(), 5e-4);
}

TEST_P(ExtendedVsEngineTest, PauseAgrees) {
  const int n = std::get<0>(GetParam());
  const double w = std::get<1>(GetParam());
  const auto layout = PartitionLayout::FromMaxWait(120.0, n, w);
  if (!layout.ok() || layout->is_pure_batching()) GTEST_SKIP();
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const auto model = AnalyticHitModel::Create(*layout, PaperRates());
  ASSERT_TRUE(model.ok());
  const auto engine =
      model->Breakdown(VcrOp::kPause, DistributionPtr(gamma));
  ASSERT_TRUE(engine.ok());
  const auto casewise = ExtendedPauseHitProbability(*layout, *gamma, 48);
  ASSERT_TRUE(casewise.ok());
  EXPECT_NEAR(engine->total(), casewise->Total(), 5e-4)
      << "n=" << n << " w=" << w;
  EXPECT_NEAR(engine->within, casewise->hit_within, 5e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtendedVsEngineTest,
    ::testing::Combine(::testing::Values(5, 10, 20, 40, 60),
                       ::testing::Values(0.5, 1.0, 2.0)));

TEST(ExtendedEquationsTest, OtherDistributionsAgreeToo) {
  const auto layout = MakeLayout(60.0, 24, 30.0);
  const auto model = AnalyticHitModel::Create(layout, PaperRates());
  ASSERT_TRUE(model.ok());
  for (const DistributionPtr& dist :
       {DistributionPtr(std::make_shared<ExponentialDistribution>(5.0)),
        DistributionPtr(std::make_shared<UniformDistribution>(0.0, 10.0))}) {
    const auto rw_engine = model->HitProbability(VcrOp::kRewind, dist);
    const auto rw_casewise =
        ExtendedRewindHitProbability(layout, PaperRates(), *dist, 48);
    ASSERT_TRUE(rw_engine.ok() && rw_casewise.ok());
    EXPECT_NEAR(*rw_engine, rw_casewise->Total(), 5e-4) << dist->ToString();

    const auto pau_engine = model->HitProbability(VcrOp::kPause, dist);
    const auto pau_casewise =
        ExtendedPauseHitProbability(layout, *dist, 48);
    ASSERT_TRUE(pau_engine.ok() && pau_casewise.ok());
    EXPECT_NEAR(*pau_engine, pau_casewise->Total(), 5e-4) << dist->ToString();
  }
}

TEST(ExtendedEquationsTest, RewindJumpTermsDecay) {
  const auto layout = MakeLayout(120.0, 40, 80.0);
  const auto result = ExtendedRewindHitProbability(
      layout, PaperRates(), GammaDistribution(2.0, 4.0));
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->hit_jump_per_partition.size(), 5u);
  EXPECT_GT(result->hit_jump_per_partition[0],
            result->hit_jump_per_partition[4]);
}

TEST(ExtendedEquationsTest, PauseWindowEnumerationStopsAtTail) {
  // Short-tailed durations need only a few windows.
  const auto layout = MakeLayout(120.0, 40, 80.0);  // T = 3
  const auto short_tail = ExponentialDistribution(1.0);
  const auto result = ExtendedPauseHitProbability(layout, short_tail, 32);
  ASSERT_TRUE(result.ok());
  // 1 − F(jT − W) < 1e-10 once jT − W > ~23: j ≈ 9.
  EXPECT_LE(result->hit_jump_per_partition.size(), 12u);
  EXPECT_GE(result->hit_jump_per_partition.size(), 6u);
}

}  // namespace
}  // namespace vod
