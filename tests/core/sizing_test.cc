#include "core/sizing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dist/exponential.h"
#include "dist/transformed.h"
#include "dist/gamma.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

MovieSizingSpec SmallSpec() {
  MovieSizingSpec spec;
  spec.name = "test-movie";
  spec.length_minutes = 60.0;
  spec.max_wait_minutes = 1.0;
  spec.min_hit_probability = 0.5;
  spec.mix = VcrMix::Only(VcrOp::kFastForward);
  spec.durations = VcrDurations::AllSame(
      std::make_shared<ExponentialDistribution>(5.0));
  spec.rates = paper::Rates();
  return spec;
}

TEST(MovieSizingSpecTest, Validation) {
  EXPECT_TRUE(SmallSpec().Validate().ok());

  MovieSizingSpec bad = SmallSpec();
  bad.length_minutes = 0.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = SmallSpec();
  bad.max_wait_minutes = 0.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = SmallSpec();
  bad.max_wait_minutes = 100.0;  // exceeds length
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = SmallSpec();
  bad.min_hit_probability = 1.5;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  bad = SmallSpec();
  bad.mix = VcrMix::PaperMixed();  // needs RW/PAU durations
  bad.durations.rewind = nullptr;
  bad.durations.pause = nullptr;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(SizingCurveTest, CoversFullStreamRangeAndTradeoff) {
  const auto points = ComputeSizingCurve(SmallSpec(), /*stream_step=*/1);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 60u);  // n = 1..l/w
  for (const auto& p : *points) {
    EXPECT_NEAR(p.buffer_minutes, 60.0 - p.streams * 1.0, 1e-9);
    EXPECT_GE(p.hit_probability, 0.0);
    EXPECT_LE(p.hit_probability, 1.0 + 1e-9);
  }
  // Monotone trade-off: later points have more streams, less buffer,
  // lower hit probability.
  for (size_t i = 1; i < points->size(); ++i) {
    EXPECT_GT((*points)[i].streams, (*points)[i - 1].streams);
    EXPECT_LE((*points)[i].hit_probability,
              (*points)[i - 1].hit_probability + 1e-9);
  }
}

TEST(SizingCurveTest, StrideSkipsPoints) {
  const auto points = ComputeSizingCurve(SmallSpec(), /*stream_step=*/10);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 6u);  // n = 1, 11, 21, 31, 41, 51
  EXPECT_EQ((*points)[1].streams, 11);
}

TEST(MinimumBufferChoiceTest, MatchesExhaustiveScan) {
  const MovieSizingSpec spec = SmallSpec();
  const auto choice = MinimumBufferChoice(spec);
  ASSERT_TRUE(choice.ok()) << choice.status();
  const auto curve = ComputeSizingCurve(spec);
  ASSERT_TRUE(curve.ok());
  int best_n = 0;
  for (const auto& p : *curve) {
    if (p.feasible) best_n = std::max(best_n, p.streams);
  }
  EXPECT_EQ(choice->streams, best_n);
  EXPECT_TRUE(choice->feasible);
  EXPECT_GE(choice->hit_probability, spec.min_hit_probability);
}

TEST(MinimumBufferChoiceTest, BoundaryIsTight) {
  // One more stream than the choice must violate P*.
  const MovieSizingSpec spec = SmallSpec();
  const auto choice = MinimumBufferChoice(spec);
  ASSERT_TRUE(choice.ok());
  const auto curve = ComputeSizingCurve(spec);
  ASSERT_TRUE(curve.ok());
  for (const auto& p : *curve) {
    if (p.streams == choice->streams + 1) {
      EXPECT_FALSE(p.feasible);
    }
  }
}

TEST(MinimumBufferChoiceTest, InfeasibleTargetReported) {
  MovieSizingSpec spec = SmallSpec();
  spec.min_hit_probability = 0.999999;  // unreachable even with n = 1
  EXPECT_TRUE(MinimumBufferChoice(spec).status().IsInfeasible());
}

TEST(MinimumBufferChoiceTest, TrivialTargetGetsMaxStreams) {
  MovieSizingSpec spec = SmallSpec();
  spec.min_hit_probability = 0.0;
  const auto choice = MinimumBufferChoice(spec);
  ASSERT_TRUE(choice.ok());
  EXPECT_EQ(choice->streams, 60);  // pure batching allowed
  EXPECT_NEAR(choice->buffer_minutes, 0.0, 1e-9);
}

TEST(AllocateStreamBudgetTest, AmpleBudgetGivesEveryMovieItsMax) {
  std::vector<MovieAllocationBound> bounds = {
      {"a", 60.0, 1.0, 30},
      {"b", 90.0, 0.5, 100},
  };
  const auto result = AllocateStreamBudget(bounds, 1000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_streams, 130);
  EXPECT_EQ(result->movies[0].streams, 30);
  EXPECT_EQ(result->movies[1].streams, 100);
  EXPECT_NEAR(result->total_buffer_minutes, (60.0 - 30.0) + (90.0 - 50.0),
              1e-9);
}

TEST(AllocateStreamBudgetTest, TightBudgetFavorsLargeWaitMovies) {
  // Each stream given to a movie saves w_i buffer minutes; the greedy must
  // prefer the movie with the larger w.
  std::vector<MovieAllocationBound> bounds = {
      {"small-w", 60.0, 0.1, 50},
      {"large-w", 60.0, 2.0, 20},
  };
  const auto result = AllocateStreamBudget(bounds, 12);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_streams, 12);
  EXPECT_EQ(result->movies[1].streams, 11);  // large-w filled first
  EXPECT_EQ(result->movies[0].streams, 1);
}

TEST(AllocateStreamBudgetTest, GreedyIsOptimalOnSmallInstances) {
  // Brute-force all allocations for 3 movies and compare total buffer.
  std::vector<MovieAllocationBound> bounds = {
      {"a", 50.0, 0.7, 6},
      {"b", 70.0, 1.3, 5},
      {"c", 40.0, 0.2, 8},
  };
  const int budget = 11;
  double best = 1e18;
  for (int na = 1; na <= 6; ++na) {
    for (int nb = 1; nb <= 5; ++nb) {
      for (int nc = 1; nc <= 8; ++nc) {
        if (na + nb + nc > budget) continue;
        const double total = (50.0 - na * 0.7) + (70.0 - nb * 1.3) +
                             (40.0 - nc * 0.2);
        best = std::min(best, total);
      }
    }
  }
  const auto result = AllocateStreamBudget(bounds, budget);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_buffer_minutes, best, 1e-9);
}

TEST(AllocateStreamBudgetTest, BudgetBelowMovieCountInfeasible) {
  std::vector<MovieAllocationBound> bounds = {
      {"a", 60.0, 1.0, 10},
      {"b", 60.0, 1.0, 10},
      {"c", 60.0, 1.0, 10},
  };
  EXPECT_TRUE(AllocateStreamBudget(bounds, 2).status().IsInfeasible());
}

TEST(AllocateStreamBudgetTest, RejectsEmptyAndInvalidBounds) {
  EXPECT_TRUE(AllocateStreamBudget({}, 10).status().IsInvalidArgument());
  std::vector<MovieAllocationBound> bad = {{"a", 60.0, 1.0, 0}};
  EXPECT_TRUE(AllocateStreamBudget(bad, 10).status().IsInvalidArgument());
}

TEST(PureBatchingStreamsTest, PaperExampleOneBaseline) {
  // 75/0.1 + 60/0.5 + 90/0.25 = 750 + 120 + 360 = 1230 streams.
  const auto movies = paper::Example1Movies();
  EXPECT_EQ(PureBatchingStreams(movies), 1230);
}

TEST(SizeSystemTest, RespectsStreamBudget) {
  std::vector<MovieSizingSpec> movies = {SmallSpec()};
  movies[0].min_hit_probability = 0.4;
  const auto unconstrained = SizeSystem(movies, 10000);
  ASSERT_TRUE(unconstrained.ok()) << unconstrained.status();
  const auto constrained = SizeSystem(movies, 5);
  ASSERT_TRUE(constrained.ok());
  EXPECT_LE(constrained->total_streams, 5);
  EXPECT_GE(constrained->total_buffer_minutes,
            unconstrained->total_buffer_minutes);
}

TEST(SizeSystemTest, BufferBudgetEnforced) {
  std::vector<MovieSizingSpec> movies = {SmallSpec()};
  const auto sized = SizeSystem(movies, 10000);
  ASSERT_TRUE(sized.ok());
  // A budget below the minimum required buffer is infeasible.
  EXPECT_TRUE(SizeSystem(movies, 10000,
                         sized->total_buffer_minutes * 0.5)
                  .status()
                  .IsInfeasible());
  // A budget above it succeeds.
  EXPECT_TRUE(
      SizeSystem(movies, 10000, sized->total_buffer_minutes + 1.0).ok());
}

TEST(SizingTest, PositionDensityPlumbsThrough) {
  // An abandonment-skewed position density changes the per-op geometry and
  // therefore the minimum-buffer choice for an FF-only movie.
  MovieSizingSpec spec = SmallSpec();
  const auto uniform = MinimumBufferChoice(spec);
  ASSERT_TRUE(uniform.ok());

  AnalyticHitModel::Options options;
  options.position_density = std::make_shared<TruncatedDistribution>(
      std::make_shared<ExponentialDistribution>(15.0), 0.0,
      spec.length_minutes);
  const auto skewed = MinimumBufferChoice(spec, options);
  ASSERT_TRUE(skewed.ok());
  // Early-position FF viewers see fewer end-releases, so P(hit|FF) drops
  // and the sizing must keep more buffer (fewer streams).
  EXPECT_LT(skewed->streams, uniform->streams);
  EXPECT_GT(skewed->buffer_minutes, uniform->buffer_minutes);
}

TEST(SizeSystemTest, EmptyMovieListRejected) {
  EXPECT_TRUE(SizeSystem({}, 100).status().IsInvalidArgument());
}

}  // namespace
}  // namespace vod
