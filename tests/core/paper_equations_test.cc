#include "core/paper_equations.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/hit_model.h"
#include "dist/exponential.h"
#include "dist/gamma.h"

namespace vod {
namespace {

PlaybackRates PaperRates() {
  PlaybackRates rates;
  rates.fast_forward = 3.0;
  rates.rewind = 3.0;
  return rates;
}

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

TEST(PaperMaxJumpIndexTest, MatchesEquation19) {
  // i ≤ ⌊(n(l + wα) − lα)/(lα)⌋ with w = (l − B)/n reduces to
  // ⌊(nl − Bα)/(lα)⌋.
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const double alpha = 1.5;
  const int expected = static_cast<int>(
      std::floor((40.0 * 120.0 - 80.0 * alpha) / (120.0 * alpha)));
  EXPECT_EQ(PaperMaxJumpIndex(layout, PaperRates()), expected);
  EXPECT_EQ(expected, 26);
}

TEST(PaperMaxJumpIndexTest, SmallSystems) {
  // One stream: no partitions to jump to.
  EXPECT_EQ(PaperMaxJumpIndex(MakeLayout(120.0, 1, 60.0), PaperRates()), 0);
  // Full buffer with one stream: bound is negative -> clamped to 0.
  EXPECT_EQ(PaperMaxJumpIndex(MakeLayout(120.0, 1, 120.0), PaperRates()), 0);
}

TEST(PaperEquationsTest, RejectsPureBatching) {
  EXPECT_TRUE(PaperFastForwardHitProbability(MakeLayout(120.0, 40, 0.0),
                                             PaperRates(),
                                             GammaDistribution(2.0, 4.0))
                  .status()
                  .IsInvalidArgument());
}

TEST(PaperEquationsTest, RejectsBadQuadratureOrder) {
  EXPECT_TRUE(PaperFastForwardHitProbability(MakeLayout(120.0, 40, 80.0),
                                             PaperRates(),
                                             GammaDistribution(2.0, 4.0), 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(PaperEquationsTest, ComponentsAreProbabilities) {
  const auto components = PaperFastForwardHitProbability(
      MakeLayout(120.0, 20, 80.0), PaperRates(), GammaDistribution(2.0, 4.0));
  ASSERT_TRUE(components.ok());
  EXPECT_GT(components->hit_within, 0.0);
  EXPECT_GT(components->end, 0.0);
  EXPECT_LE(components->Total(), 1.0 + 1e-9);
  for (double p : components->hit_jump_per_partition) {
    EXPECT_GE(p, -1e-12);
    EXPECT_LE(p, 1.0);
  }
}

TEST(PaperEquationsTest, JumpContributionsDecayWithDistance) {
  // With a light-tailed duration, far partitions are reached rarely.
  const auto components = PaperFastForwardHitProbability(
      MakeLayout(120.0, 40, 80.0), PaperRates(), GammaDistribution(2.0, 4.0));
  ASSERT_TRUE(components.ok());
  ASSERT_GE(components->hit_jump_per_partition.size(), 5u);
  const auto& jumps = components->hit_jump_per_partition;
  EXPECT_GT(jumps[0], jumps[3]);
  EXPECT_GT(jumps[3] + 1e-12, jumps.back());
}

// The headline cross-check: the literal paper equations and the interval
// engine are two independently derived implementations of P(hit | FF).
class PaperVsIntervalTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PaperVsIntervalTest, AgreeOnFastForward) {
  const int n = std::get<0>(GetParam());
  const double w = std::get<1>(GetParam());
  const auto layout = PartitionLayout::FromMaxWait(120.0, n, w);
  if (!layout.ok() || layout->is_pure_batching()) {
    GTEST_SKIP() << "infeasible (n, w)";
  }
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const auto model = AnalyticHitModel::Create(*layout, PaperRates());
  ASSERT_TRUE(model.ok());
  const auto fast = model->Breakdown(VcrOp::kFastForward, DistributionPtr(gamma));
  ASSERT_TRUE(fast.ok());
  const auto paper =
      PaperFastForwardHitProbability(*layout, PaperRates(), *gamma, 48);
  ASSERT_TRUE(paper.ok());
  EXPECT_NEAR(fast->total(), paper->Total(), 5e-4)
      << "n=" << n << " w=" << w;
  EXPECT_NEAR(fast->within, paper->hit_within, 5e-4);
  EXPECT_NEAR(fast->jump, paper->JumpTotal(), 5e-4);
  EXPECT_NEAR(fast->end, paper->end, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PaperVsIntervalTest,
    ::testing::Combine(::testing::Values(5, 10, 20, 40, 60),
                       ::testing::Values(0.5, 1.0, 2.0)));

TEST(PaperEquationsTest, ExponentialDurationAlsoAgrees) {
  const auto layout = MakeLayout(60.0, 24, 30.0);
  const auto exp_dist = std::make_shared<ExponentialDistribution>(5.0);
  const auto model = AnalyticHitModel::Create(layout, PaperRates());
  ASSERT_TRUE(model.ok());
  const auto fast =
      model->HitProbability(VcrOp::kFastForward, DistributionPtr(exp_dist));
  const auto paper =
      PaperFastForwardHitProbability(layout, PaperRates(), *exp_dist, 48);
  ASSERT_TRUE(fast.ok() && paper.ok());
  EXPECT_NEAR(*fast, paper->Total(), 5e-4);
}

TEST(PaperEquationsTest, FasterFastForwardLowersAlphaAndChangesHits) {
  // Sanity on the α dependence: α(5x) = 1.25 < α(3x) = 1.5, so the same
  // duration distribution covers more relative ground and jumps farther.
  const auto layout = MakeLayout(120.0, 40, 80.0);
  const GammaDistribution gamma(2.0, 4.0);
  PlaybackRates fast = PaperRates();
  fast.fast_forward = 5.0;
  const auto at3 =
      PaperFastForwardHitProbability(layout, PaperRates(), gamma, 32);
  const auto at5 = PaperFastForwardHitProbability(layout, fast, gamma, 32);
  ASSERT_TRUE(at3.ok() && at5.ok());
  // Faster FF: fewer own-partition hits (overshoots the window sooner).
  EXPECT_LT(at5->hit_within, at3->hit_within);
}

}  // namespace
}  // namespace vod
