#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

TEST(HardwareCostsTest, PaperExampleTwoValues) {
  // C_b = 60s · 4Mbps/8 · $25 = $750; C_n = $700/(5MB/s ÷ 0.5MB/s) = $70.
  const HardwareCosts costs;  // defaults are the 1997 parts list
  EXPECT_TRUE(costs.Validate().ok());
  EXPECT_DOUBLE_EQ(costs.BufferCostPerMovieMinute(), 750.0);
  EXPECT_DOUBLE_EQ(costs.StreamsPerDisk(), 10.0);
  EXPECT_DOUBLE_EQ(costs.StreamCost(), 70.0);
  // φ ≈ 11 in the paper (750/70 = 10.714...).
  EXPECT_NEAR(costs.Phi(), 10.714, 0.001);
  EXPECT_NEAR(std::round(costs.Phi()), 11.0, 0.5);
}

TEST(HardwareCostsTest, ValidationRejectsNonsense) {
  HardwareCosts bad;
  bad.disk_price_dollars = 0.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = HardwareCosts();
  bad.video_rate_mbits_per_sec = 0.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = HardwareCosts();
  bad.disk_transfer_mbytes_per_sec = 0.1;  // below one stream
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(AllocationCostTest, DollarAndNormalizedForms) {
  AllocationResult allocation;
  allocation.total_buffer_minutes = 100.0;
  allocation.total_streams = 600;
  const HardwareCosts costs;
  EXPECT_DOUBLE_EQ(AllocationCostDollars(allocation, costs),
                   750.0 * 100.0 + 70.0 * 600.0);
  EXPECT_DOUBLE_EQ(AllocationCostNormalized(allocation, 11.0),
                   11.0 * 100.0 + 600.0);
  // Eq. (23): dollars == C_n · (φ·ΣB + Σn) with φ = C_b/C_n.
  EXPECT_NEAR(AllocationCostDollars(allocation, costs),
              costs.StreamCost() *
                  AllocationCostNormalized(allocation, costs.Phi()),
              1e-9);
}

std::vector<MovieAllocationBound> TestBounds() {
  return {
      {"movie-1", 75.0, 0.1, 360},
      {"movie-2", 60.0, 0.5, 60},
      {"movie-3", 90.0, 0.25, 182},
  };
}

TEST(CostCurveTest, EndpointsAndMonotoneStreams) {
  const auto curve = ComputeCostCurve(TestBounds(), 11.0, 50);
  ASSERT_TRUE(curve.ok());
  ASSERT_GE(curve->size(), 2u);
  EXPECT_EQ(curve->front().total_streams, 3);    // one per movie
  EXPECT_EQ(curve->back().total_streams, 602);   // sum of maxima
  for (size_t i = 1; i < curve->size(); ++i) {
    EXPECT_GT((*curve)[i].total_streams, (*curve)[i - 1].total_streams);
    // Buffer shrinks as streams grow.
    EXPECT_LE((*curve)[i].total_buffer_minutes,
              (*curve)[i - 1].total_buffer_minutes + 1e-9);
  }
}

TEST(CostCurveTest, HighPhiMinimizesAtMaxStreams) {
  // φ = 11 > 1/w for every movie: buffer dominates, so the cheapest point is
  // the max-stream end (the paper's Example 2 observation).
  const auto curve = ComputeCostCurve(TestBounds(), 11.0, 100);
  ASSERT_TRUE(curve.ok());
  const CostCurvePoint best = MinimumCostPoint(*curve);
  EXPECT_EQ(best.total_streams, curve->back().total_streams);
}

TEST(CostCurveTest, LowPhiMovesMinimumToInterior) {
  // φ = 3: movies with w < 1/3 (movie-1 at 0.1, movie-3 at 0.25) now cost
  // more to serve with streams than with buffer; the optimum keeps their
  // streams minimal but still maxes movie-2 (w = 0.5 > 1/3).
  const auto curve = ComputeCostCurve(TestBounds(), 3.0, 600);
  ASSERT_TRUE(curve.ok());
  const CostCurvePoint best = MinimumCostPoint(*curve);
  EXPECT_LT(best.total_streams, curve->back().total_streams);
  EXPECT_GT(best.total_streams, curve->front().total_streams);
  // The interior optimum: 1 + 60 + 1 streams.
  EXPECT_NEAR(best.total_streams, 62, 8);
}

TEST(CostCurveTest, CostValuesMatchDefinition) {
  const double phi = 11.0;
  const auto curve = ComputeCostCurve(TestBounds(), phi, 10);
  ASSERT_TRUE(curve.ok());
  for (const auto& point : *curve) {
    EXPECT_NEAR(point.normalized_cost,
                phi * point.total_buffer_minutes + point.total_streams,
                1e-9);
  }
}

TEST(CostCurveTest, RejectsBadArguments) {
  EXPECT_TRUE(ComputeCostCurve(TestBounds(), -1.0).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ComputeCostCurve(TestBounds(), 11.0, 1).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ComputeCostCurve({}, 11.0).status().IsInvalidArgument());
}

TEST(CostCurveTest, CurveIsConvexPiecewiseLinear) {
  // The greedy allocator hands streams out in descending w order, so the
  // per-stream cost increment 1 − φ·w is non-decreasing along the curve:
  // the normalized cost is convex in the total stream count.
  const auto curve = ComputeCostCurve(TestBounds(), 6.0, 600);
  ASSERT_TRUE(curve.ok());
  ASSERT_GE(curve->size(), 3u);
  double previous_slope = -1e18;
  for (size_t i = 1; i < curve->size(); ++i) {
    const double dn = (*curve)[i].total_streams -
                      (*curve)[i - 1].total_streams;
    const double slope =
        ((*curve)[i].normalized_cost - (*curve)[i - 1].normalized_cost) / dn;
    EXPECT_GE(slope, previous_slope - 1e-9) << "i=" << i;
    previous_slope = slope;
  }
}

TEST(MinimumCostPointTest, PicksGlobalMinimum) {
  std::vector<CostCurvePoint> curve = {
      {10, 50.0, 500.0},
      {20, 30.0, 350.0},
      {30, 20.0, 380.0},
  };
  const CostCurvePoint best = MinimumCostPoint(curve);
  EXPECT_EQ(best.total_streams, 20);
}

TEST(MinimumCostPointTest, TieBreaksTowardFewerStreams) {
  std::vector<CostCurvePoint> curve = {
      {10, 50.0, 300.0},
      {20, 30.0, 300.0},
  };
  EXPECT_EQ(MinimumCostPoint(curve).total_streams, 10);
}

TEST(ModernHardwareScenarioTest, CheapMemoryFlipsTheTradeoff) {
  // With far cheaper memory per MB (relative to streams), phi drops below
  // any 1/w and buffering becomes the dominant strategy: the optimum wants
  // *few* streams.
  HardwareCosts modern;
  modern.memory_price_per_mbyte = 0.05;
  modern.disk_price_dollars = 100.0;
  modern.disk_transfer_mbytes_per_sec = 5.0;  // keep the 1997 bandwidth
  ASSERT_TRUE(modern.Validate().ok());
  EXPECT_LT(modern.Phi(), 0.2);
  const auto curve = ComputeCostCurve(TestBounds(), modern.Phi(), 600);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(MinimumCostPoint(*curve).total_streams,
            curve->front().total_streams);
}

}  // namespace
}  // namespace vod
