#include "core/hit_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/reference_model.h"
#include "dist/deterministic.h"
#include "dist/exponential.h"
#include "dist/gamma.h"
#include "dist/transformed.h"
#include "dist/uniform.h"

namespace vod {
namespace {

PlaybackRates PaperRates() {
  PlaybackRates rates;
  rates.fast_forward = 3.0;
  rates.rewind = 3.0;
  return rates;
}

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

AnalyticHitModel MakeModel(const PartitionLayout& layout) {
  auto model = AnalyticHitModel::Create(layout, PaperRates());
  EXPECT_TRUE(model.ok());
  return *model;
}

// ---- CompiledDuration ----------------------------------------------------

TEST(CompiledDurationTest, ValidatesInputs) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  EXPECT_TRUE(CompiledDuration::Create(nullptr, 120.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CompiledDuration::Create(gamma, -1.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CompiledDuration::Create(gamma, 120.0, 4)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CompiledDuration::Create(gamma, 120.0, 4096, 0.7)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CompiledDuration::Create(gamma, 120.0).ok());
}

TEST(CompiledDurationTest, ClipAveragesMatchClosedForm) {
  // Uniform positions: E[F(min(b, c))] = [Fint(b) + (l − b)F(b)]/l with
  // Fint(b) = ∫_0^b (1 − e^{-t/m}) dt = b − m(1 − e^{-b/m}) for Exp(m).
  const double m = 5.0;
  const double l = 60.0;
  const auto exp_dist = std::make_shared<ExponentialDistribution>(m);
  const auto compiled = CompiledDuration::Create(exp_dist, l);
  ASSERT_TRUE(compiled.ok());
  for (double b : {0.5, 2.0, 10.0, 30.0, 60.0}) {
    const double fint = b - m * (1.0 - std::exp(-b / m));
    const double expected =
        (fint + (l - b) * exp_dist->Cdf(b)) / l;
    // Under uniform positions the FF and RW clips coincide by symmetry.
    EXPECT_NEAR(compiled->FastForwardClipAverage(b), expected, 1e-7)
        << "b=" << b;
    EXPECT_NEAR(compiled->RewindClipAverage(b), expected, 1e-7) << "b=" << b;
  }
  // End release: E[1 − F(l − V_c)] = 1 − Fint(l)/l.
  const double fint_l = l - m * (1.0 - std::exp(-l / m));
  EXPECT_NEAR(compiled->EndReleaseProbability(), 1.0 - fint_l / l, 1e-7);
  // Beyond l the averages saturate (extra duration mass lands at the end).
  EXPECT_NEAR(compiled->FastForwardClipAverage(200.0),
              1.0 - compiled->EndReleaseProbability(), 1e-9);
}

TEST(CompiledDurationTest, BoundedSupportTailQuantile) {
  const auto uni = std::make_shared<UniformDistribution>(0.0, 10.0);
  const auto compiled = CompiledDuration::Create(uni, 120.0);
  ASSERT_TRUE(compiled.ok());
  EXPECT_DOUBLE_EQ(compiled->tail_quantile(), 10.0);
}

TEST(CompiledDurationTest, RejectsNegativeSupport) {
  const auto uni = std::make_shared<UniformDistribution>(-5.0, 5.0);
  EXPECT_TRUE(
      CompiledDuration::Create(uni, 120.0).status().IsInvalidArgument());
}

// ---- model vs brute-force reference, parameterized -----------------------

struct ModelCase {
  std::string label;
  double l;
  int n;
  double b;
  DistributionPtr duration;
};

std::vector<ModelCase> ModelCases() {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const auto exp5 = std::make_shared<ExponentialDistribution>(5.0);
  const auto exp2 = std::make_shared<ExponentialDistribution>(2.0);
  const auto uni = std::make_shared<UniformDistribution>(0.0, 12.0);
  return {
      {"gamma_l120_n20_B100", 120.0, 20, 100.0, gamma},
      {"gamma_l120_n40_B80", 120.0, 40, 80.0, gamma},
      {"gamma_l120_n100_B20", 120.0, 100, 20.0, gamma},
      {"exp5_l60_n30_B30", 60.0, 30, 30.0, exp5},
      {"exp2_l90_n60_B45", 90.0, 60, 45.0, exp2},
      {"uniform_l120_n40_B60", 120.0, 40, 60.0, uni},
      {"tinybuffer_l120_n10_B5", 120.0, 10, 5.0, gamma},
      {"fullbuffer_l60_n12_B60", 60.0, 12, 60.0, exp5},
  };
}

class HitModelVsReferenceTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(HitModelVsReferenceTest, AgreesWithBruteForceQuadrature) {
  const ModelCase& c = GetParam();
  const PartitionLayout layout = MakeLayout(c.l, c.n, c.b);
  const AnalyticHitModel model = MakeModel(layout);
  for (VcrOp op : kAllVcrOps) {
    const auto fast = model.HitProbability(op, c.duration);
    ASSERT_TRUE(fast.ok()) << fast.status();
    const auto reference =
        ReferenceHitProbability(op, layout, PaperRates(), *c.duration);
    ASSERT_TRUE(reference.ok()) << reference.status();
    EXPECT_NEAR(*fast, *reference, 2e-4)
        << c.label << " op=" << VcrOpName(op);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HitModelVsReferenceTest, ::testing::ValuesIn(ModelCases()),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      return info.param.label;
    });

// ---- golden regression pins ------------------------------------------------

TEST(HitModelTest, PinnedFig7ConfigValues) {
  // Deterministic quadrature values at the paper's Figure-7 configurations
  // (w = 1), pinned to guard against silent numeric regressions. These are
  // the numbers EXPERIMENTS.md reports.
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  struct Pin {
    int n;
    VcrOp op;
    double expected;
  };
  const Pin pins[] = {
      {20, VcrOp::kFastForward, 0.8374}, {20, VcrOp::kRewind, 0.7755},
      {20, VcrOp::kPause, 0.8296},       {40, VcrOp::kFastForward, 0.6818},
      {40, VcrOp::kRewind, 0.6203},      {40, VcrOp::kPause, 0.6633},
      {100, VcrOp::kFastForward, 0.2203}, {100, VcrOp::kRewind, 0.1551},
      {100, VcrOp::kPause, 0.1658},
  };
  for (const Pin& pin : pins) {
    const auto layout = PartitionLayout::FromMaxWait(120.0, pin.n, 1.0);
    ASSERT_TRUE(layout.ok());
    const AnalyticHitModel model = MakeModel(*layout);
    const auto p = model.HitProbability(pin.op, gamma);
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(*p, pin.expected, 5e-4)
        << "n=" << pin.n << " op=" << VcrOpName(pin.op);
  }
}

TEST(HitModelTest, PinnedMixedValue) {
  // Figure 7(d) at n = 40, w = 1.
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  ASSERT_TRUE(layout.ok());
  const AnalyticHitModel model = MakeModel(*layout);
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const auto p = model.HitProbability(VcrMix::PaperMixed(),
                                      VcrDurations::AllSame(gamma));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.6584, 5e-4);
}

// ---- structural properties ------------------------------------------------

TEST(HitModelTest, ProbabilitiesAreInUnitInterval) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  for (int n : {5, 20, 60, 119}) {
    const PartitionLayout layout = MakeLayout(120.0, n, 120.0 - n * 1.0);
    const AnalyticHitModel model = MakeModel(layout);
    for (VcrOp op : kAllVcrOps) {
      const auto p = model.HitProbability(op, gamma);
      ASSERT_TRUE(p.ok());
      EXPECT_GE(*p, 0.0) << "n=" << n << " " << VcrOpName(op);
      EXPECT_LE(*p, 1.0 + 1e-12) << "n=" << n << " " << VcrOpName(op);
    }
  }
}

TEST(HitModelTest, HitProbabilityDecreasesWithStreamsAtFixedWait) {
  // Fixed w: more streams ⇒ less buffer ⇒ lower P(hit). (Figure 7 shape.)
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  for (VcrOp op : kAllVcrOps) {
    double previous = 2.0;
    for (int n : {10, 20, 40, 60, 80, 100}) {
      const auto layout = PartitionLayout::FromMaxWait(120.0, n, 1.0);
      ASSERT_TRUE(layout.ok());
      const AnalyticHitModel model = MakeModel(*layout);
      const auto p = model.HitProbability(op, gamma);
      ASSERT_TRUE(p.ok());
      EXPECT_LT(*p, previous) << "n=" << n << " " << VcrOpName(op);
      previous = *p;
    }
  }
}

TEST(HitModelTest, HitProbabilityIncreasesWithBufferAtFixedStreams) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  for (VcrOp op : kAllVcrOps) {
    double previous = -1.0;
    for (double b : {10.0, 30.0, 60.0, 90.0, 120.0}) {
      const PartitionLayout layout = MakeLayout(120.0, 30, b);
      const AnalyticHitModel model = MakeModel(layout);
      const auto p = model.HitProbability(op, gamma);
      ASSERT_TRUE(p.ok());
      EXPECT_GT(*p, previous) << "B=" << b << " " << VcrOpName(op);
      previous = *p;
    }
  }
}

TEST(HitModelTest, PureBatchingLeavesOnlyEndRelease) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const PartitionLayout layout = MakeLayout(120.0, 40, 0.0);
  const AnalyticHitModel model = MakeModel(layout);
  const auto ff = model.Breakdown(VcrOp::kFastForward, gamma);
  ASSERT_TRUE(ff.ok());
  EXPECT_DOUBLE_EQ(ff->within, 0.0);
  EXPECT_DOUBLE_EQ(ff->jump, 0.0);
  EXPECT_GT(ff->end, 0.0);
  for (VcrOp op : {VcrOp::kRewind, VcrOp::kPause}) {
    const auto p = model.HitProbability(op, gamma);
    ASSERT_TRUE(p.ok());
    EXPECT_DOUBLE_EQ(*p, 0.0) << VcrOpName(op);
  }
}

TEST(HitModelTest, FullBufferPauseAlwaysHits) {
  const auto exp_dist = std::make_shared<ExponentialDistribution>(5.0);
  const PartitionLayout layout = MakeLayout(120.0, 40, 120.0);
  const AnalyticHitModel model = MakeModel(layout);
  const auto p = model.HitProbability(VcrOp::kPause, exp_dist);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1.0, 1e-9);
}

TEST(HitModelTest, FullBufferFastForwardAlwaysReleases) {
  // With B = l every in-movie resume hits, and overshooting reaches the end:
  // total release probability is 1.
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const PartitionLayout layout = MakeLayout(120.0, 40, 120.0);
  const AnalyticHitModel model = MakeModel(layout);
  const auto breakdown = model.Breakdown(VcrOp::kFastForward, gamma);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_NEAR(breakdown->total(), 1.0, 1e-6);
  EXPECT_GT(breakdown->end, 0.0);
}

TEST(HitModelTest, EndReleaseMatchesClosedFormForExponential) {
  // P(end) = 1 − Fint(l)/l with Fint(l) = l − m(1 − e^{-l/m}).
  const double m = 5.0;
  const double l = 60.0;
  const auto exp_dist = std::make_shared<ExponentialDistribution>(m);
  const PartitionLayout layout = MakeLayout(l, 10, 30.0);
  const AnalyticHitModel model = MakeModel(layout);
  const auto breakdown = model.Breakdown(VcrOp::kFastForward, exp_dist);
  ASSERT_TRUE(breakdown.ok());
  const double expected = m * (1.0 - std::exp(-l / m)) / l;
  EXPECT_NEAR(breakdown->end, expected, 1e-7);
}

TEST(HitModelTest, EndReleaseIndependentOfBuffer) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const AnalyticHitModel small = MakeModel(MakeLayout(120.0, 40, 20.0));
  const AnalyticHitModel big = MakeModel(MakeLayout(120.0, 40, 100.0));
  const auto a = small.Breakdown(VcrOp::kFastForward, gamma);
  const auto b = big.Breakdown(VcrOp::kFastForward, gamma);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->end, b->end, 1e-12);
}

TEST(HitModelTest, IncludeEndReleaseOptionRemovesEndTerm) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  HitModelOptions options;
  options.include_end_release = false;
  const auto model = AnalyticHitModel::Create(layout, PaperRates(), options);
  ASSERT_TRUE(model.ok());
  const auto breakdown = model->Breakdown(VcrOp::kFastForward, gamma);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_DOUBLE_EQ(breakdown->end, 0.0);
  EXPECT_GT(breakdown->within + breakdown->jump, 0.0);
}

TEST(HitModelTest, RewindAndPauseHaveNoEndTerm) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const AnalyticHitModel model = MakeModel(layout);
  for (VcrOp op : {VcrOp::kRewind, VcrOp::kPause}) {
    const auto breakdown = model.Breakdown(op, gamma);
    ASSERT_TRUE(breakdown.ok());
    EXPECT_DOUBLE_EQ(breakdown->end, 0.0) << VcrOpName(op);
  }
}

TEST(HitModelTest, DeterministicShortSkipAlwaysHitsOwnPartition) {
  // A FF so short it stays within the own window for almost every (V_c, d):
  // duration x0 hits iff x0 <= αd, so P(within) = 1 − x0/(αW) for x0 < αW.
  const PartitionLayout layout = MakeLayout(120.0, 30, 90.0);  // W = 3
  const AnalyticHitModel model = MakeModel(layout);
  const double x0 = 0.9;
  const auto det = std::make_shared<DeterministicDistribution>(x0);
  const auto breakdown = model.Breakdown(VcrOp::kFastForward, det);
  ASSERT_TRUE(breakdown.ok());
  const double alpha = 1.5;
  // Ignore the O(x0/l) end-of-movie correction.
  EXPECT_NEAR(breakdown->within, 1.0 - x0 / (alpha * layout.window()), 1e-2);
}

TEST(HitModelTest, MixedEqualsConvexCombination) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const AnalyticHitModel model = MakeModel(layout);
  const VcrMix mix = VcrMix::PaperMixed();
  const auto mixed =
      model.HitProbability(mix, VcrDurations::AllSame(gamma));
  ASSERT_TRUE(mixed.ok());
  double expected = 0.0;
  for (VcrOp op : kAllVcrOps) {
    const auto p = model.HitProbability(op, gamma);
    ASSERT_TRUE(p.ok());
    expected += mix.Probability(op) * *p;
  }
  EXPECT_NEAR(*mixed, expected, 1e-12);
}

TEST(HitModelTest, MixedSkipsZeroProbabilityOps) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const AnalyticHitModel model = MakeModel(layout);
  VcrDurations durations;  // only FF provided
  durations.fast_forward = gamma;
  const auto p =
      model.HitProbability(VcrMix::Only(VcrOp::kFastForward), durations);
  EXPECT_TRUE(p.ok());
  // But a mix needing RW without a distribution fails loudly.
  const auto bad = model.HitProbability(VcrMix::PaperMixed(), durations);
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(HitModelTest, MismatchedCompiledMovieLengthRejected) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const auto compiled = CompiledDuration::Create(gamma, 60.0);
  ASSERT_TRUE(compiled.ok());
  const AnalyticHitModel model = MakeModel(MakeLayout(120.0, 40, 80.0));
  EXPECT_TRUE(model.HitProbability(VcrOp::kFastForward, *compiled)
                  .status()
                  .IsInvalidArgument());
}

TEST(HitModelTest, InvalidMixRejected) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const AnalyticHitModel model = MakeModel(MakeLayout(120.0, 40, 80.0));
  VcrMix mix{0.5, 0.2, 0.2};  // sums to 0.9
  EXPECT_TRUE(model.HitProbability(mix, VcrDurations::AllSame(gamma))
                  .status()
                  .IsInvalidArgument());
}

TEST(HitModelTest, InvalidRatesRejectedAtCreate) {
  PlaybackRates bad;
  bad.fast_forward = 0.5;
  EXPECT_TRUE(AnalyticHitModel::Create(MakeLayout(120.0, 40, 80.0), bad)
                  .status()
                  .IsInvalidArgument());
}

TEST(HitModelTest, QuadratureOrderConverges) {
  const auto gamma = std::make_shared<GammaDistribution>(2.0, 4.0);
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  HitModelOptions coarse;
  coarse.d_quadrature_points = 8;
  HitModelOptions fine;
  fine.d_quadrature_points = 64;
  const auto model_coarse =
      AnalyticHitModel::Create(layout, PaperRates(), coarse);
  const auto model_fine = AnalyticHitModel::Create(layout, PaperRates(), fine);
  ASSERT_TRUE(model_coarse.ok() && model_fine.ok());
  for (VcrOp op : kAllVcrOps) {
    const auto a = model_coarse->HitProbability(op, gamma);
    const auto b = model_fine->HitProbability(op, gamma);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_NEAR(*a, *b, 5e-4) << VcrOpName(op);
  }
}

TEST(HitModelTest, NonPaperRewindRatesStillMatchReference) {
  // The γ scaling must stay consistent with the brute-force reference for
  // rewind speeds other than the paper's 3x. (Note: P(hit|RW) is *not*
  // monotone in R_RW — stretching the hit windows by γ shifts probability
  // mass both into and out of them.)
  const auto gamma_dist = std::make_shared<GammaDistribution>(2.0, 4.0);
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  for (double r_rw : {0.5, 1.0, 8.0}) {
    PlaybackRates rates = PaperRates();
    rates.rewind = r_rw;
    const auto model = AnalyticHitModel::Create(layout, rates);
    ASSERT_TRUE(model.ok());
    const auto fast = model->HitProbability(VcrOp::kRewind, gamma_dist);
    ASSERT_TRUE(fast.ok());
    const auto reference =
        ReferenceHitProbability(VcrOp::kRewind, layout, rates, *gamma_dist);
    ASSERT_TRUE(reference.ok());
    EXPECT_NEAR(*fast, *reference, 2e-4) << "R_RW=" << r_rw;
  }
}

TEST(HitModelTest, PauseWrapEquivalenceModuloMovieLength) {
  // Paper §2.1: "a pause of x > l is equivalent to a pause of x mod l". The
  // window pattern is periodic with period T = l/n, which divides l, so
  // folding the duration distribution modulo l must not change P(hit|PAU).
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const AnalyticHitModel model = MakeModel(layout);
  // A long-pause distribution with substantial mass beyond l.
  const auto raw = std::make_shared<ExponentialDistribution>(90.0);
  const auto wrapped = std::make_shared<WrappedDistribution>(
      raw, layout.movie_length());
  const auto p_raw = model.HitProbability(VcrOp::kPause, raw);
  const auto p_wrapped = model.HitProbability(VcrOp::kPause, wrapped);
  ASSERT_TRUE(p_raw.ok() && p_wrapped.ok());
  EXPECT_NEAR(*p_raw, *p_wrapped, 1e-6);
}

TEST(HitModelTest, RandomizedConfigsAgreeWithReference) {
  // Fuzz-style sweep: random layouts, rates, and duration distributions;
  // the fast engine must track the brute-force quadrature everywhere.
  Rng rng(20240707);
  for (int trial = 0; trial < 12; ++trial) {
    const double l = rng.Uniform(30.0, 200.0);
    const int n = 2 + static_cast<int>(rng.UniformInt(60));
    const double b = rng.Uniform(0.05, 0.95) * l;
    const PartitionLayout layout = MakeLayout(l, n, b);
    PlaybackRates rates;
    rates.fast_forward = rng.Uniform(1.5, 8.0);
    rates.rewind = rng.Uniform(0.5, 8.0);
    DistributionPtr dist;
    switch (rng.UniformInt(3)) {
      case 0:
        dist = std::make_shared<ExponentialDistribution>(
            rng.Uniform(1.0, 20.0));
        break;
      case 1:
        dist = std::make_shared<GammaDistribution>(rng.Uniform(0.5, 5.0),
                                                   rng.Uniform(0.5, 8.0));
        break;
      default:
        dist = std::make_shared<UniformDistribution>(0.0,
                                                     rng.Uniform(2.0, l));
        break;
    }
    const auto model = AnalyticHitModel::Create(layout, rates);
    ASSERT_TRUE(model.ok());
    for (VcrOp op : kAllVcrOps) {
      const auto fast = model->HitProbability(op, dist);
      const auto reference =
          ReferenceHitProbability(op, layout, rates, *dist);
      ASSERT_TRUE(fast.ok() && reference.ok());
      ASSERT_NEAR(*fast, *reference, 5e-4)
          << "trial=" << trial << " op=" << VcrOpName(op) << " "
          << layout.ToString() << " dist=" << dist->ToString();
    }
  }
}

TEST(HitModelTest, PauseIsRewindLimitAsRateGrowsLarge) {
  const auto gamma_dist = std::make_shared<GammaDistribution>(2.0, 4.0);
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  PlaybackRates fast = PaperRates();
  fast.rewind = 1e7;
  const auto model = AnalyticHitModel::Create(layout, fast);
  ASSERT_TRUE(model.ok());
  const auto rw = model->HitProbability(VcrOp::kRewind, gamma_dist);
  const auto pau = model->HitProbability(VcrOp::kPause, gamma_dist);
  ASSERT_TRUE(rw.ok() && pau.ok());
  // Not identical: RW still misses past the movie start while PAU wraps,
  // but the geometric scaling coincides; the gap is the start-boundary mass.
  EXPECT_NEAR(*rw, *pau, 0.08);
  EXPECT_LE(*rw, *pau + 1e-9);
}

}  // namespace
}  // namespace vod
