#include "core/hit_intervals.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

PartitionLayout MakeLayout(double l, int n, double b) {
  auto layout = PartitionLayout::FromBuffer(l, n, b);
  EXPECT_TRUE(layout.ok());
  return *layout;
}

PlaybackRates PaperRates() {
  PlaybackRates rates;
  rates.fast_forward = 3.0;
  rates.rewind = 3.0;
  return rates;
}

TEST(CatchUpFactorsTest, PaperEquationOne) {
  const PlaybackRates rates = PaperRates();
  EXPECT_DOUBLE_EQ(rates.Alpha(), 1.5);   // 3/(3-1)
  EXPECT_DOUBLE_EQ(rates.Gamma(), 0.75);  // 3/(1+3)
}

TEST(CatchUpFactorsTest, LimitsOfGamma) {
  PlaybackRates fast;
  fast.rewind = 1e9;
  EXPECT_NEAR(fast.Gamma(), 1.0, 1e-8);  // PAU is the R_RW → ∞ limit
  PlaybackRates slow;
  slow.rewind = 0.5;
  slow.fast_forward = 3.0;
  EXPECT_NEAR(slow.Gamma(), 1.0 / 3.0, 1e-15);
}

TEST(RatesValidationTest, Rules) {
  PlaybackRates ok = PaperRates();
  EXPECT_TRUE(ok.Validate().ok());
  PlaybackRates slow_ff = ok;
  slow_ff.fast_forward = 1.0;  // FF must exceed playback
  EXPECT_TRUE(slow_ff.Validate().IsInvalidArgument());
  PlaybackRates bad_pb = ok;
  bad_pb.playback = 0.0;
  EXPECT_TRUE(bad_pb.Validate().IsInvalidArgument());
  PlaybackRates bad_rw = ok;
  bad_rw.rewind = -1.0;
  EXPECT_TRUE(bad_rw.Validate().IsInvalidArgument());
}

TEST(HitIntervalsTest, FastForwardOwnPartitionMatchesEq3) {
  // l=120, n=40, B=80: T=3, W=2. d = 1.5.
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const IntervalSet set = BuildHitIntervals(
      VcrOp::kFastForward, layout, PaperRates(), 1.5, 4.0);
  // Own window: x ∈ [0, αd] = [0, 2.25]; next window starts at
  // α(T + d − W) = 1.5 · 2.5 = 3.75.
  ASSERT_GE(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.intervals()[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(set.intervals()[0].hi, 2.25);
  EXPECT_DOUBLE_EQ(set.intervals()[1].lo, 3.75);
  EXPECT_DOUBLE_EQ(set.intervals()[1].hi, 1.5 * (3.0 + 1.5));
}

TEST(HitIntervalsTest, FastForwardJumpSpacingIsAlphaTimesPeriod) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const IntervalSet set = BuildHitIntervals(
      VcrOp::kFastForward, layout, PaperRates(), 1.0, 30.0);
  const double alpha = 1.5;
  const double period = 3.0;
  for (size_t i = 1; i + 1 < set.size(); ++i) {
    const double spacing = set.intervals()[i + 1].lo - set.intervals()[i].lo;
    EXPECT_NEAR(spacing, alpha * period, 1e-12);
  }
}

TEST(HitIntervalsTest, RewindOwnPartitionUsesGamma) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const double d = 0.5;
  const IntervalSet set =
      BuildHitIntervals(VcrOp::kRewind, layout, PaperRates(), d, 10.0);
  // Own window (j=0): x ∈ [0, γ(W − d)] = [0, 0.75 · 1.5].
  ASSERT_GE(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.intervals()[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(set.intervals()[0].hi, 0.75 * 1.5);
  // j=1: γ[T − d, T − d + W] = 0.75 · [2.5, 4.5].
  EXPECT_DOUBLE_EQ(set.intervals()[1].lo, 0.75 * 2.5);
  EXPECT_DOUBLE_EQ(set.intervals()[1].hi, 0.75 * 4.5);
}

TEST(HitIntervalsTest, PauseIsGammaOneGeometry) {
  // PAU intervals equal RW intervals with γ = 1.
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  PlaybackRates unit_rw = PaperRates();
  const double d = 0.7;
  const IntervalSet pause =
      BuildHitIntervals(VcrOp::kPause, layout, unit_rw, d, 20.0);
  ASSERT_GE(pause.size(), 2u);
  EXPECT_DOUBLE_EQ(pause.intervals()[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(pause.intervals()[0].hi, 2.0 - d);   // W − d
  EXPECT_DOUBLE_EQ(pause.intervals()[1].lo, 3.0 - d);   // T − d
  EXPECT_DOUBLE_EQ(pause.intervals()[1].hi, 5.0 - d);   // T − d + W
}

TEST(HitIntervalsTest, PureBatchingHasNoIntervals) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 0.0);
  for (VcrOp op : kAllVcrOps) {
    EXPECT_TRUE(
        BuildHitIntervals(op, layout, PaperRates(), 0.0, 120.0).empty());
  }
}

TEST(HitIntervalsTest, FullBufferCoversEverything) {
  // B = l ⇒ W = T: windows tile the whole axis; every duration hits.
  const PartitionLayout layout = MakeLayout(120.0, 40, 120.0);
  for (VcrOp op : kAllVcrOps) {
    const IntervalSet set =
        BuildHitIntervals(op, layout, PaperRates(), 1.0, 100.0);
    ASSERT_EQ(set.size(), 1u) << VcrOpName(op);
    EXPECT_DOUBLE_EQ(set.intervals()[0].lo, 0.0);
    EXPECT_GE(set.intervals()[0].hi, 100.0);
  }
}

TEST(HitIntervalsTest, RespectsEnumerationCap) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  const IntervalSet small = BuildHitIntervals(
      VcrOp::kFastForward, layout, PaperRates(), 1.0, 5.0);
  const IntervalSet large = BuildHitIntervals(
      VcrOp::kFastForward, layout, PaperRates(), 1.0, 50.0);
  EXPECT_LT(small.size(), large.size());
  // Every interval of `small` appears in `large` (same prefix).
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small.intervals()[i], large.intervals()[i]);
  }
}

TEST(HitIntervalsTest, BoundaryLeadDistances) {
  const PartitionLayout layout = MakeLayout(120.0, 40, 80.0);
  // d = 0: FF own-window degenerates to measure zero (the viewer sits at
  // the leading edge).
  const IntervalSet ff0 = BuildHitIntervals(
      VcrOp::kFastForward, layout, PaperRates(), 0.0, 10.0);
  EXPECT_DOUBLE_EQ(ff0.intervals()[0].length(), 0.0);
  // d = W: RW own-window degenerates (at the trailing edge).
  const IntervalSet rw_w = BuildHitIntervals(
      VcrOp::kRewind, layout, PaperRates(), layout.window(), 10.0);
  EXPECT_DOUBLE_EQ(rw_w.intervals()[0].length(), 0.0);
  // d = 0 RW: own window has full width γW.
  const IntervalSet rw0 =
      BuildHitIntervals(VcrOp::kRewind, layout, PaperRates(), 0.0, 10.0);
  EXPECT_DOUBLE_EQ(rw0.intervals()[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(rw0.intervals()[0].hi, 0.75 * layout.window());
}

TEST(HitIntervalsTest, IntervalsSortedAndDisjoint) {
  const PartitionLayout layout = MakeLayout(90.0, 30, 45.0);
  for (VcrOp op : kAllVcrOps) {
    const IntervalSet set =
        BuildHitIntervals(op, layout, PaperRates(), 0.8, 60.0);
    for (size_t i = 1; i < set.size(); ++i) {
      EXPECT_GT(set.intervals()[i].lo, set.intervals()[i - 1].hi)
          << VcrOpName(op);
    }
  }
}

}  // namespace
}  // namespace vod
