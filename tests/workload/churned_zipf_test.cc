#include "workload/churned_zipf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace vod {
namespace {

ChurnedZipfOptions BaseOptions() {
  ChurnedZipfOptions options;
  options.num_titles = 50;
  options.exponent = 1.0;
  options.epoch_minutes = 100.0;
  options.num_epochs = 12;
  options.swap_fraction = 0.2;
  options.inject_every_epochs = 3;
  options.churn_seed = 42;
  return options;
}

TEST(ChurnedZipfTest, EveryEpochIsAPermutationOfACatalog) {
  const auto churned = ChurnedZipf::Create(BaseOptions());
  ASSERT_TRUE(churned.ok());
  for (int epoch = 0; epoch < churned->num_epochs(); ++epoch) {
    std::set<int32_t> seen;
    for (int rank = 1; rank <= 50; ++rank) {
      seen.insert(churned->TitleAtRank(epoch, rank));
    }
    // 50 distinct titles per epoch — churn and injection never duplicate or
    // drop a rank.
    EXPECT_EQ(seen.size(), 50u) << "epoch " << epoch;
    for (int32_t title : seen) {
      EXPECT_GE(title, 0);
      EXPECT_LT(title, churned->TotalTitles());
      EXPECT_EQ(churned->TitleAtRank(epoch, churned->RankOf(epoch, title)),
                title);
    }
  }
}

TEST(ChurnedZipfTest, ZeroChurnKeepsTheIdentityMapForever) {
  ChurnedZipfOptions options = BaseOptions();
  options.swap_fraction = 0.0;
  options.inject_every_epochs = 0;
  const auto churned = ChurnedZipf::Create(options);
  ASSERT_TRUE(churned.ok());
  EXPECT_EQ(churned->TotalTitles(), 50);
  for (int epoch = 0; epoch < churned->num_epochs(); ++epoch) {
    for (int rank = 1; rank <= 50; ++rank) {
      EXPECT_EQ(churned->TitleAtRank(epoch, rank), rank - 1);
    }
  }
}

TEST(ChurnedZipfTest, ChurnActuallyMovesRanksAcrossEpochs) {
  const auto churned = ChurnedZipf::Create(BaseOptions());
  ASSERT_TRUE(churned.ok());
  int moved = 0;
  for (int rank = 1; rank <= 50; ++rank) {
    if (churned->TitleAtRank(0, rank) !=
        churned->TitleAtRank(churned->num_epochs() - 1, rank)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 10);
}

TEST(ChurnedZipfTest, InjectionAddsNewTitlesAtRankOne) {
  const auto churned = ChurnedZipf::Create(BaseOptions());
  ASSERT_TRUE(churned.ok());
  // 12 epochs, injection at epochs 3, 6, 9 -> 3 new titles.
  EXPECT_EQ(churned->TotalTitles(), 53);
  EXPECT_EQ(churned->TitleAtRank(3, 1), 50);
  EXPECT_EQ(churned->TitleAtRank(6, 1), 51);
  EXPECT_EQ(churned->TitleAtRank(9, 1), 52);
  // The injected title was not in the catalog the epoch before.
  EXPECT_EQ(churned->RankOf(2, 50), 0);
  EXPECT_EQ(churned->TitleProbability(2, 50), 0.0);
  EXPECT_GT(churned->TitleProbability(3, 50), 0.0);
}

TEST(ChurnedZipfTest, EpochIndexingClampsToPrecomputedRange) {
  const auto churned = ChurnedZipf::Create(BaseOptions());
  ASSERT_TRUE(churned.ok());
  EXPECT_EQ(churned->EpochAt(-5.0), 0);
  EXPECT_EQ(churned->EpochAt(0.0), 0);
  EXPECT_EQ(churned->EpochAt(99.9), 0);
  EXPECT_EQ(churned->EpochAt(100.0), 1);
  EXPECT_EQ(churned->EpochAt(1e9), 11);
}

TEST(ChurnedZipfTest, ScheduleIsDeterministicInTheChurnSeed) {
  const auto a = ChurnedZipf::Create(BaseOptions());
  const auto b = ChurnedZipf::Create(BaseOptions());
  ChurnedZipfOptions other = BaseOptions();
  other.churn_seed = 43;
  const auto c = ChurnedZipf::Create(other);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  bool differs = false;
  for (int epoch = 0; epoch < a->num_epochs(); ++epoch) {
    for (int rank = 1; rank <= 50; ++rank) {
      EXPECT_EQ(a->TitleAtRank(epoch, rank), b->TitleAtRank(epoch, rank));
      differs |= a->TitleAtRank(epoch, rank) != c->TitleAtRank(epoch, rank);
    }
  }
  EXPECT_TRUE(differs);
}

// KS-style goodness of fit: within any single epoch the sampled *rank*
// distribution must match Zipf(s) exactly — churn permutes which title holds
// a rank, never the rank law itself. The discrete KS statistic is
// conservative against continuous critical values, so the alpha = 0.01
// threshold 1.63/sqrt(n) is safe.
TEST(ChurnedZipfTest, SampledRanksMatchZipfWithinAnEpoch) {
  const auto churned = ChurnedZipf::Create(BaseOptions());
  ASSERT_TRUE(churned.ok());
  Rng rng(7);
  const int trials = 100000;
  for (int epoch : {0, 7}) {
    std::vector<int> counts(51, 0);
    const double t = (epoch + 0.5) * 100.0;
    for (int i = 0; i < trials; ++i) {
      const int32_t title = churned->SampleTitle(t, &rng);
      const int rank = churned->RankOf(epoch, title);
      ASSERT_GE(rank, 1);
      counts[rank]++;
    }
    double cumulative = 0.0;
    double d_stat = 0.0;
    for (int rank = 1; rank <= 50; ++rank) {
      cumulative += static_cast<double>(counts[rank]) / trials;
      d_stat = std::max(
          d_stat, std::abs(cumulative -
                           churned->rank_distribution()
                               .CumulativeProbability(rank)));
    }
    EXPECT_LT(d_stat, 1.63 / std::sqrt(static_cast<double>(trials)))
        << "epoch " << epoch;
  }
}

TEST(ChurnedZipfTest, RejectsBadOptions) {
  ChurnedZipfOptions options = BaseOptions();
  options.num_titles = 0;
  EXPECT_TRUE(ChurnedZipf::Create(options).status().IsInvalidArgument());
  options = BaseOptions();
  options.epoch_minutes = 0.0;
  EXPECT_TRUE(ChurnedZipf::Create(options).status().IsInvalidArgument());
  options = BaseOptions();
  options.swap_fraction = 1.5;
  EXPECT_TRUE(ChurnedZipf::Create(options).status().IsInvalidArgument());
  options = BaseOptions();
  options.num_epochs = 0;
  EXPECT_TRUE(ChurnedZipf::Create(options).status().IsInvalidArgument());
  options = BaseOptions();
  options.inject_every_epochs = -1;
  EXPECT_TRUE(ChurnedZipf::Create(options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace vod
