#include "workload/paper_presets.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(PaperPresetsTest, RatesAreThreeTimesPlayback) {
  const PlaybackRates rates = paper::Rates();
  EXPECT_TRUE(rates.Validate().ok());
  EXPECT_DOUBLE_EQ(rates.playback, 1.0);
  EXPECT_DOUBLE_EQ(rates.fast_forward, 3.0);
  EXPECT_DOUBLE_EQ(rates.rewind, 3.0);
}

TEST(PaperPresetsTest, Fig7DurationIsGammaMeanEight) {
  const DistributionPtr duration = paper::Fig7Duration();
  EXPECT_DOUBLE_EQ(duration->Mean(), 8.0);
  EXPECT_DOUBLE_EQ(duration->Variance(), 32.0);  // shape 2, scale 4
}

TEST(PaperPresetsTest, SingleOpBehaviorsValid) {
  for (VcrOp op : kAllVcrOps) {
    const VcrBehavior behavior = paper::Fig7SingleOpBehavior(op);
    EXPECT_TRUE(behavior.Validate().ok()) << VcrOpName(op);
    EXPECT_DOUBLE_EQ(behavior.mix.Probability(op), 1.0);
  }
}

TEST(PaperPresetsTest, MixedBehaviorMatchesFig7d) {
  const VcrBehavior behavior = paper::Fig7MixedBehavior();
  EXPECT_TRUE(behavior.Validate().ok());
  EXPECT_DOUBLE_EQ(behavior.mix.p_fast_forward, 0.2);
  EXPECT_DOUBLE_EQ(behavior.mix.p_rewind, 0.2);
  EXPECT_DOUBLE_EQ(behavior.mix.p_pause, 0.6);
}

TEST(PaperPresetsTest, Example1MoviesMatchThePaper) {
  const auto movies = paper::Example1Movies();
  ASSERT_EQ(movies.size(), 3u);
  EXPECT_DOUBLE_EQ(movies[0].length_minutes, 75.0);
  EXPECT_DOUBLE_EQ(movies[1].length_minutes, 60.0);
  EXPECT_DOUBLE_EQ(movies[2].length_minutes, 90.0);
  EXPECT_DOUBLE_EQ(movies[0].max_wait_minutes, 0.1);
  EXPECT_DOUBLE_EQ(movies[1].max_wait_minutes, 0.5);
  EXPECT_DOUBLE_EQ(movies[2].max_wait_minutes, 0.25);
  for (const auto& m : movies) {
    EXPECT_TRUE(m.Validate().ok()) << m.name;
    EXPECT_DOUBLE_EQ(m.min_hit_probability, 0.5);
  }
  // Durations: gamma mean 8, exp mean 5, exp mean 2.
  EXPECT_DOUBLE_EQ(movies[0].durations.fast_forward->Mean(), 8.0);
  EXPECT_DOUBLE_EQ(movies[1].durations.fast_forward->Mean(), 5.0);
  EXPECT_DOUBLE_EQ(movies[2].durations.fast_forward->Mean(), 2.0);
}

TEST(PaperPresetsTest, Fig9PhiValues) {
  const auto phis = paper::Fig9PhiValues();
  ASSERT_EQ(phis.size(), 6u);
  EXPECT_DOUBLE_EQ(phis[0], 3.0);
  EXPECT_DOUBLE_EQ(phis[4], 11.0);
  EXPECT_DOUBLE_EQ(phis[5], 16.0);
}

TEST(VcrBehaviorTest, SampleOpRespectsMix) {
  const VcrBehavior behavior = paper::Fig7MixedBehavior();
  Rng rng(13);
  int counts[3] = {0, 0, 0};
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    counts[static_cast<int>(behavior.SampleOp(&rng))]++;
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.6, 0.01);
}

TEST(VcrBehaviorTest, SampleDurationUsesPerOpDistribution) {
  VcrBehavior behavior = paper::Fig7MixedBehavior();
  Rng rng(17);
  double sum = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    sum += behavior.SampleDuration(VcrOp::kFastForward, &rng);
  }
  EXPECT_NEAR(sum / trials, 8.0, 0.15);
}

TEST(VcrBehaviorTest, PassiveValidation) {
  VcrBehavior passive;
  passive.interactivity = nullptr;
  EXPECT_TRUE(passive.passive());
  EXPECT_TRUE(passive.Validate().ok());
}

TEST(VcrBehaviorTest, MissingDurationRejected) {
  VcrBehavior behavior;
  behavior.mix = VcrMix::Only(VcrOp::kRewind);
  behavior.interactivity = paper::DefaultInteractivity();
  behavior.durations.rewind = nullptr;
  EXPECT_TRUE(behavior.Validate().IsInvalidArgument());
}

}  // namespace
}  // namespace vod
