#include "workload/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace vod {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOne) {
  const auto zipf = ZipfDistribution::Create(100, 0.8);
  ASSERT_TRUE(zipf.ok());
  double total = 0.0;
  for (int k = 1; k <= 100; ++k) total += zipf->Probability(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(zipf->CumulativeProbability(100), 1.0);
}

TEST(ZipfTest, ProbabilitiesDecreaseWithRank) {
  const auto zipf = ZipfDistribution::Create(50, 1.0);
  ASSERT_TRUE(zipf.ok());
  for (int k = 2; k <= 50; ++k) {
    EXPECT_LT(zipf->Probability(k), zipf->Probability(k - 1));
  }
}

TEST(ZipfTest, ExponentOneClassicRatios) {
  const auto zipf = ZipfDistribution::Create(10, 1.0);
  ASSERT_TRUE(zipf.ok());
  // P(k) ∝ 1/k: P(1)/P(2) = 2.
  EXPECT_NEAR(zipf->Probability(1) / zipf->Probability(2), 2.0, 1e-12);
  EXPECT_NEAR(zipf->Probability(1) / zipf->Probability(5), 5.0, 1e-12);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  const auto zipf = ZipfDistribution::Create(20, 0.0);
  ASSERT_TRUE(zipf.ok());
  for (int k = 1; k <= 20; ++k) {
    EXPECT_NEAR(zipf->Probability(k), 0.05, 1e-12);
  }
}

TEST(ZipfTest, SingleItemTakesAllMass) {
  const auto zipf = ZipfDistribution::Create(1, 2.0);
  ASSERT_TRUE(zipf.ok());
  EXPECT_DOUBLE_EQ(zipf->Probability(1), 1.0);
  Rng rng(3);
  EXPECT_EQ(zipf->Sample(&rng), 1);
}

TEST(ZipfTest, SamplingMatchesProbabilities) {
  const auto zipf = ZipfDistribution::Create(10, 1.0);
  ASSERT_TRUE(zipf.ok());
  Rng rng(7);
  std::vector<int> counts(11, 0);
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) counts[zipf->Sample(&rng)]++;
  for (int k = 1; k <= 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / trials,
                zipf->Probability(k), 0.005)
        << "rank " << k;
  }
}

TEST(ZipfTest, RanksCoveringFraction) {
  const auto zipf = ZipfDistribution::Create(1000, 1.0);
  ASSERT_TRUE(zipf.ok());
  const int popular = zipf->RanksCoveringFraction(0.5);
  // With s=1 and 1000 items, half the mass sits in the first ~30 ranks.
  EXPECT_GT(popular, 5);
  EXPECT_LT(popular, 60);
  EXPECT_GE(zipf->CumulativeProbability(popular), 0.5);
  EXPECT_LT(zipf->CumulativeProbability(popular - 1), 0.5);
  EXPECT_EQ(zipf->RanksCoveringFraction(1.0), 1000);
  EXPECT_EQ(zipf->RanksCoveringFraction(0.0), 1);
}

TEST(ZipfTest, RejectsBadArguments) {
  EXPECT_TRUE(ZipfDistribution::Create(0, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      ZipfDistribution::Create(10, -0.5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace vod
