#include "workload/catalog.h"

#include <gtest/gtest.h>

#include "workload/paper_presets.h"

namespace vod {
namespace {

Catalog MakeCatalog() {
  std::vector<MovieEntry> movies(3);
  movies[0].title = "blockbuster";
  movies[1].title = "drama";
  movies[2].title = "documentary";
  for (auto& m : movies) {
    m.behavior = paper::Fig7MixedBehavior();
  }
  auto catalog = Catalog::Create(std::move(movies), 1.0, 0.5);
  EXPECT_TRUE(catalog.ok());
  return *catalog;
}

TEST(CatalogTest, ArrivalRatesSplitByPopularity) {
  const Catalog catalog = MakeCatalog();
  double total = 0.0;
  for (int rank = 1; rank <= 3; ++rank) total += catalog.ArrivalRate(rank);
  EXPECT_NEAR(total, 0.5, 1e-12);
  EXPECT_GT(catalog.ArrivalRate(1), catalog.ArrivalRate(2));
  EXPECT_GT(catalog.ArrivalRate(2), catalog.ArrivalRate(3));
}

TEST(CatalogTest, RankAccessorsMatchInsertionOrder) {
  const Catalog catalog = MakeCatalog();
  EXPECT_EQ(catalog.size(), 3u);
  EXPECT_EQ(catalog.movie(1).title, "blockbuster");
  EXPECT_EQ(catalog.movie(3).title, "documentary");
}

TEST(CatalogTest, SamplingUsesZipf) {
  const Catalog catalog = MakeCatalog();
  Rng rng(9);
  int top = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (catalog.SampleRank(&rng) == 1) ++top;
  }
  // Zipf(1) over 3 items: P(1) = 1/(1 + 1/2 + 1/3) ≈ 0.545.
  EXPECT_NEAR(static_cast<double>(top) / trials, 6.0 / 11.0, 0.02);
}

TEST(CatalogTest, RejectsBadInputs) {
  EXPECT_TRUE(Catalog::Create({}, 1.0, 0.5).status().IsInvalidArgument());
  std::vector<MovieEntry> movies(1);
  movies[0].title = "x";
  movies[0].length_minutes = 0.0;
  EXPECT_TRUE(
      Catalog::Create(movies, 1.0, 0.5).status().IsInvalidArgument());
  movies[0].length_minutes = 90.0;
  EXPECT_TRUE(
      Catalog::Create(movies, 1.0, 0.0).status().IsInvalidArgument());
}

TEST(CatalogTest, FromCsvParsesEntries) {
  std::istringstream csv(
      "title,length,max_wait,min_hit_probability,p_ff,p_rw,p_pau,"
      "duration,interactivity\n"
      "blockbuster,120,0.5,0.6,0.2,0.2,0.6,gamma(2,4),exp(20)\n"
      "drama,95,1.0,0.5,1.0,0,0,exp(5),exp(30)\n"
      "ambient,60,2.0,0.0,0,0,0,det(0),det(0)\n");
  const auto catalog = Catalog::FromCsv(csv, 1.0, 2.0);
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  ASSERT_EQ(catalog->size(), 3u);

  const MovieEntry& top = catalog->movie(1);
  EXPECT_EQ(top.title, "blockbuster");
  EXPECT_DOUBLE_EQ(top.length_minutes, 120.0);
  EXPECT_DOUBLE_EQ(top.max_wait_minutes, 0.5);
  EXPECT_DOUBLE_EQ(top.min_hit_probability, 0.6);
  EXPECT_DOUBLE_EQ(top.behavior.mix.p_pause, 0.6);
  EXPECT_TRUE(top.behavior.Validate().ok());
  EXPECT_DOUBLE_EQ(top.behavior.durations.fast_forward->Mean(), 8.0);

  const MovieEntry& drama = catalog->movie(2);
  EXPECT_DOUBLE_EQ(drama.behavior.mix.p_fast_forward, 1.0);
  EXPECT_DOUBLE_EQ(drama.behavior.durations.fast_forward->Mean(), 5.0);

  // A zero mix makes the title passive regardless of the spec columns.
  EXPECT_TRUE(catalog->movie(3).behavior.passive());
}

TEST(CatalogTest, FromCsvRejectsMalformedInput) {
  {
    std::istringstream csv("wrong,header\n");
    EXPECT_TRUE(Catalog::FromCsv(csv, 1.0, 1.0).status().IsInvalidArgument());
  }
  {
    std::istringstream csv(
        "title,length,max_wait,min_hit_probability,p_ff,p_rw,p_pau,"
        "duration,interactivity\n"
        "x,120,0.5,0.5,0.2,0.2\n");  // too few fields
    EXPECT_TRUE(Catalog::FromCsv(csv, 1.0, 1.0).status().IsInvalidArgument());
  }
  {
    std::istringstream csv(
        "title,length,max_wait,min_hit_probability,p_ff,p_rw,p_pau,"
        "duration,interactivity\n"
        "x,120,0.5,0.5,0.9,0.9,0.9,exp(5),exp(20)\n");  // mix sums to 2.7
    EXPECT_TRUE(Catalog::FromCsv(csv, 1.0, 1.0).status().IsInvalidArgument());
  }
  {
    std::istringstream csv(
        "title,length,max_wait,min_hit_probability,p_ff,p_rw,p_pau,"
        "duration,interactivity\n"
        "x,120,0.5,0.5,1,0,0,bogus(1),exp(20)\n");
    EXPECT_TRUE(Catalog::FromCsv(csv, 1.0, 1.0).status().IsInvalidArgument());
  }
}

TEST(CatalogTest, SyntheticCatalogShape) {
  const auto catalog =
      Catalog::Synthetic(10, 1.0, 2.0, paper::Fig7MixedBehavior());
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->size(), 10u);
  EXPECT_EQ(catalog->movie(1).title, "movie-1");
  EXPECT_DOUBLE_EQ(catalog->movie(1).length_minutes, 90.0);
  EXPECT_DOUBLE_EQ(catalog->movie(3).length_minutes, 120.0);  // cycles
  EXPECT_DOUBLE_EQ(catalog->total_arrivals_per_minute(), 2.0);
  const int popular = catalog->PopularSetSize(0.7);
  EXPECT_GE(popular, 1);
  EXPECT_LE(popular, 10);
}

}  // namespace
}  // namespace vod
