// Unit tests for the crash flight recorder (obs/flight_recorder.h):
// bounded window retention, bounded per-shard event rings, and the
// Dump/ReadPostmortem bundle round-trip (full precision — the digest chain
// is 64-bit and must survive the JSON round-trip exactly).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"

namespace vod {
namespace {

class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_("flight_recorder_test_" + name + ".jsonl") {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

FlightWindowRecord MakeWindow(int64_t w, int shards) {
  FlightWindowRecord fr;
  fr.window = w;
  fr.t_end = 60.0 * static_cast<double>(w);
  fr.capacity = 40 - w;
  fr.rung = static_cast<int>(w % 3);
  // Full 64-bit digest: round-tripping through a double would corrupt it.
  fr.digest = 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(w);
  fr.sum_held = 10 + w;
  fr.sum_credit = 30 - w;
  fr.sum_debt = w;
  fr.sum_queued = 2 * w;
  fr.quota_issued = w % 4;
  fr.messages_posted = 100 + static_cast<uint64_t>(w);
  fr.messages_drained = 90 + static_cast<uint64_t>(w);
  for (int s = 0; s < shards; ++s) fr.shard_events.push_back(100 * w + s);
  return fr;
}

TEST(FlightRecorderTest, RetainsOnlyTheLastWindows) {
  FlightRecorder recorder(/*shards=*/2, /*window_capacity=*/4,
                          /*events_per_shard=*/8);
  for (int64_t w = 1; w <= 10; ++w) recorder.RecordWindow(MakeWindow(w, 2));
  ASSERT_EQ(recorder.window_count(), 4u);
  EXPECT_EQ(recorder.windows().front().window, 7);
  EXPECT_EQ(recorder.windows().back().window, 10);
}

TEST(FlightRecorderTest, ShardRingsAreBounded) {
  FlightRecorder recorder(/*shards=*/2, /*window_capacity=*/4,
                          /*events_per_shard=*/3);
  EventRing* ring = recorder.shard_ring(0);
  for (int i = 0; i < 10; ++i) {
    TraceEvent event{};
    event.category = EventCategory::kShard;
    event.id = i;
    ring->Append(event);
  }
  const auto tail = recorder.shard_ring(0)->Snapshot();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().id, 7);  // oldest retained
  EXPECT_EQ(tail.back().id, 9);
}

TEST(FlightRecorderTest, DumpReadPostmortemRoundTrips) {
  FlightRecorder recorder(/*shards=*/3, /*window_capacity=*/8,
                          /*events_per_shard=*/4);
  for (int64_t w = 1; w <= 5; ++w) recorder.RecordWindow(MakeWindow(w, 3));
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 2; ++i) {
      TraceEvent event{};
      event.time = 12.5 + s;
      event.category = EventCategory::kShard;
      event.subtype = static_cast<uint8_t>(ShardEvent::kWindowClose);
      event.movie = -1;
      event.id = s;
      event.value = 42.0 + i;
      recorder.shard_ring(s)->Append(event);
    }
  }

  TempPath path("roundtrip");
  const std::string reason =
      "invariant 'shard-reserve-ledger' violated at t=180 \"quoted\"";
  ASSERT_TRUE(recorder.Dump(path.str(), reason).ok());

  const auto bundle = ReadPostmortem(path.str());
  ASSERT_TRUE(bundle.ok()) << bundle.status().message();
  EXPECT_EQ(bundle->reason, reason);
  EXPECT_EQ(bundle->shards, 3);
  ASSERT_EQ(bundle->windows.size(), 5u);
  for (size_t i = 0; i < bundle->windows.size(); ++i) {
    const FlightWindowRecord& got = bundle->windows[i];
    const FlightWindowRecord want = MakeWindow(static_cast<int64_t>(i) + 1, 3);
    EXPECT_EQ(got.window, want.window);
    EXPECT_EQ(got.t_end, want.t_end);
    EXPECT_EQ(got.capacity, want.capacity);
    EXPECT_EQ(got.rung, want.rung);
    EXPECT_EQ(got.digest, want.digest);  // exact, not double-rounded
    EXPECT_EQ(got.sum_held, want.sum_held);
    EXPECT_EQ(got.sum_credit, want.sum_credit);
    EXPECT_EQ(got.sum_debt, want.sum_debt);
    EXPECT_EQ(got.sum_queued, want.sum_queued);
    EXPECT_EQ(got.quota_issued, want.quota_issued);
    EXPECT_EQ(got.messages_posted, want.messages_posted);
    EXPECT_EQ(got.messages_drained, want.messages_drained);
    EXPECT_EQ(got.shard_events, want.shard_events);
  }
  ASSERT_EQ(bundle->events.size(), 6u);
  for (size_t i = 0; i < bundle->events.size(); ++i) {
    const PostmortemEvent& pe = bundle->events[i];
    EXPECT_EQ(pe.shard, static_cast<int>(i / 2));
    EXPECT_EQ(pe.event.category, EventCategory::kShard);
    EXPECT_EQ(pe.event.id, static_cast<int64_t>(i / 2));
    EXPECT_EQ(pe.event.value, 42.0 + static_cast<double>(i % 2));
  }
}

TEST(FlightRecorderTest, ReadRejectsDamagedBundles) {
  TempPath path("damaged");
  {
    std::FILE* f = std::fopen(path.str().c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"not\":\"a bundle\"}\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadPostmortem(path.str()).ok());
  EXPECT_FALSE(ReadPostmortem("flight_recorder_test_nonexistent.jsonl").ok());
}

TEST(FlightRecorderTest, EmptyRecorderStillDumps) {
  // A failure in window 1 dumps before anything accumulated much; the
  // bundle must still parse.
  FlightRecorder recorder(/*shards=*/1, /*window_capacity=*/4,
                          /*events_per_shard=*/0);
  TempPath path("empty");
  ASSERT_TRUE(recorder.Dump(path.str(), "early failure").ok());
  const auto bundle = ReadPostmortem(path.str());
  ASSERT_TRUE(bundle.ok()) << bundle.status().message();
  EXPECT_EQ(bundle->reason, "early failure");
  EXPECT_TRUE(bundle->windows.empty());
  EXPECT_TRUE(bundle->events.empty());
}

}  // namespace
}  // namespace vod
