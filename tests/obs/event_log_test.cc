#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace vod {
namespace {

TEST(EventTaxonomyTest, NamesRoundTripThroughParse) {
  for (int i = 0; i < kNumEventCategories; ++i) {
    const auto category = static_cast<EventCategory>(i);
    const auto parsed = ParseEventCategory(EventCategoryName(category));
    ASSERT_TRUE(parsed.ok()) << EventCategoryName(category);
    EXPECT_EQ(*parsed, category);
  }
  EXPECT_TRUE(ParseEventCategory("no_such_event").status().IsInvalidArgument());
}

TEST(EventTaxonomyTest, SubtypeNamesAreStable) {
  EXPECT_STREQ(EventSubtypeName(EventCategory::kAdmission, 1), "type2");
  EXPECT_STREQ(EventSubtypeName(EventCategory::kResume, 3), "miss");
  EXPECT_STREQ(EventSubtypeName(EventCategory::kFault, 0), "down");
  EXPECT_STREQ(EventSubtypeName(EventCategory::kDegradation, 0), "normal");
  EXPECT_STREQ(
      EventSubtypeName(EventCategory::kShard,
                       static_cast<uint8_t>(ShardEvent::kWindowOpen)),
      "window_open");
  EXPECT_STREQ(
      EventSubtypeName(EventCategory::kShard,
                       static_cast<uint8_t>(ShardEvent::kWindowClose)),
      "window_close");
  EXPECT_STREQ(EventSubtypeName(EventCategory::kShard,
                                static_cast<uint8_t>(ShardEvent::kPressure)),
               "pressure");
  EXPECT_STREQ(
      EventSubtypeName(EventCategory::kShard,
                       static_cast<uint8_t>(ShardEvent::kQuotaApply)),
      "quota_apply");
  // Out-of-range subtypes and subtype-less categories render as "-".
  EXPECT_STREQ(EventSubtypeName(EventCategory::kAdmission, 99), "-");
  EXPECT_STREQ(EventSubtypeName(EventCategory::kTick, 0), "-");
}

TEST(EventTaxonomyTest, CategoryMaskParsing) {
  ASSERT_TRUE(ParseCategoryMask("all").ok());
  EXPECT_EQ(*ParseCategoryMask("all"), kAllEventCategories);
  EXPECT_EQ(*ParseCategoryMask(""), kAllEventCategories);
  const auto mask = ParseCategoryMask("admission,fault");
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(*mask, CategoryBit(EventCategory::kAdmission) |
                       CategoryBit(EventCategory::kFault));
  EXPECT_TRUE(ParseCategoryMask("admission,bogus").status()
                  .IsInvalidArgument());
}

TEST(EventRingTest, KeepsTheMostRecentEvents) {
  EventRing ring(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent event;
    event.time = static_cast<double>(i);
    ring.Append(event);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_appended(), 10u);
  const auto events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<size_t>(i)].time, 6.0 + i);
  }
  ring.Clear();
  EXPECT_TRUE(ring.empty());
}

TEST(EventLogTest, StampsSequenceAndFansOut) {
  EventLog log;
  EventRing a(8);
  EventRing b(8);
  log.AddSink(&a);
  log.AddSink(&b);
  log.Emit(1.0, EventCategory::kAdmission, 0, 0, 7, 0.5);
  log.Emit(2.0, EventCategory::kResume, 3, 0, 7, 0.0, 1);
  EXPECT_EQ(log.emitted(), 2u);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  const auto events = a.Snapshot();
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].category, EventCategory::kResume);
  EXPECT_EQ(events[1].aux, 1);
}

TEST(EventLogTest, MaskFiltersCategories) {
  EventLog log;
  EventRing ring(8);
  log.AddSink(&ring);
  log.set_mask(CategoryBit(EventCategory::kFault));
  EXPECT_TRUE(log.ShouldEmit(EventCategory::kFault));
  EXPECT_FALSE(log.ShouldEmit(EventCategory::kAdmission));
  log.Emit(1.0, EventCategory::kAdmission, 0, 0, 1, 0.0);  // filtered
  log.Emit(2.0, EventCategory::kFault, 0, -1, 2, 30.0);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.Snapshot()[0].category, EventCategory::kFault);
  // Filtered events never consume sequence numbers.
  EXPECT_EQ(log.emitted(), 1u);
}

TEST(EventLogTest, NoSinksMeansNoEmission) {
  EventLog log;
  EXPECT_FALSE(log.ShouldEmit(EventCategory::kAdmission));
  log.Emit(1.0, EventCategory::kAdmission, 0, 0, 1, 0.0);
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_FALSE(ObsEnabled(&log, EventCategory::kAdmission));
  EXPECT_FALSE(ObsEnabled(nullptr, EventCategory::kAdmission));
}

TEST(VectorSinkTest, BuffersAndTakeDrains) {
  // VectorSink is the shard-lane buffer: the lane appends during a window,
  // the coordinator Takes the batch at the barrier and re-emits it into the
  // main bus, which restamps seq — the merge protocol of sharded tracing.
  EventLog lane;
  VectorSink buffer;
  lane.AddSink(&buffer);
  lane.Emit(1.0, EventCategory::kAdmission, 0, 3, 7, 0.5);
  lane.Emit(2.0, EventCategory::kShard, 1, -1, 0, 42.0);
  EXPECT_EQ(buffer.size(), 2u);

  const std::vector<TraceEvent> batch = buffer.Take();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(buffer.size(), 0u);  // Take drains; the next window starts fresh
  EXPECT_EQ(batch[0].category, EventCategory::kAdmission);
  EXPECT_EQ(batch[1].category, EventCategory::kShard);

  // Re-emission restamps the global sequence while preserving payloads.
  EventLog bus;
  EventRing out(8);
  bus.AddSink(&out);
  bus.Emit(0.5, EventCategory::kBarrier, 0, -1, 1, 0.0);
  for (const TraceEvent& event : batch) bus.Emit(event);
  const auto merged = out.Snapshot();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[1].seq, 1u);
  EXPECT_EQ(merged[2].seq, 2u);
  EXPECT_EQ(merged[2].category, EventCategory::kShard);
  EXPECT_DOUBLE_EQ(merged[2].value, 42.0);
}

TEST(EventLogTest, ScopedSinkDetachesOnExit) {
  EventLog log;
  EventRing ring(8);
  {
    ScopedEventSink lend(&log, &ring);
    EXPECT_TRUE(log.has_sinks());
    log.Emit(1.0, EventCategory::kStall, 0, 0, 3, 4.0);
  }
  EXPECT_FALSE(log.has_sinks());
  log.Emit(2.0, EventCategory::kStall, 0, 0, 3, 4.0);  // nowhere to go
  EXPECT_EQ(ring.size(), 1u);
  // Null log or null sink: the guard is inert.
  { ScopedEventSink inert_log(nullptr, &ring); }
  { ScopedEventSink inert_sink(&log, nullptr); }
  EXPECT_FALSE(log.has_sinks());
}

TEST(JsonlSinkTest, WritesOneObjectPerLine) {
  std::ostringstream os;
  JsonlSink sink(&os);
  EventLog log;
  log.AddSink(&sink);
  log.Emit(1.5, EventCategory::kAdmission, 1, 2, 42, 0.25);
  log.Emit(2.5, EventCategory::kResume, 3, 2, 42, 0.0, 0);
  EXPECT_EQ(sink.lines_written(), 2u);
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"cat\":\"admission\""), std::string::npos);
  EXPECT_NE(line.find("\"sub\":\"type2\""), std::string::npos);
  EXPECT_NE(line.find("\"movie\":2"), std::string::npos);
  EXPECT_NE(line.find("\"id\":42"), std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"cat\":\"resume\""), std::string::npos);
  EXPECT_NE(line.find("\"sub\":\"miss\""), std::string::npos);
  EXPECT_FALSE(std::getline(lines, line)) << "exactly two lines";
}

TEST(TraceEventTest, LayoutIsPartOfTheFormat) {
  // The binary sink memcpys records; a size change is a format break.
  EXPECT_EQ(sizeof(TraceEvent), 40u);
}

}  // namespace
}  // namespace vod
