#include "obs/trace_reader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event_log.h"

namespace vod {
namespace {

TraceEvent MakeEvent(double t, EventCategory category, double value,
                     uint8_t subtype = 0, uint8_t aux = 0) {
  TraceEvent event;
  event.time = t;
  event.category = category;
  event.value = value;
  event.subtype = subtype;
  event.aux = aux;
  return event;
}

TEST(TraceReaderTest, JsonlRoundTripsThroughTheSink) {
  std::ostringstream os;
  JsonlSink sink(&os);
  EventLog log;
  log.AddSink(&sink);
  log.Emit(1.5, EventCategory::kAdmission, 1, 2, 42, 0.25);
  log.Emit(3.0, EventCategory::kResume, 3, 2, 42, 0.0, 1);
  log.Emit(9.0, EventCategory::kFault, 0, -1, -1, 30.0);
  std::istringstream is(os.str());
  const auto events = ReadJsonlTrace(is);
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->size(), 3u);
  EXPECT_DOUBLE_EQ((*events)[0].time, 1.5);
  EXPECT_EQ((*events)[0].category, EventCategory::kAdmission);
  EXPECT_EQ((*events)[0].subtype, 1);
  EXPECT_EQ((*events)[0].movie, 2);
  EXPECT_EQ((*events)[0].id, 42);
  EXPECT_DOUBLE_EQ((*events)[0].value, 0.25);
  EXPECT_EQ((*events)[1].seq, 1u);
  // The subtype comes back from its name ("miss"), not a raw integer.
  EXPECT_EQ((*events)[1].subtype, 3);
  EXPECT_EQ((*events)[1].aux, 1);
  EXPECT_EQ((*events)[2].movie, -1);
  EXPECT_EQ((*events)[2].id, -1);
}

TEST(TraceReaderTest, JsonlRejectsDamage) {
  {
    // The sinks never write blank lines; one means truncation damage.
    std::istringstream is("\n");
    EXPECT_TRUE(ReadJsonlTrace(is).status().IsInvalidArgument());
  }
  {
    std::istringstream is("{\"t\":1.0}\n");
    const auto events = ReadJsonlTrace(is);
    EXPECT_TRUE(events.status().IsInvalidArgument());
  }
  // Corrupt a genuine line's category name.
  std::ostringstream os;
  JsonlSink sink(&os);
  EventLog log;
  log.AddSink(&sink);
  log.Emit(1.0, EventCategory::kAdmission, 0, 0, 1, 0.0);
  std::string line = os.str();
  line.replace(line.find("admission"), 9, "bogus_cat");
  std::istringstream is(line);
  EXPECT_TRUE(ReadJsonlTrace(is).status().IsInvalidArgument());
}

TEST(TraceReaderTest, BinaryRoundTripsThroughTheSinkFile) {
  const std::string path = "trace_reader_test_roundtrip.bin";
  {
    auto sink = BinarySink::Open(path);
    ASSERT_TRUE(sink.ok()) << sink.status();
    EventLog log;
    log.AddSink(sink->get());
    log.Emit(1.5, EventCategory::kDegradation, 2, -1, 7, 36.0, 1);
    log.Emit(2.5, EventCategory::kTick, 0, 3, 11, -4.25);
    ASSERT_TRUE(log.FlushSinks().ok());
  }
  // ReadTraceFile sniffs the magic and picks the binary reader.
  const auto events = ReadTraceFile(path);
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->size(), 2u);
  EXPECT_DOUBLE_EQ((*events)[0].time, 1.5);
  EXPECT_EQ((*events)[0].category, EventCategory::kDegradation);
  EXPECT_EQ((*events)[0].subtype, 2);
  EXPECT_EQ((*events)[0].aux, 1);
  EXPECT_EQ((*events)[0].id, 7);
  EXPECT_DOUBLE_EQ((*events)[0].value, 36.0);
  EXPECT_EQ((*events)[1].seq, 1u);
  EXPECT_EQ((*events)[1].movie, 3);
  EXPECT_DOUBLE_EQ((*events)[1].value, -4.25);
  std::remove(path.c_str());
}

TEST(TraceReaderTest, BinaryRejectsBadMagicAndTruncation) {
  {
    std::istringstream is("NOTMAGIC........");
    EXPECT_TRUE(ReadBinaryTrace(is).status().IsInvalidArgument());
  }
  {
    // Magic followed by half a record.
    std::string bytes(BinarySink::kMagic, sizeof(BinarySink::kMagic));
    bytes.append(20, '\0');
    std::istringstream is(bytes);
    const auto events = ReadBinaryTrace(is);
    EXPECT_TRUE(events.status().IsInvalidArgument());
  }
}

TEST(TraceReaderTest, ReadTraceFileSniffsJsonlAndReportsMissingFiles) {
  EXPECT_TRUE(ReadTraceFile("no_such_trace_file.jsonl").status().IsNotFound());
  const std::string path = "trace_reader_test_sniff.jsonl";
  {
    auto sink = JsonlSink::Open(path);
    ASSERT_TRUE(sink.ok()) << sink.status();
    EventLog log;
    log.AddSink(sink->get());
    log.Emit(4.0, EventCategory::kStall, 0, 1, 9, 2.5);
    ASSERT_TRUE(log.FlushSinks().ok());
  }
  const auto events = ReadTraceFile(path);
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ((*events)[0].category, EventCategory::kStall);
  EXPECT_DOUBLE_EQ((*events)[0].value, 2.5);
  std::remove(path.c_str());
}

TEST(TraceReaderTest, SummarizeAggregatesPerCategoryInOrder) {
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent(5.0, EventCategory::kStall, 10.0));
  events.push_back(MakeEvent(1.0, EventCategory::kAdmission, 2.0));
  events.push_back(MakeEvent(9.0, EventCategory::kAdmission, 4.0));
  const auto summaries = SummarizeTrace(events);
  ASSERT_EQ(summaries.size(), 2u);
  // Category order, not first-seen order.
  EXPECT_EQ(summaries[0].category, EventCategory::kAdmission);
  EXPECT_EQ(summaries[0].count, 2);
  EXPECT_DOUBLE_EQ(summaries[0].first_t, 1.0);
  EXPECT_DOUBLE_EQ(summaries[0].last_t, 9.0);
  EXPECT_DOUBLE_EQ(summaries[0].value_sum, 6.0);
  EXPECT_DOUBLE_EQ(summaries[0].value_min, 2.0);
  EXPECT_DOUBLE_EQ(summaries[0].value_max, 4.0);
  EXPECT_EQ(summaries[1].category, EventCategory::kStall);
  EXPECT_EQ(summaries[1].count, 1);
  EXPECT_TRUE(SummarizeTrace({}).empty());
}

TEST(TraceReaderTest, DegradationTimelineReconstructsDwells) {
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent(0.0, EventCategory::kTick, 0.0));
  events.push_back(
      MakeEvent(10.0, EventCategory::kDegradation, 36.0, /*subtype=*/1));
  events.push_back(MakeEvent(25.0, EventCategory::kDegradation, 24.0,
                             /*subtype=*/2, /*aux=*/1));
  events.push_back(MakeEvent(40.0, EventCategory::kTick, 0.0));
  const auto timeline = DegradationTimeline(events);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline[0].start, 10.0);
  EXPECT_DOUBLE_EQ(timeline[0].end, 25.0);
  EXPECT_EQ(timeline[0].level, 1);
  EXPECT_EQ(timeline[0].from_level, 0);
  EXPECT_EQ(timeline[0].capacity, 36);
  EXPECT_DOUBLE_EQ(timeline[1].start, 25.0);
  // The last dwell runs to the trace's final event time.
  EXPECT_DOUBLE_EQ(timeline[1].end, 40.0);
  EXPECT_EQ(timeline[1].level, 2);
  EXPECT_EQ(timeline[1].from_level, 1);
  EXPECT_EQ(timeline[1].capacity, 24);

  // No degradation events -> empty timeline, not a zero-width interval.
  EXPECT_TRUE(DegradationTimeline({MakeEvent(1.0, EventCategory::kTick, 0.0)})
                  .empty());
}

TEST(TraceReaderTest, ShardImbalanceTimelineFoldsWindowRecords) {
  // A merged sharded trace carries, per window, each shard's window_close
  // (id = shard, value = executed-event delta) and the coordinator's
  // pressure reports (id = shard, value = messages) — all stamped with the
  // barrier's t_end, shards in index order.
  const auto shard_event = [](double t, ShardEvent sub, int shard,
                              double value) {
    TraceEvent event = MakeEvent(t, EventCategory::kShard, value,
                                 static_cast<uint8_t>(sub));
    event.movie = -1;
    event.id = shard;
    return event;
  };
  std::vector<TraceEvent> events;
  // Interleave unrelated categories; the timeline must ignore them.
  events.push_back(MakeEvent(0.0, EventCategory::kShard, 3.0,
                             static_cast<uint8_t>(ShardEvent::kWindowOpen)));
  events.push_back(MakeEvent(5.0, EventCategory::kAdmission, 1.0));
  events.push_back(shard_event(60.0, ShardEvent::kWindowClose, 0, 120.0));
  events.push_back(shard_event(60.0, ShardEvent::kWindowClose, 1, 80.0));
  events.push_back(shard_event(60.0, ShardEvent::kPressure, 0, 12.0));
  events.push_back(shard_event(60.0, ShardEvent::kPressure, 1, 12.0));
  events.push_back(shard_event(120.0, ShardEvent::kWindowClose, 0, 50.0));
  events.push_back(shard_event(120.0, ShardEvent::kWindowClose, 1, 50.0));
  events.push_back(shard_event(120.0, ShardEvent::kPressure, 0, 10.0));

  const auto timeline = ShardImbalanceTimeline(events);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline[0].t_end, 60.0);
  EXPECT_EQ(timeline[0].shards, 2);
  EXPECT_EQ(timeline[0].total_events, 200);
  EXPECT_EQ(timeline[0].max_events, 120);
  EXPECT_EQ(timeline[0].min_events, 80);
  EXPECT_EQ(timeline[0].critical_shard, 0);
  EXPECT_EQ(timeline[0].messages, 24);
  // An exact tie keeps the lowest shard id on the critical path (shards
  // arrive in index order in a merged trace).
  EXPECT_EQ(timeline[1].max_events, 50);
  EXPECT_EQ(timeline[1].min_events, 50);
  EXPECT_EQ(timeline[1].critical_shard, 0);
  EXPECT_EQ(timeline[1].messages, 10);

  EXPECT_TRUE(ShardImbalanceTimeline({}).empty());
}

}  // namespace
}  // namespace vod
