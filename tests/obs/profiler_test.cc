#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

namespace vod {
namespace {

TEST(PhaseProfilerTest, ScopeRecordsOneSpanPerRegion) {
  PhaseProfiler profiler;
  { PhaseProfiler::Scope scope(&profiler, "simulate"); }
  { PhaseProfiler::Scope scope(&profiler, "simulate"); }
  { PhaseProfiler::Scope scope(&profiler, "reduce"); }
  EXPECT_EQ(profiler.span_count(), 3u);
  const auto aggregates = profiler.Aggregates();
  ASSERT_EQ(aggregates.size(), 2u);
}

TEST(PhaseProfilerTest, NullProfilerScopeIsInert) {
  // Call sites pass whatever pointer the options carry; a null profiler
  // must make the scope free and crash-proof.
  PhaseProfiler::Scope scope(nullptr, "anything");
  SUCCEED();
}

TEST(PhaseProfilerTest, AggregatesSortByDescendingTotal) {
  PhaseProfiler profiler;
  profiler.RecordSpan("short", 0.0, 100.0);
  profiler.RecordSpan("long", 0.0, 300.0);
  profiler.RecordSpan("short", 100.0, 150.0);
  const auto aggregates = profiler.Aggregates();
  ASSERT_EQ(aggregates.size(), 2u);
  EXPECT_EQ(aggregates[0].name, "long");
  EXPECT_EQ(aggregates[0].count, 1);
  EXPECT_DOUBLE_EQ(aggregates[0].total_us, 300.0);
  EXPECT_EQ(aggregates[1].name, "short");
  EXPECT_EQ(aggregates[1].count, 2);
  EXPECT_DOUBLE_EQ(aggregates[1].total_us, 150.0);
  EXPECT_DOUBLE_EQ(aggregates[1].max_us, 100.0);
}

TEST(PhaseProfilerTest, BackwardsSpanClampsToZeroDuration) {
  PhaseProfiler profiler;
  profiler.RecordSpan("weird", 10.0, 5.0);
  const auto aggregates = profiler.Aggregates();
  ASSERT_EQ(aggregates.size(), 1u);
  EXPECT_DOUBLE_EQ(aggregates[0].total_us, 0.0);
}

TEST(PhaseProfilerTest, SummaryTableListsEveryPhase) {
  PhaseProfiler profiler;
  profiler.RecordSpan("cell c0 r0", 0.0, 2000.0);
  profiler.RecordSpan("checkpoint_save", 2000.0, 2500.0);
  const std::string table = profiler.SummaryTable();
  EXPECT_NE(table.find("phase"), std::string::npos);
  EXPECT_NE(table.find("total_ms"), std::string::npos);
  EXPECT_NE(table.find("cell c0 r0"), std::string::npos);
  EXPECT_NE(table.find("checkpoint_save"), std::string::npos);
  // 2000 us == 2.000 ms in the total column.
  EXPECT_NE(table.find("2.000"), std::string::npos);
}

TEST(PhaseProfilerTest, ChromeTraceIsWellFormedCompleteEvents) {
  PhaseProfiler profiler;
  profiler.RecordSpan("cell c0 r0", 1.0, 4.5);
  profiler.RecordSpan("checkpoint_save", 5.0, 6.0);
  std::ostringstream os;
  profiler.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cell c0 r0\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3.500"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  // Two complete events -> exactly one comma between objects.
  size_t events = 0;
  for (size_t pos = json.find("\"ph\""); pos != std::string::npos;
       pos = json.find("\"ph\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 2u);
}

TEST(PhaseProfilerTest, ChromeTraceEscapesSpanNames) {
  PhaseProfiler profiler;
  profiler.RecordSpan("a\"b\\c", 0.0, 1.0);
  std::ostringstream os;
  profiler.WriteChromeTrace(os);
  EXPECT_NE(os.str().find("a\\\"b\\\\c"), std::string::npos);
}

TEST(PhaseProfilerTest, ThreadsGetDistinctLanes) {
  PhaseProfiler profiler;
  { PhaseProfiler::Scope scope(&profiler, "main"); }
  std::thread worker(
      [&] { PhaseProfiler::Scope scope(&profiler, "worker"); });
  worker.join();
  std::ostringstream os;
  profiler.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(PhaseProfilerTest, NamedLanesEmitThreadNameMetadata) {
  // RegisterLane claims a tid and names it; the Chrome trace carries the
  // name as a thread_name metadata record, so Perfetto shows "shard 0"
  // instead of an anonymous lane even though pool workers migrate between
  // shards across windows.
  PhaseProfiler profiler;
  const int lane0 = profiler.RegisterLane("shard 0");
  const int lane1 = profiler.RegisterLane("coordinator");
  EXPECT_NE(lane0, lane1);
  profiler.RecordSpanOnLane(lane0, "shard_work", 0.0, 50.0);
  profiler.RecordSpanOnLane(lane1, "coordinator_fold", 50.0, 60.0);
  EXPECT_EQ(profiler.span_count(), 2u);

  std::ostringstream os;
  profiler.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"shard 0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"coordinator\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard_work\""), std::string::npos);
  // Metadata records are "ph":"M"; spans stay "ph":"X".
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(PhaseProfilerTest, NamedLanesAndThreadLanesShareTheTidSpace) {
  // A lane registered after a thread recorded keeps tids collision-free.
  PhaseProfiler profiler;
  { PhaseProfiler::Scope scope(&profiler, "main"); }  // claims tid 0
  const int lane = profiler.RegisterLane("shard 0");
  EXPECT_EQ(lane, 1);
  profiler.RecordSpanOnLane(lane, "shard_work", 0.0, 10.0);
  std::ostringstream os;
  profiler.WriteChromeTrace(os);
  EXPECT_NE(os.str().find("\"tid\":1"), std::string::npos);
}

}  // namespace
}  // namespace vod
