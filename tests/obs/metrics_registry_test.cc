#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/serialize.h"

namespace vod {
namespace {

TEST(MetricsRegistryTest, RegistersAndFindsInstruments) {
  MetricsRegistry registry;
  Counter* c = registry.AddCounter("events_total", "events");
  Gauge* g = registry.AddGauge("streams", "streams in use");
  Histogram* h = registry.AddHistogram("wait", "waits", 0.0, 10.0, 5);
  ASSERT_NE(c, nullptr);
  ASSERT_NE(g, nullptr);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(registry.num_metrics(), 3u);

  // Re-registration under the same kind returns the same instrument.
  c->Add(3);
  EXPECT_EQ(registry.AddCounter("events_total", "events")->value(), 3);
  EXPECT_EQ(registry.FindCounter("events_total"), c);
  EXPECT_EQ(registry.FindGauge("streams"), g);
  // Kind-mismatched lookups return null rather than aliasing.
  EXPECT_EQ(registry.FindGauge("events_total"), nullptr);
  EXPECT_EQ(registry.FindCounter("absent"), nullptr);
}

TEST(MetricsRegistryTest, CadencedSampling) {
  // The first MaybeSample anchors the cadence grid without sampling;
  // subsequent boundaries fall at anchor + k * sample_every.
  MetricsRegistry registry;
  Gauge* g = registry.AddGauge("level", "");
  registry.set_sample_every(10.0);
  g->Set(1.0);
  registry.MaybeSample(0.0);    // anchor only — no sample
  EXPECT_EQ(registry.samples_taken(), 0);
  registry.MaybeSample(9.9);    // still inside the first interval
  registry.MaybeSample(10.0);   // boundary
  g->Set(2.0);
  registry.MaybeSample(14.0);   // between boundaries
  registry.MaybeSample(31.0);   // crosses 20 and 30 — backfills both
  const auto& series = registry.series("level");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].t, 10.0);
  EXPECT_DOUBLE_EQ(series[0].value, 1.0);
  EXPECT_DOUBLE_EQ(series[1].t, 20.0);
  EXPECT_DOUBLE_EQ(series[2].t, 30.0);
  EXPECT_DOUBLE_EQ(series[2].value, 2.0);
  EXPECT_EQ(registry.samples_taken(), 3);
}

TEST(MetricsRegistryTest, WritePrometheusFormat) {
  MetricsRegistry registry;
  registry.AddCounter("requests_total", "total requests")->Add(7);
  registry.AddGauge("level", "current level")->Set(2.5);
  registry.AddHistogram("wait", "wait minutes", 0.0, 2.0, 2)->Add(0.5);
  std::ostringstream os;
  registry.WritePrometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# HELP requests_total total requests"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE level gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wait histogram"), std::string::npos);
  EXPECT_NE(text.find("wait_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("wait_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("wait_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, WriteSeriesCsvFormat) {
  MetricsRegistry registry;
  Gauge* g = registry.AddGauge("level", "");
  g->Set(1.5);
  registry.SampleAt(5.0);
  g->Set(2.5);
  registry.SampleAt(10.0);
  std::ostringstream os;
  registry.WriteSeriesCsv(os);
  EXPECT_EQ(os.str(),
            "sample_t,metric,value\n"
            "5,level,1.5\n"
            "10,level,2.5\n");
}

TEST(MetricsRegistryTest, SnapshotRestoreRoundTrip) {
  MetricsRegistry original;
  original.AddCounter("events", "help text")->Add(42);
  original.AddGauge("level", "")->Set(3.25);
  Histogram* h = original.AddHistogram("wait", "", 0.0, 4.0, 4);
  h->Add(1.0);
  h->Add(3.5);
  original.set_sample_every(10.0);
  original.SampleAt(10.0);
  original.SampleAt(20.0);

  ByteWriter blob;
  original.Snapshot(&blob);
  MetricsRegistry restored;
  ByteReader reader(blob.bytes());
  ASSERT_TRUE(restored.Restore(&reader).ok());

  EXPECT_EQ(restored.num_metrics(), 3u);
  EXPECT_EQ(restored.FindCounter("events")->value(), 42);
  EXPECT_DOUBLE_EQ(restored.FindGauge("level")->value(), 3.25);
  EXPECT_EQ(restored.FindHistogram("wait")->total_count(), 2);
  EXPECT_DOUBLE_EQ(restored.sample_every(), 10.0);
  EXPECT_EQ(restored.samples_taken(), 2);
  ASSERT_EQ(restored.series("events").size(), 2u);
  EXPECT_DOUBLE_EQ(restored.series("events")[1].t, 20.0);

  // A restored registry keeps sampling on the same grid: the next boundary
  // after 20 is 30 — continuity across a checkpoint/resume.
  restored.FindCounter("events")->Add(1);
  restored.MaybeSample(25.0);
  EXPECT_EQ(restored.series("events").size(), 2u);
  restored.MaybeSample(30.0);
  ASSERT_EQ(restored.series("events").size(), 3u);
  EXPECT_DOUBLE_EQ(restored.series("events")[2].t, 30.0);
  EXPECT_DOUBLE_EQ(restored.series("events")[2].value, 43.0);

  // Byte-identical snapshots from byte-identical state.
  ByteWriter blob_a;
  original.Snapshot(&blob_a);
  ByteWriter blob_b;
  MetricsRegistry copy;
  ByteReader reread(blob.bytes());
  ASSERT_TRUE(copy.Restore(&reread).ok());
  copy.Snapshot(&blob_b);
  EXPECT_EQ(blob_a.bytes(), blob_b.bytes());
}

TEST(MetricsRegistryTest, RestoreIntoPreRegisteredRegistry) {
  MetricsRegistry original;
  original.AddCounter("events", "")->Add(5);
  ByteWriter blob;
  original.Snapshot(&blob);

  MetricsRegistry target;
  Counter* pre = target.AddCounter("events", "");
  ByteReader reader(blob.bytes());
  ASSERT_TRUE(target.Restore(&reader).ok());
  // The pre-registered instrument object itself carries the restored value.
  EXPECT_EQ(pre->value(), 5);
}

TEST(MetricsRegistryTest, RestoreRejectsKindMismatch) {
  MetricsRegistry original;
  original.AddCounter("metric", "");
  ByteWriter blob;
  original.Snapshot(&blob);

  MetricsRegistry target;
  target.AddGauge("metric", "");
  ByteReader reader(blob.bytes());
  EXPECT_FALSE(target.Restore(&reader).ok());
}

TEST(MetricsRegistryTest, RestoreRejectsTruncatedBlob) {
  MetricsRegistry original;
  original.AddCounter("events", "")->Add(5);
  ByteWriter blob;
  original.Snapshot(&blob);
  const std::string truncated =
      blob.bytes().substr(0, blob.bytes().size() / 2);
  MetricsRegistry target;
  ByteReader reader(truncated);
  EXPECT_FALSE(target.Restore(&reader).ok());
}

}  // namespace
}  // namespace vod
