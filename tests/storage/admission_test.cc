#include "storage/admission.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(AdmissionTest, ReservesAndReleasesMovies) {
  AdmissionController controller(1000, 200.0);
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"movie-1", 360, 39.0}).ok());
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"movie-2", 60, 30.0}).ok());
  EXPECT_EQ(controller.reserved_streams(), 420);
  EXPECT_DOUBLE_EQ(controller.reserved_buffer_minutes(), 69.0);
  EXPECT_EQ(controller.reservations().size(), 2u);

  EXPECT_TRUE(controller.ReleaseMovie(1.0, "movie-1").ok());
  EXPECT_EQ(controller.reserved_streams(), 60);
  EXPECT_DOUBLE_EQ(controller.reserved_buffer_minutes(), 30.0);
}

TEST(AdmissionTest, DuplicateReservationRejected) {
  AdmissionController controller(1000, 200.0);
  ASSERT_TRUE(controller.ReserveMovie(0.0, {"m", 10, 5.0}).ok());
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"m", 10, 5.0}).IsInvalidArgument());
}

TEST(AdmissionTest, ReleasingUnknownMovieIsNotFound) {
  AdmissionController controller(100, 100.0);
  EXPECT_TRUE(controller.ReleaseMovie(0.0, "ghost").IsNotFound());
}

TEST(AdmissionTest, StreamExhaustionRejectsReservation) {
  AdmissionController controller(100, 1000.0);
  EXPECT_TRUE(controller.ReserveMovie(0.0, {"a", 80, 10.0}).ok());
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"b", 30, 10.0}).IsResourceExhausted());
  // The failed reservation left nothing behind.
  EXPECT_EQ(controller.reserved_streams(), 80);
  EXPECT_EQ(controller.reservations().size(), 1u);
}

TEST(AdmissionTest, BufferExhaustionRollsBackStreams) {
  AdmissionController controller(1000, 50.0);
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"a", 100, 60.0}).IsResourceExhausted());
  // Streams grabbed before the buffer failure were returned.
  EXPECT_EQ(controller.stream_pool().in_use(), 0);
  EXPECT_EQ(controller.reserved_streams(), 0);
}

TEST(AdmissionTest, DynamicStreamsShareTheReserve) {
  AdmissionController controller(10, 100.0);
  ASSERT_TRUE(controller.ReserveMovie(0.0, {"a", 8, 10.0}).ok());
  EXPECT_TRUE(controller.AcquireDynamicStream(1.0).ok());
  EXPECT_TRUE(controller.AcquireDynamicStream(1.0).ok());
  EXPECT_EQ(controller.dynamic_streams_in_use(), 2);
  // Reserve exhausted: 8 + 2 == 10.
  EXPECT_TRUE(controller.AcquireDynamicStream(2.0).IsResourceExhausted());
  EXPECT_TRUE(controller.ReleaseDynamicStream(3.0).ok());
  EXPECT_TRUE(controller.AcquireDynamicStream(3.5).ok());
}

TEST(AdmissionTest, ReleaseDynamicWithoutAcquireIsInternal) {
  AdmissionController controller(10, 10.0);
  EXPECT_TRUE(controller.ReleaseDynamicStream(0.0).IsInternal());
}

TEST(AdmissionTest, RejectsNegativeReservation) {
  AdmissionController controller(10, 10.0);
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"a", -1, 5.0}).IsInvalidArgument());
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"a", 1, -5.0}).IsInvalidArgument());
}

}  // namespace
}  // namespace vod
