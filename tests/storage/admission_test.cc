#include "storage/admission.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(AdmissionTest, ReservesAndReleasesMovies) {
  AdmissionController controller(1000, 200.0);
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"movie-1", 360, 39.0}).ok());
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"movie-2", 60, 30.0}).ok());
  EXPECT_EQ(controller.reserved_streams(), 420);
  EXPECT_DOUBLE_EQ(controller.reserved_buffer_minutes(), 69.0);
  EXPECT_EQ(controller.reservations().size(), 2u);

  EXPECT_TRUE(controller.ReleaseMovie(1.0, "movie-1").ok());
  EXPECT_EQ(controller.reserved_streams(), 60);
  EXPECT_DOUBLE_EQ(controller.reserved_buffer_minutes(), 30.0);
}

TEST(AdmissionTest, DuplicateReservationRejected) {
  AdmissionController controller(1000, 200.0);
  ASSERT_TRUE(controller.ReserveMovie(0.0, {"m", 10, 5.0}).ok());
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"m", 10, 5.0}).IsInvalidArgument());
}

TEST(AdmissionTest, ReleasingUnknownMovieIsNotFound) {
  AdmissionController controller(100, 100.0);
  EXPECT_TRUE(controller.ReleaseMovie(0.0, "ghost").IsNotFound());
}

TEST(AdmissionTest, StreamExhaustionRejectsReservation) {
  AdmissionController controller(100, 1000.0);
  EXPECT_TRUE(controller.ReserveMovie(0.0, {"a", 80, 10.0}).ok());
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"b", 30, 10.0}).IsResourceExhausted());
  // The failed reservation left nothing behind.
  EXPECT_EQ(controller.reserved_streams(), 80);
  EXPECT_EQ(controller.reservations().size(), 1u);
}

TEST(AdmissionTest, BufferExhaustionRollsBackStreams) {
  AdmissionController controller(1000, 50.0);
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"a", 100, 60.0}).IsResourceExhausted());
  // Streams grabbed before the buffer failure were returned.
  EXPECT_EQ(controller.stream_pool().in_use(), 0);
  EXPECT_EQ(controller.reserved_streams(), 0);
}

TEST(AdmissionTest, DynamicStreamsShareTheReserve) {
  AdmissionController controller(10, 100.0);
  ASSERT_TRUE(controller.ReserveMovie(0.0, {"a", 8, 10.0}).ok());
  EXPECT_TRUE(controller.AcquireDynamicStream(1.0).ok());
  EXPECT_TRUE(controller.AcquireDynamicStream(1.0).ok());
  EXPECT_EQ(controller.dynamic_streams_in_use(), 2);
  // Reserve exhausted: 8 + 2 == 10.
  EXPECT_TRUE(controller.AcquireDynamicStream(2.0).IsResourceExhausted());
  EXPECT_TRUE(controller.ReleaseDynamicStream(3.0).ok());
  EXPECT_TRUE(controller.AcquireDynamicStream(3.5).ok());
}

TEST(AdmissionTest, ReleaseDynamicWithoutAcquireIsInternal) {
  AdmissionController controller(10, 10.0);
  EXPECT_TRUE(controller.ReleaseDynamicStream(0.0).IsInternal());
}

TEST(AdmissionTest, ReleasingUnknownMovieLeavesAccountingUnchanged) {
  AdmissionController controller(100, 100.0);
  ASSERT_TRUE(controller.ReserveMovie(0.0, {"real", 40, 25.0}).ok());
  EXPECT_TRUE(controller.ReleaseMovie(1.0, "ghost").IsNotFound());
  EXPECT_EQ(controller.reserved_streams(), 40);
  EXPECT_DOUBLE_EQ(controller.reserved_buffer_minutes(), 25.0);
  EXPECT_EQ(controller.stream_pool().in_use(), 40);
  EXPECT_NEAR(controller.buffer_pool().in_use(), 25.0, 1e-12);
  EXPECT_EQ(controller.reservations().size(), 1u);
}

TEST(AdmissionTest, DoubleReserveRollbackLeavesPoolsUnchanged) {
  AdmissionController controller(100, 100.0);
  ASSERT_TRUE(controller.ReserveMovie(0.0, {"m", 30, 20.0}).ok());
  // A duplicate reservation must fail *without* acquiring or leaking
  // anything, even when the pools could cover it.
  EXPECT_TRUE(
      controller.ReserveMovie(1.0, {"m", 30, 20.0}).IsInvalidArgument());
  EXPECT_EQ(controller.reserved_streams(), 30);
  EXPECT_DOUBLE_EQ(controller.reserved_buffer_minutes(), 20.0);
  EXPECT_EQ(controller.stream_pool().in_use(), 30);
  EXPECT_NEAR(controller.buffer_pool().in_use(), 20.0, 1e-12);
  EXPECT_EQ(controller.reservations().size(), 1u);
}

TEST(AdmissionTest, ZeroAmountReservationIsAccepted) {
  // A movie can legitimately pre-allocate zero streams (pure buffering) or
  // zero buffer (pure batching); the controller must not trip the pools'
  // count > 0 validation on those.
  AdmissionController controller(100, 100.0);
  EXPECT_TRUE(controller.ReserveMovie(0.0, {"buffer-only", 0, 30.0}).ok());
  EXPECT_TRUE(controller.ReserveMovie(0.0, {"stream-only", 10, 0.0}).ok());
  EXPECT_EQ(controller.stream_pool().in_use(), 10);
  EXPECT_NEAR(controller.buffer_pool().in_use(), 30.0, 1e-12);
  EXPECT_TRUE(controller.ReleaseMovie(1.0, "buffer-only").ok());
  EXPECT_TRUE(controller.ReleaseMovie(1.0, "stream-only").ok());
  EXPECT_EQ(controller.stream_pool().in_use(), 0);
  EXPECT_NEAR(controller.buffer_pool().in_use(), 0.0, 1e-12);
}

TEST(AdmissionTest, CapacityLossOversubscribesWithoutDroppingReservations) {
  AdmissionController controller(100, 100.0);
  ASSERT_TRUE(controller.ReserveMovie(0.0, {"m", 80, 60.0}).ok());
  ASSERT_TRUE(controller.SetTotalStreams(1.0, 50).ok());
  ASSERT_TRUE(controller.SetTotalBufferMinutes(1.0, 40.0).ok());
  // Reservations survive; the pools report oversubscription and refuse new
  // work until the overhang drains.
  EXPECT_EQ(controller.reserved_streams(), 80);
  EXPECT_TRUE(controller.stream_pool().oversubscribed());
  EXPECT_EQ(controller.stream_pool().oversubscription(), 30);
  EXPECT_EQ(controller.stream_pool().available(), 0);
  EXPECT_TRUE(controller.buffer_pool().oversubscribed());
  EXPECT_TRUE(controller.AcquireDynamicStream(2.0).IsResourceExhausted());
  // Releasing the movie drains the overhang.
  ASSERT_TRUE(controller.ReleaseMovie(3.0, "m").ok());
  EXPECT_FALSE(controller.stream_pool().oversubscribed());
  EXPECT_EQ(controller.stream_pool().available(), 50);
  EXPECT_TRUE(controller.AcquireDynamicStream(4.0).ok());
}

TEST(AdmissionTest, RejectsNegativeReservation) {
  AdmissionController controller(10, 10.0);
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"a", -1, 5.0}).IsInvalidArgument());
  EXPECT_TRUE(
      controller.ReserveMovie(0.0, {"a", 1, -5.0}).IsInvalidArgument());
}

}  // namespace
}  // namespace vod
