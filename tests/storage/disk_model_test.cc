#include "storage/disk_model.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

DiskModel PaperDiskModel() {
  auto model = DiskModel::Create(DiskSpec{}, VideoFormat{});
  EXPECT_TRUE(model.ok());
  return *model;
}

TEST(DiskModelTest, PaperExampleTwoArithmetic) {
  // 2GB SCSI @ 5 MB/s, $700; MPEG-2 at 4 Mbps = 0.5 MB/s = 30 MB/min.
  const DiskModel model = PaperDiskModel();
  EXPECT_DOUBLE_EQ(model.StreamsPerDisk(), 10.0);
  EXPECT_DOUBLE_EQ(model.CostPerStream(), 70.0);
  EXPECT_DOUBLE_EQ(model.format().MBytesPerMinute(), 30.0);
  // 2 GB = 2048 MB stores 68.27 minutes.
  EXPECT_NEAR(model.StorageMinutesPerDisk(), 2048.0 / 30.0, 1e-9);
}

TEST(DiskModelTest, DiskCountsRoundUp) {
  const DiskModel model = PaperDiskModel();
  EXPECT_EQ(model.DisksForStorage(0.0), 0);
  EXPECT_EQ(model.DisksForStorage(68.0), 1);
  EXPECT_EQ(model.DisksForStorage(69.0), 2);
  EXPECT_EQ(model.DisksForBandwidth(0), 0);
  EXPECT_EQ(model.DisksForBandwidth(10), 1);
  EXPECT_EQ(model.DisksForBandwidth(11), 2);
  EXPECT_EQ(model.DisksForBandwidth(1230), 123);
}

TEST(DiskModelTest, RequiredIsMaxOfBothConstraints) {
  const DiskModel model = PaperDiskModel();
  // Storage-bound: a large library, few streams.
  EXPECT_EQ(model.DisksRequired(10000.0, 10),
            model.DisksForStorage(10000.0));
  // Bandwidth-bound: Example 1's 602 streams dominate 225 minutes of video.
  EXPECT_EQ(model.DisksRequired(225.0, 602), model.DisksForBandwidth(602));
}

TEST(DiskModelTest, RejectsInvalidSpecs) {
  DiskSpec bad_disk;
  bad_disk.price_dollars = -1.0;
  EXPECT_TRUE(
      DiskModel::Create(bad_disk, VideoFormat{}).status().IsInvalidArgument());
  VideoFormat bad_format;
  bad_format.bitrate_mbits_per_sec = 0.0;
  EXPECT_TRUE(
      DiskModel::Create(DiskSpec{}, bad_format).status().IsInvalidArgument());
  // A format too fat for the disk's bandwidth.
  VideoFormat fat;
  fat.bitrate_mbits_per_sec = 100.0;
  EXPECT_TRUE(
      DiskModel::Create(DiskSpec{}, fat).status().IsInvalidArgument());
}

TEST(DiskModelTest, ModernHardwareScalesSanely) {
  DiskSpec nvme;
  nvme.capacity_gbytes = 2000.0;
  nvme.transfer_mbytes_per_sec = 3000.0;
  nvme.price_dollars = 150.0;
  VideoFormat h264;
  h264.bitrate_mbits_per_sec = 8.0;
  const auto model = DiskModel::Create(nvme, h264);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->StreamsPerDisk(), 3000.0);
  EXPECT_DOUBLE_EQ(model->CostPerStream(), 0.05);
}

}  // namespace
}  // namespace vod
