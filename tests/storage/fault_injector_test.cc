#include "storage/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

DiskFaultProfile Profile(double mtbf, double mttr) {
  DiskFaultProfile p;
  p.mtbf_minutes = mtbf;
  p.mttr_minutes = mttr;
  return p;
}

TEST(DiskFaultProfileTest, Validation) {
  EXPECT_TRUE(Profile(4000.0, 120.0).Validate().ok());
  EXPECT_TRUE(Profile(0.0, 120.0).Validate().IsInvalidArgument());
  EXPECT_TRUE(Profile(4000.0, 0.0).Validate().IsInvalidArgument());
  EXPECT_TRUE(Profile(-1.0, 120.0).Validate().IsInvalidArgument());
}

TEST(DiskFaultProfileTest, StationaryAvailability) {
  EXPECT_NEAR(Profile(300.0, 100.0).StationaryAvailability(), 0.75, 1e-12);
  // MTTR -> 0 approaches an always-up disk.
  EXPECT_NEAR(Profile(300.0, 1e-9).StationaryAvailability(), 1.0, 1e-9);
}

TEST(SplitCapacityTest, DistributesRemainder) {
  const auto shares = FaultInjector::SplitCapacity(10, 4);
  ASSERT_EQ(shares.size(), 4u);
  EXPECT_EQ(shares[0], 3);
  EXPECT_EQ(shares[1], 3);
  EXPECT_EQ(shares[2], 2);
  EXPECT_EQ(shares[3], 2);
  int64_t total = 0;
  for (int64_t s : shares) total += s;
  EXPECT_EQ(total, 10);
}

TEST(FaultInjectorTest, ScheduleIsDeterministic) {
  FaultInjector a(FaultInjector::SplitCapacity(100, 4),
                  Profile(2000.0, 200.0), Rng(7));
  FaultInjector b(FaultInjector::SplitCapacity(100, 4),
                  Profile(2000.0, 200.0), Rng(7));
  const auto sa = a.Schedule(50000.0);
  const auto sb = b.Schedule(50000.0);
  ASSERT_EQ(sa.size(), sb.size());
  ASSERT_FALSE(sa.empty());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].time, sb[i].time);
    EXPECT_EQ(sa[i].disk, sb[i].disk);
    EXPECT_EQ(sa[i].failure, sb[i].failure);
    EXPECT_EQ(sa[i].capacity_after, sb[i].capacity_after);
  }
}

TEST(FaultInjectorTest, CapacityTrajectoryIsConsistent) {
  FaultInjector injector(FaultInjector::SplitCapacity(120, 6),
                         Profile(1500.0, 300.0), Rng(42));
  const auto schedule = injector.Schedule(100000.0);
  ASSERT_FALSE(schedule.empty());
  int64_t capacity = injector.total_capacity();
  double last_time = 0.0;
  for (const FaultEvent& ev : schedule) {
    EXPECT_GE(ev.time, last_time);
    EXPECT_LT(ev.time, 100000.0);
    last_time = ev.time;
    EXPECT_EQ(ev.capacity_delta, ev.failure ? -std::abs(ev.capacity_delta)
                                            : std::abs(ev.capacity_delta));
    capacity += ev.capacity_delta;
    EXPECT_EQ(ev.capacity_after, capacity);
    EXPECT_GE(capacity, 0);
    EXPECT_LE(capacity, injector.total_capacity());
  }
}

TEST(FaultInjectorTest, PerDiskEventsAlternateFailureRepair) {
  FaultInjector injector(FaultInjector::SplitCapacity(40, 2),
                         Profile(800.0, 100.0), Rng(3));
  const auto schedule = injector.Schedule(200000.0);
  bool expect_failure[2] = {true, true};
  for (const FaultEvent& ev : schedule) {
    ASSERT_GE(ev.disk, 0);
    ASSERT_LT(ev.disk, 2);
    EXPECT_EQ(ev.failure, expect_failure[ev.disk]);
    expect_failure[ev.disk] = !expect_failure[ev.disk];
  }
}

TEST(FaultInjectorTest, HugeMtbfYieldsEmptySchedule) {
  FaultInjector injector(FaultInjector::SplitCapacity(100, 4),
                         Profile(1e15, 10.0), Rng(1));
  EXPECT_TRUE(injector.Schedule(50000.0).empty());
}

TEST(FaultInjectorTest, AddingDiskDoesNotPerturbOthers) {
  // Per-disk child RNG streams: disk 0's trajectory is identical whether
  // the farm has 2 or 3 disks.
  FaultInjector two(std::vector<int64_t>{10, 10}, Profile(1000.0, 100.0),
                    Rng(99));
  FaultInjector three(std::vector<int64_t>{10, 10, 10},
                      Profile(1000.0, 100.0), Rng(99));
  const auto s2 = two.Schedule(30000.0);
  const auto s3 = three.Schedule(30000.0);
  std::vector<double> disk0_two, disk0_three;
  for (const auto& ev : s2) {
    if (ev.disk == 0) disk0_two.push_back(ev.time);
  }
  for (const auto& ev : s3) {
    if (ev.disk == 0) disk0_three.push_back(ev.time);
  }
  EXPECT_EQ(disk0_two, disk0_three);
}

}  // namespace
}  // namespace vod
