#include "storage/round_scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

RoundScheduler PaperScheduler() {
  auto scheduler = RoundScheduler::Create(DiskGeometry{}, 4.0);
  EXPECT_TRUE(scheduler.ok());
  return *scheduler;
}

TEST(DiskGeometryTest, Validation) {
  EXPECT_TRUE(DiskGeometry{}.Validate().ok());
  DiskGeometry bad;
  bad.rotation_ms = 0.0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = DiskGeometry{};
  bad.track_to_track_ms = 30.0;  // exceeds full stroke
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(DiskGeometryTest, ScanSeekShrinksWithStops) {
  const DiskGeometry geometry;
  EXPECT_DOUBLE_EQ(geometry.ScanSeekMs(1), geometry.max_seek_ms);
  EXPECT_GT(geometry.ScanSeekMs(2), geometry.ScanSeekMs(10));
  // Many stops approach the track-to-track floor.
  EXPECT_NEAR(geometry.ScanSeekMs(100000), geometry.track_to_track_ms, 1e-3);
}

TEST(RoundSchedulerTest, CreateValidation) {
  EXPECT_TRUE(RoundScheduler::Create(DiskGeometry{}, 0.0)
                  .status()
                  .IsInvalidArgument());
  // 40 Mbps stream on a 5 MB/s disk: rate equals bandwidth.
  EXPECT_TRUE(RoundScheduler::Create(DiskGeometry{}, 40.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(RoundSchedulerTest, BandwidthBoundMatchesExampleTwo) {
  // 5 MB/s ÷ 0.5 MB/s = 10 streams — the paper's ideal figure.
  EXPECT_DOUBLE_EQ(PaperScheduler().BandwidthBoundStreams(), 10.0);
}

TEST(RoundSchedulerTest, LongRoundsApproachTheBandwidthBound) {
  const RoundScheduler scheduler = PaperScheduler();
  EXPECT_EQ(scheduler.MaxStreamsPerDisk(1000.0), 9);  // < 10, never 10
  EXPECT_LT(scheduler.MaxStreamsPerDisk(0.5),
            scheduler.MaxStreamsPerDisk(10.0));
}

TEST(RoundSchedulerTest, ShortRoundsPayTheOverhead) {
  const RoundScheduler scheduler = PaperScheduler();
  // At R = 0.05 s the per-stream overhead (~10–25 ms) dominates.
  EXPECT_LE(scheduler.MaxStreamsPerDisk(0.05), 2);
  EXPECT_EQ(scheduler.MaxStreamsPerDisk(0.0), 0);
}

TEST(RoundSchedulerTest, ServiceTimeComposition) {
  const RoundScheduler scheduler = PaperScheduler();
  const double round = 1.0;
  // One stream: seek(1) + rotation + block/transfer.
  const double expected =
      (17.0 + 8.33) / 1000.0 + scheduler.BlockMBytes(round) / 5.0;
  EXPECT_NEAR(scheduler.RoundServiceSeconds(1, round), expected, 1e-12);
  EXPECT_DOUBLE_EQ(scheduler.RoundServiceSeconds(0, round), 0.0);
  // Monotone in k.
  for (int k = 2; k <= 10; ++k) {
    EXPECT_GT(scheduler.RoundServiceSeconds(k, round),
              scheduler.RoundServiceSeconds(k - 1, round));
  }
}

TEST(RoundSchedulerTest, MinRoundInvertsMaxStreams) {
  const RoundScheduler scheduler = PaperScheduler();
  for (int k = 1; k <= 9; ++k) {
    const auto round = scheduler.MinRoundSecondsForStreams(k);
    ASSERT_TRUE(round.ok()) << k;
    // At exactly that round length, k streams fit...
    EXPECT_LE(scheduler.RoundServiceSeconds(k, *round), *round + 1e-9);
    EXPECT_GE(scheduler.MaxStreamsPerDisk(*round + 1e-9), k);
    // ...and a slightly shorter round does not sustain k.
    if (*round > 1e-6) {
      EXPECT_LT(scheduler.MaxStreamsPerDisk(*round * 0.9), k);
    }
  }
}

TEST(RoundSchedulerTest, BandwidthBoundIsInfeasible) {
  const RoundScheduler scheduler = PaperScheduler();
  EXPECT_TRUE(scheduler.MinRoundSecondsForStreams(10).status().IsInfeasible());
  EXPECT_TRUE(scheduler.MinRoundSecondsForStreams(11).status().IsInfeasible());
  EXPECT_DOUBLE_EQ(*scheduler.MinRoundSecondsForStreams(0), 0.0);
}

TEST(RoundSchedulerTest, BufferAndLatencyScaleWithRound) {
  const RoundScheduler scheduler = PaperScheduler();
  // Block at R = 2 s: 0.5 MB/s · 2 = 1 MB; double-buffered for 8 streams:
  // 16 MB.
  EXPECT_DOUBLE_EQ(scheduler.BlockMBytes(2.0), 1.0);
  EXPECT_DOUBLE_EQ(scheduler.BufferPerDiskMBytes(8, 2.0), 16.0);
  EXPECT_DOUBLE_EQ(scheduler.StartupLatencySeconds(2.0), 4.0);
}

TEST(RoundSchedulerTest, TradeoffCurveIsSane) {
  // The operator's knob: longer rounds buy streams with buffer + latency.
  const RoundScheduler scheduler = PaperScheduler();
  int previous = 0;
  for (double round : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const int streams = scheduler.MaxStreamsPerDisk(round);
    EXPECT_GE(streams, previous);
    previous = streams;
  }
  EXPECT_GE(previous, 8);  // long rounds get close to the bound of 10
}

TEST(RoundSchedulerTest, ModernDiskSustainsManyStreams) {
  DiskGeometry nvme_like;
  nvme_like.max_seek_ms = 0.1;  // effectively no seeks
  nvme_like.track_to_track_ms = 0.05;
  nvme_like.rotation_ms = 0.01;
  nvme_like.transfer_mbytes_per_sec = 3000.0;
  const auto scheduler = RoundScheduler::Create(nvme_like, 8.0);
  ASSERT_TRUE(scheduler.ok());
  EXPECT_DOUBLE_EQ(scheduler->BandwidthBoundStreams(), 3000.0);
  EXPECT_GT(scheduler->MaxStreamsPerDisk(1.0), 2500);
}

}  // namespace
}  // namespace vod
