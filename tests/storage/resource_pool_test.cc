#include "storage/resource_pool.h"

#include <gtest/gtest.h>

#include <limits>

namespace vod {
namespace {

TEST(StreamPoolTest, AcquireReleaseAccounting) {
  StreamPool pool(10);
  EXPECT_EQ(pool.capacity(), 10);
  EXPECT_EQ(pool.available(), 10);
  EXPECT_TRUE(pool.Acquire(1.0, 4).ok());
  EXPECT_EQ(pool.in_use(), 4);
  EXPECT_EQ(pool.available(), 6);
  EXPECT_TRUE(pool.Release(2.0, 3).ok());
  EXPECT_EQ(pool.in_use(), 1);
  EXPECT_EQ(pool.peak_in_use(), 4);
}

TEST(StreamPoolTest, RejectsOverCapacityWithoutSideEffects) {
  StreamPool pool(5);
  EXPECT_TRUE(pool.Acquire(0.0, 5).ok());
  const Status s = pool.Acquire(1.0, 1);
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_EQ(pool.in_use(), 5);
  EXPECT_EQ(pool.rejected(), 1);
}

TEST(StreamPoolTest, CanAcquirePredicts) {
  StreamPool pool(3);
  EXPECT_TRUE(pool.CanAcquire(3));
  EXPECT_FALSE(pool.CanAcquire(4));
  ASSERT_TRUE(pool.Acquire(0.0, 2).ok());
  EXPECT_TRUE(pool.CanAcquire(1));
  EXPECT_FALSE(pool.CanAcquire(2));
}

TEST(StreamPoolTest, OverReleaseIsInternalError) {
  StreamPool pool(5);
  ASSERT_TRUE(pool.Acquire(0.0, 2).ok());
  EXPECT_TRUE(pool.Release(1.0, 3).IsInternal());
}

TEST(StreamPoolTest, TimeWeightedUtilization) {
  StreamPool pool(10, "disks");
  ASSERT_TRUE(pool.Acquire(0.0, 10).ok());   // full for [0, 5)
  ASSERT_TRUE(pool.Release(5.0, 10).ok());   // empty for [5, 10)
  EXPECT_NEAR(pool.MeanInUse(10.0), 5.0, 1e-12);
  EXPECT_NEAR(pool.MeanUtilization(10.0), 0.5, 1e-12);
  EXPECT_EQ(pool.name(), "disks");
}

TEST(StreamPoolTest, ZeroCapacityRejectsEverything) {
  StreamPool pool(0);
  EXPECT_TRUE(pool.Acquire(0.0, 1).IsResourceExhausted());
}

TEST(StreamPoolTest, NonPositiveCountsAreInvalidArgument) {
  StreamPool pool(5);
  EXPECT_TRUE(pool.Acquire(0.0, 0).IsInvalidArgument());
  EXPECT_TRUE(pool.Acquire(0.0, -3).IsInvalidArgument());
  EXPECT_TRUE(pool.Release(0.0, 0).IsInvalidArgument());
  EXPECT_TRUE(pool.Release(0.0, -1).IsInvalidArgument());
  EXPECT_EQ(pool.in_use(), 0);
  EXPECT_EQ(pool.rejected(), 0);  // invalid != rejected-for-capacity
}

TEST(StreamPoolTest, SetCapacityGrowAndShrink) {
  StreamPool pool(10);
  ASSERT_TRUE(pool.Acquire(0.0, 4).ok());
  ASSERT_TRUE(pool.SetCapacity(1.0, 20).ok());
  EXPECT_EQ(pool.capacity(), 20);
  EXPECT_EQ(pool.available(), 16);
  ASSERT_TRUE(pool.SetCapacity(2.0, 6).ok());
  EXPECT_EQ(pool.available(), 2);
  EXPECT_TRUE(pool.SetCapacity(3.0, -1).IsInvalidArgument());
  EXPECT_EQ(pool.capacity(), 6);
}

TEST(StreamPoolTest, OversubscribedPoolNeverReportsNegativeAvailable) {
  StreamPool pool(10);
  ASSERT_TRUE(pool.Acquire(0.0, 8).ok());
  // Capacity drops below in-use (a disk died): the pool is oversubscribed,
  // available() clamps at zero, and new acquires are refused.
  ASSERT_TRUE(pool.SetCapacity(1.0, 5).ok());
  EXPECT_EQ(pool.in_use(), 8);
  EXPECT_EQ(pool.available(), 0);
  EXPECT_TRUE(pool.oversubscribed());
  EXPECT_EQ(pool.oversubscription(), 3);
  EXPECT_FALSE(pool.CanAcquire(1));
  EXPECT_TRUE(pool.Acquire(1.5, 1).IsResourceExhausted());
  // The overhang drains as holders release.
  ASSERT_TRUE(pool.Release(2.0, 2).ok());
  EXPECT_EQ(pool.oversubscription(), 1);
  EXPECT_EQ(pool.available(), 0);
  ASSERT_TRUE(pool.Release(3.0, 2).ok());
  EXPECT_FALSE(pool.oversubscribed());
  EXPECT_EQ(pool.available(), 1);
  ASSERT_TRUE(pool.Acquire(4.0, 1).ok());
  EXPECT_EQ(pool.available(), 0);
}

TEST(BufferPoolTest, FractionalAccounting) {
  BufferPool pool(113.5);
  EXPECT_TRUE(pool.Acquire(0.0, 39.0).ok());
  EXPECT_TRUE(pool.Acquire(0.0, 30.0).ok());
  EXPECT_TRUE(pool.Acquire(0.0, 44.5).ok());
  EXPECT_NEAR(pool.in_use(), 113.5, 1e-12);
  EXPECT_TRUE(pool.Acquire(1.0, 0.1).IsResourceExhausted());
  EXPECT_TRUE(pool.Release(2.0, 44.5).ok());
  EXPECT_NEAR(pool.available(), 44.5, 1e-9);
}

TEST(BufferPoolTest, ToleratesRoundingAtExactCapacity) {
  BufferPool pool(1.0);
  EXPECT_TRUE(pool.Acquire(0.0, 0.3).ok());
  EXPECT_TRUE(pool.Acquire(0.0, 0.3).ok());
  EXPECT_TRUE(pool.Acquire(0.0, 0.4).ok());  // sums to 1.0 ± epsilon
}

TEST(BufferPoolTest, OverReleaseIsInternalError) {
  BufferPool pool(10.0);
  ASSERT_TRUE(pool.Acquire(0.0, 1.0).ok());
  EXPECT_TRUE(pool.Release(0.0, 2.0).IsInternal());
}

TEST(BufferPoolTest, NonPositiveAmountsAreInvalidArgument) {
  BufferPool pool(10.0);
  EXPECT_TRUE(pool.Acquire(0.0, 0.0).IsInvalidArgument());
  EXPECT_TRUE(pool.Acquire(0.0, -1.5).IsInvalidArgument());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(pool.Acquire(0.0, nan).IsInvalidArgument());
  EXPECT_TRUE(pool.Release(0.0, 0.0).IsInvalidArgument());
  EXPECT_TRUE(pool.Release(0.0, -2.0).IsInvalidArgument());
  EXPECT_NEAR(pool.in_use(), 0.0, 1e-12);
}

TEST(BufferPoolTest, SetCapacityAndOversubscription) {
  BufferPool pool(100.0);
  ASSERT_TRUE(pool.Acquire(0.0, 80.0).ok());
  ASSERT_TRUE(pool.SetCapacity(1.0, 50.0).ok());
  EXPECT_NEAR(pool.available(), 0.0, 1e-12);
  EXPECT_TRUE(pool.oversubscribed());
  EXPECT_NEAR(pool.oversubscription(), 30.0, 1e-9);
  EXPECT_TRUE(pool.Acquire(1.5, 0.5).IsResourceExhausted());
  ASSERT_TRUE(pool.Release(2.0, 40.0).ok());
  EXPECT_FALSE(pool.oversubscribed());
  EXPECT_NEAR(pool.available(), 10.0, 1e-9);
  EXPECT_TRUE(pool.SetCapacity(3.0, -5.0).IsInvalidArgument());
}

}  // namespace
}  // namespace vod
