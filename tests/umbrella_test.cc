// Compile-level check: the umbrella header is self-contained and exposes
// the whole public surface.

#include "vod.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(UmbrellaTest, EndToEndThroughTheSingleInclude) {
  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  ASSERT_TRUE(layout.ok());
  const auto duration = ParseDistributionSpec("gamma(2,4)");
  ASSERT_TRUE(duration.ok());
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  ASSERT_TRUE(model.ok());
  const auto p = model->HitProbability(VcrOp::kFastForward, *duration);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.6818, 0.001);
}

}  // namespace
}  // namespace vod
