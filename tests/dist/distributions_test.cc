#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dist/deterministic.h"
#include "dist/distribution.h"
#include "dist/empirical.h"
#include "dist/exponential.h"
#include "dist/gamma.h"
#include "dist/lognormal.h"
#include "dist/mixture.h"
#include "dist/pareto.h"
#include "dist/uniform.h"
#include "dist/weibull.h"
#include "numerics/quadrature.h"
#include "stats/ks_test.h"

namespace vod {
namespace {

struct DistCase {
  std::string label;
  DistributionPtr dist;
  bool continuous = true;  // false for point masses (no density / KS test)
  // Heavy-tailed (infinite higher moments): numeric-integral and
  // sample-moment checks are unreliable; closed forms are covered by the
  // distribution's dedicated tests.
  bool heavy_tailed = false;
};

std::vector<DistCase> AllCases() {
  std::vector<DistCase> cases;
  cases.push_back({"exp(5)", std::make_shared<ExponentialDistribution>(5.0)});
  cases.push_back({"exp(0.25)",
                   std::make_shared<ExponentialDistribution>(0.25)});
  cases.push_back({"gamma(2,4)",
                   std::make_shared<GammaDistribution>(2.0, 4.0)});
  cases.push_back({"gamma(0.5,1)",
                   std::make_shared<GammaDistribution>(0.5, 1.0)});
  cases.push_back({"gamma(9,0.5)",
                   std::make_shared<GammaDistribution>(9.0, 0.5)});
  cases.push_back({"uniform(2,7)",
                   std::make_shared<UniformDistribution>(2.0, 7.0)});
  cases.push_back({"weibull(1.5,3)",
                   std::make_shared<WeibullDistribution>(1.5, 3.0)});
  cases.push_back({"weibull(0.8,2)",
                   std::make_shared<WeibullDistribution>(0.8, 2.0)});
  cases.push_back({"lognormal(0,0.5)",
                   std::make_shared<LognormalDistribution>(0.0, 0.5)});
  cases.push_back({"lognormal(1,1)",
                   std::make_shared<LognormalDistribution>(1.0, 1.0)});
  cases.push_back({"lomax(2.5,6)",
                   std::make_shared<LomaxDistribution>(2.5, 6.0),
                   /*continuous=*/true, /*heavy_tailed=*/true});
  cases.push_back({"det(3)",
                   std::make_shared<DeterministicDistribution>(3.0),
                   /*continuous=*/false});
  cases.push_back(
      {"mixture(exp+uniform)",
       std::make_shared<MixtureDistribution>(std::vector<MixtureComponent>{
           {std::make_shared<ExponentialDistribution>(2.0), 0.3},
           {std::make_shared<UniformDistribution>(1.0, 4.0), 0.7}})});
  return cases;
}

class DistributionPropertyTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionPropertyTest, CdfIsMonotoneWithCorrectLimits) {
  const auto& dist = *GetParam().dist;
  const double lo = dist.SupportLower();
  EXPECT_LE(dist.Cdf(lo - 1.0), 1e-12);
  double probe_hi = std::isfinite(dist.SupportUpper())
                        ? dist.SupportUpper()
                        : dist.Quantile(1.0 - 1e-9);
  EXPECT_NEAR(dist.Cdf(probe_hi), 1.0, 1e-6);
  double previous = -1.0;
  for (int i = 0; i <= 200; ++i) {
    const double x = lo - 1.0 + (probe_hi - lo + 2.0) * i / 200.0;
    const double f = dist.Cdf(x);
    ASSERT_GE(f, previous - 1e-12) << GetParam().label << " x=" << x;
    ASSERT_GE(f, -1e-15);
    ASSERT_LE(f, 1.0 + 1e-12);
    previous = f;
  }
}

TEST_P(DistributionPropertyTest, PdfIsDerivativeOfCdf) {
  if (!GetParam().continuous) GTEST_SKIP() << "no density";
  const auto& dist = *GetParam().dist;
  const double sigma = std::sqrt(dist.Variance());
  const double h = 1e-5 * (1.0 + sigma);
  for (int i = 1; i <= 9; ++i) {
    const double p = i / 10.0;
    const double x = dist.Quantile(p);
    const double numeric = (dist.Cdf(x + h) - dist.Cdf(x - h)) / (2.0 * h);
    const double pdf = dist.Pdf(x);
    EXPECT_NEAR(numeric, pdf, 1e-3 * (1.0 + pdf))
        << GetParam().label << " at quantile " << p;
  }
}

TEST_P(DistributionPropertyTest, PdfIntegratesToCdfMass) {
  if (!GetParam().continuous) GTEST_SKIP() << "no density";
  // Integrate the density over the central 90% of the distribution (some
  // densities are singular at the support boundary, e.g. gamma with
  // shape < 1) and compare with the CDF mass of the same window.
  const auto& dist = *GetParam().dist;
  const double lo = dist.Quantile(0.05);
  const double hi = dist.Quantile(0.95);
  const double mass =
      CompositeGaussLegendre([&](double x) { return dist.Pdf(x); }, lo, hi,
                             512, 8);
  EXPECT_NEAR(mass, dist.Cdf(hi) - dist.Cdf(lo), 1e-3) << GetParam().label;
}

TEST_P(DistributionPropertyTest, MeanMatchesNumericIntegral) {
  const auto& dist = *GetParam().dist;
  if (!GetParam().continuous) {
    EXPECT_DOUBLE_EQ(dist.Mean(), 3.0);
    return;
  }
  if (GetParam().heavy_tailed) {
    GTEST_SKIP() << "heavy tail defeats fixed-grid quadrature";
  }
  // E[X] for X >= lo: lo + ∫_lo^∞ (1 - F) dx.
  const double lo = dist.SupportLower();
  const double hi = std::isfinite(dist.SupportUpper())
                        ? dist.SupportUpper()
                        : dist.Quantile(1.0 - 1e-12);
  const double tail =
      CompositeGaussLegendre([&](double x) { return 1.0 - dist.Cdf(x); }, lo,
                             hi, 1024, 8);
  EXPECT_NEAR(dist.Mean(), lo + tail, 2e-3 * (1.0 + std::fabs(dist.Mean())))
      << GetParam().label;
}

TEST_P(DistributionPropertyTest, QuantileRoundTrips) {
  const auto& dist = *GetParam().dist;
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = dist.Quantile(p);
    if (GetParam().continuous) {
      EXPECT_NEAR(dist.Cdf(x), p, 1e-6) << GetParam().label << " p=" << p;
    } else {
      EXPECT_GE(dist.Cdf(x), p);  // generalized inverse for atoms
    }
  }
}

TEST_P(DistributionPropertyTest, SamplesStayInSupport) {
  const auto& dist = *GetParam().dist;
  Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const double x = dist.Sample(&rng);
    ASSERT_GE(x, dist.SupportLower() - 1e-9) << GetParam().label;
    ASSERT_LE(x, dist.SupportUpper() + 1e-9) << GetParam().label;
  }
}

TEST_P(DistributionPropertyTest, SampleMomentsMatch) {
  const auto& dist = *GetParam().dist;
  Rng rng(99);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = dist.Sample(&rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  if (GetParam().heavy_tailed) {
    // The variance estimator does not converge at this n when the fourth
    // moment is infinite; only sanity-check the mean.
    EXPECT_NEAR(mean, dist.Mean(), 0.1 * dist.Mean()) << GetParam().label;
    return;
  }
  const double mean_tol =
      5.0 * std::sqrt(dist.Variance() / n) + 1e-9;  // ~5σ of the estimator
  EXPECT_NEAR(mean, dist.Mean(), mean_tol) << GetParam().label;
  EXPECT_NEAR(var, dist.Variance(),
              0.1 * dist.Variance() + 1e-9)
      << GetParam().label;
}

TEST_P(DistributionPropertyTest, SamplerPassesKsTest) {
  if (!GetParam().continuous) GTEST_SKIP() << "degenerate";
  const auto& dist = *GetParam().dist;
  Rng rng(31337);
  std::vector<double> samples;
  samples.reserve(5000);
  for (int i = 0; i < 5000; ++i) samples.push_back(dist.Sample(&rng));
  const KsTestResult ks = KolmogorovSmirnovTest(
      std::move(samples), [&](double x) { return dist.Cdf(x); });
  // A correct sampler fails at the 0.001 level with probability 0.001; the
  // seed is fixed so this is deterministic in practice.
  EXPECT_GT(ks.p_value, 0.001) << GetParam().label << " D=" << ks.statistic;
}

TEST_P(DistributionPropertyTest, CloneBehavesIdentically) {
  const auto& dist = *GetParam().dist;
  const auto clone = dist.Clone();
  EXPECT_EQ(clone->ToString(), dist.ToString());
  for (double x : {0.1, 1.0, 2.5, 10.0}) {
    EXPECT_DOUBLE_EQ(clone->Cdf(x), dist.Cdf(x));
    EXPECT_DOUBLE_EQ(clone->Pdf(x), dist.Pdf(x));
  }
  EXPECT_DOUBLE_EQ(clone->Mean(), dist.Mean());
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionPropertyTest,
    ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      std::string name = info.param.label;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

// ---- closed-form spot checks -------------------------------------------

TEST(ExponentialTest, ClosedForms) {
  ExponentialDistribution d(5.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 25.0);
  EXPECT_NEAR(d.Cdf(5.0), 1.0 - std::exp(-1.0), 1e-15);
  EXPECT_NEAR(d.Quantile(0.5), 5.0 * std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.Cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Pdf(-1.0), 0.0);
}

TEST(GammaTest, PaperParameters) {
  // Fig. 7's "skewed gamma with mean 8 (α=2, γ=4)".
  GammaDistribution d(2.0, 4.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 8.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 32.0);
  // P(2, x/4) = 1 - (1 + x/4) e^{-x/4}.
  EXPECT_NEAR(d.Cdf(8.0), 1.0 - 3.0 * std::exp(-2.0), 1e-12);
}

TEST(GammaTest, PdfAtZeroByShape) {
  EXPECT_DOUBLE_EQ(GammaDistribution(2.0, 1.0).Pdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(GammaDistribution(1.0, 2.0).Pdf(0.0), 0.5);
  EXPECT_TRUE(std::isinf(GammaDistribution(0.5, 1.0).Pdf(0.0)));
}

TEST(UniformTest, ClosedForms) {
  UniformDistribution d(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 4.0);
  EXPECT_NEAR(d.Variance(), 16.0 / 12.0, 1e-15);
  EXPECT_DOUBLE_EQ(d.Cdf(3.0), 0.25);
  EXPECT_DOUBLE_EQ(d.Quantile(0.25), 3.0);
  EXPECT_DOUBLE_EQ(d.Pdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Pdf(3.0), 0.25);
}

TEST(DeterministicTest, StepCdf) {
  DeterministicDistribution d(3.0);
  EXPECT_DOUBLE_EQ(d.Cdf(2.999), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(d.Sample(&rng), 3.0);
}

TEST(WeibullTest, ShapeOneIsExponential) {
  WeibullDistribution w(1.0, 4.0);
  ExponentialDistribution e(4.0);
  for (double x : {0.5, 1.0, 4.0, 9.0}) {
    EXPECT_NEAR(w.Cdf(x), e.Cdf(x), 1e-14);
    EXPECT_NEAR(w.Pdf(x), e.Pdf(x), 1e-14);
  }
  EXPECT_NEAR(w.Mean(), 4.0, 1e-12);
}

TEST(LognormalTest, MedianIsExpMu) {
  LognormalDistribution d(1.0, 0.7);
  EXPECT_NEAR(d.Quantile(0.5), std::exp(1.0), 1e-9);
  EXPECT_NEAR(d.Cdf(std::exp(1.0)), 0.5, 1e-12);
}

TEST(LomaxTest, ClosedForms) {
  LomaxDistribution d(2.5, 6.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 4.0);               // s/(a-1)
  EXPECT_NEAR(d.Variance(), 36.0 * 2.5 / (1.5 * 1.5 * 0.5), 1e-12);
  EXPECT_NEAR(d.Cdf(6.0), 1.0 - std::pow(2.0, -2.5), 1e-15);
  EXPECT_NEAR(d.Quantile(d.Cdf(3.0)), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(d.Cdf(-1.0), 0.0);
}

TEST(LomaxTest, HeavyTailDominatesExponentialOfSameMean) {
  // Same mean 4: the Lomax tail must exceed the exponential tail far out.
  LomaxDistribution heavy = LomaxDistribution::FromMean(4.0, 2.5);
  ExponentialDistribution light(4.0);
  EXPECT_DOUBLE_EQ(heavy.Mean(), 4.0);
  EXPECT_GT(1.0 - heavy.Cdf(40.0), 1.0 - light.Cdf(40.0));
  EXPECT_GT((1.0 - heavy.Cdf(80.0)) / (1.0 - light.Cdf(80.0)), 100.0);
}

TEST(LomaxTest, InfiniteMomentsReported) {
  EXPECT_TRUE(std::isinf(LomaxDistribution(0.8, 1.0).Mean()));
  EXPECT_TRUE(std::isinf(LomaxDistribution(1.5, 1.0).Variance()));
}

TEST(MixtureTest, MomentsCombine) {
  const auto a = std::make_shared<DeterministicDistribution>(2.0);
  const auto b = std::make_shared<DeterministicDistribution>(10.0);
  MixtureDistribution mix({{a, 1.0}, {b, 3.0}});  // weights normalize to .25/.75
  EXPECT_DOUBLE_EQ(mix.Mean(), 0.25 * 2.0 + 0.75 * 10.0);
  // Var = E[X²] − mean²  = .25·4 + .75·100 − 8²
  EXPECT_DOUBLE_EQ(mix.Variance(), 0.25 * 4.0 + 0.75 * 100.0 - 64.0);
  EXPECT_DOUBLE_EQ(mix.Cdf(5.0), 0.25);
}

TEST(EmpiricalTest, MatchesSourceSamples) {
  std::vector<double> samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  EmpiricalDistribution d(samples);
  EXPECT_DOUBLE_EQ(d.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.SupportLower(), 1.0);
  EXPECT_DOUBLE_EQ(d.SupportUpper(), 5.0);
  EXPECT_DOUBLE_EQ(d.Cdf(3.0), 0.5);
  EXPECT_DOUBLE_EQ(d.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(5.0), 1.0);
}

TEST(EmpiricalTest, ApproximatesSourceDistribution) {
  ExponentialDistribution source(3.0);
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(source.Sample(&rng));
  EmpiricalDistribution d(std::move(samples));
  EXPECT_NEAR(d.Mean(), 3.0, 0.15);
  for (double x : {1.0, 3.0, 6.0}) {
    EXPECT_NEAR(d.Cdf(x), source.Cdf(x), 0.02) << "x=" << x;
  }
}

// ---- spec parser ----------------------------------------------------------

TEST(ParseDistributionSpecTest, ParsesAllFamilies) {
  for (const char* spec :
       {"exp(5)", "exponential(2.5)", "gamma(2, 4)", "uniform(0, 10)",
        "det(7)", "deterministic(7)", "weibull(1.5, 3)",
        "lognormal(0, 1)", "lomax(2.5, 6)", "pareto2(3, 1)",
        "  GAMMA( 2 , 4 ) "}) {
    const auto parsed = ParseDistributionSpec(spec);
    EXPECT_TRUE(parsed.ok()) << spec << ": " << parsed.status();
  }
}

TEST(ParseDistributionSpecTest, ParsedGammaMatchesDirect) {
  const auto parsed = ParseDistributionSpec("gamma(2,4)");
  ASSERT_TRUE(parsed.ok());
  GammaDistribution direct(2.0, 4.0);
  EXPECT_DOUBLE_EQ((*parsed)->Mean(), direct.Mean());
  EXPECT_DOUBLE_EQ((*parsed)->Cdf(5.0), direct.Cdf(5.0));
}

TEST(ParseDistributionSpecTest, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", "gamma", "gamma(", "gamma(2", "gamma(2,4", "gamma(2,4,6)",
        "exp()", "exp(abc)", "unknown(1)", "exp(-1)", "gamma(0,1)",
        "uniform(5,2)", "lognormal(0,0)", "lomax(0,1)"}) {
    EXPECT_TRUE(ParseDistributionSpec(spec).status().IsInvalidArgument())
        << spec;
  }
}

}  // namespace
}  // namespace vod
