// Statistical suite: Kolmogorov–Smirnov goodness-of-fit for every sampler
// the simulations lean on, at several parameterizations and several fixed
// seeds per case.
//
// distributions_test.cc runs one quick KS check per distribution as a
// smoke test; this suite is the heavier net (ctest label `statistical`):
// 20k samples per (distribution, seed) cell, three decorrelated seeds per
// parameterization, and a Bonferroni-style acceptance — a sampler whose
// transform is subtly wrong (e.g. a gamma boost rejection bug that only
// shows at small shape) fails here even when a single 5k-sample run slips
// through. Seeds are fixed, so the suite is fully deterministic.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "dist/distribution.h"
#include "dist/gamma.h"
#include "dist/lognormal.h"
#include "dist/mixture.h"
#include "dist/pareto.h"
#include "dist/weibull.h"
#include "stats/ks_test.h"

namespace vod {
namespace {

struct KsCase {
  std::string label;
  DistributionPtr dist;
};

std::vector<KsCase> Cases() {
  std::vector<KsCase> cases;
  // Gamma across the regimes its sampler switches between (shape < 1,
  // shape == 1, shape > 1).
  cases.push_back({"gamma_shape0_5", std::make_shared<GammaDistribution>(0.5, 2.0)});
  cases.push_back({"gamma_shape1", std::make_shared<GammaDistribution>(1.0, 4.0)});
  cases.push_back({"gamma_shape2", std::make_shared<GammaDistribution>(2.0, 4.0)});
  cases.push_back({"gamma_shape9", std::make_shared<GammaDistribution>(9.0, 0.5)});
  // Lognormal: moderate and high sigma (heavy right tail).
  cases.push_back({"lognormal_sigma0_5",
                   std::make_shared<LognormalDistribution>(1.0, 0.5)});
  cases.push_back({"lognormal_sigma1_5",
                   std::make_shared<LognormalDistribution>(0.0, 1.5)});
  // Weibull: decreasing (k<1), exponential (k=1), and bell-ish (k>1) hazard.
  cases.push_back({"weibull_k0_7", std::make_shared<WeibullDistribution>(0.7, 5.0)});
  cases.push_back({"weibull_k1", std::make_shared<WeibullDistribution>(1.0, 8.0)});
  cases.push_back({"weibull_k3", std::make_shared<WeibullDistribution>(3.0, 10.0)});
  // Lomax (Pareto type II): the bench's heavy-tailed duration model.
  cases.push_back({"lomax_mean8_shape2_5",
                   std::make_shared<LomaxDistribution>(
                       LomaxDistribution::FromMean(8.0, 2.5))});
  cases.push_back({"lomax_mean8_shape1_5",
                   std::make_shared<LomaxDistribution>(
                       LomaxDistribution::FromMean(8.0, 1.5))});
  // Mixtures: component selection plus component sampling must both be
  // right for the empirical CDF to match the convex-combination CDF.
  cases.push_back(
      {"mixture_bimodal",
       std::make_shared<MixtureDistribution>(std::vector<MixtureComponent>{
           {std::make_shared<GammaDistribution>(2.0, 1.0), 0.7},
           {std::make_shared<LognormalDistribution>(3.0, 0.3), 0.3}})});
  cases.push_back(
      {"mixture_short_skips_long_scans",
       std::make_shared<MixtureDistribution>(std::vector<MixtureComponent>{
           {std::make_shared<WeibullDistribution>(1.5, 2.0), 0.8},
           {std::make_shared<LomaxDistribution>(
                LomaxDistribution::FromMean(30.0, 2.5)),
            0.2}})});
  return cases;
}

class SamplerKsTest : public ::testing::TestWithParam<KsCase> {};

TEST_P(SamplerKsTest, EmpiricalCdfMatchesAnalyticCdf) {
  const auto& dist = *GetParam().dist;
  constexpr int kSamples = 20000;
  // Three decorrelated streams per case. With 13 cases x 3 seeds = 39
  // deterministic cells at the 1e-4 level, a correct sampler essentially
  // never trips; a biased one reliably does at n = 20000.
  for (uint64_t seed : {0x5EEDBA5Eu, 0xBADCAB1Eu, 0x0DDBA11u}) {
    Rng rng(seed);
    std::vector<double> samples;
    samples.reserve(kSamples);
    for (int i = 0; i < kSamples; ++i) samples.push_back(dist.Sample(&rng));
    const KsTestResult ks = KolmogorovSmirnovTest(
        std::move(samples), [&](double x) { return dist.Cdf(x); });
    EXPECT_GT(ks.p_value, 1e-4)
        << GetParam().label << " seed=" << seed << " D=" << ks.statistic
        << " n=" << ks.sample_size;
  }
}

TEST_P(SamplerKsTest, SamplesStayInsideTheSupport) {
  const auto& dist = *GetParam().dist;
  Rng rng(20240707);
  for (int i = 0; i < 5000; ++i) {
    const double x = dist.Sample(&rng);
    EXPECT_GE(x, dist.SupportLower()) << GetParam().label;
    EXPECT_LE(x, dist.SupportUpper()) << GetParam().label;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, SamplerKsTest,
                         ::testing::ValuesIn(Cases()),
                         [](const ::testing::TestParamInfo<KsCase>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace vod
