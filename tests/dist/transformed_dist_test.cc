#include "dist/transformed.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dist/exponential.h"
#include "dist/gamma.h"
#include "dist/uniform.h"
#include "stats/ks_test.h"

namespace vod {
namespace {

TEST(TruncatedTest, CdfRescalesBaseMass) {
  auto base = std::make_shared<ExponentialDistribution>(2.0);
  TruncatedDistribution trunc(base, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(trunc.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(trunc.Cdf(6.0), 1.0);
  const double mass = base->Cdf(5.0) - base->Cdf(1.0);
  EXPECT_NEAR(trunc.Cdf(3.0), (base->Cdf(3.0) - base->Cdf(1.0)) / mass,
              1e-14);
  EXPECT_NEAR(trunc.Pdf(3.0), base->Pdf(3.0) / mass, 1e-14);
}

TEST(TruncatedTest, MeanInsideWindow) {
  auto base = std::make_shared<ExponentialDistribution>(2.0);
  TruncatedDistribution trunc(base, 1.0, 5.0);
  const double mean = trunc.Mean();
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 5.0);
  // Exponential memorylessness: E[X | 1 <= X <= 5] computable directly.
  // E = ∫ x f dx / mass with f = e^{-x/2}/2.
  const auto integrand = [&](double x) { return x * base->Pdf(x); };
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = 1.0 + 4.0 * (i + 0.5) / n;
    acc += integrand(x) * 4.0 / n;
  }
  const double expected = acc / (base->Cdf(5.0) - base->Cdf(1.0));
  EXPECT_NEAR(mean, expected, 1e-4);
}

TEST(TruncatedTest, SamplesStayInWindowAndMatchCdf) {
  auto base = std::make_shared<GammaDistribution>(2.0, 4.0);
  TruncatedDistribution trunc(base, 2.0, 20.0);
  Rng rng(17);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) {
    const double x = trunc.Sample(&rng);
    ASSERT_GE(x, 2.0);
    ASSERT_LE(x, 20.0);
    samples.push_back(x);
  }
  const KsTestResult ks = KolmogorovSmirnovTest(
      std::move(samples), [&](double x) { return trunc.Cdf(x); });
  EXPECT_GT(ks.p_value, 0.001) << "D=" << ks.statistic;
}

TEST(TruncatedTest, RejectsEmptyMassWindow) {
  auto base = std::make_shared<UniformDistribution>(0.0, 1.0);
  EXPECT_DEATH(TruncatedDistribution(base, 5.0, 6.0), "no mass");
}

TEST(WrappedTest, CdfReachesOneAtPeriod) {
  auto base = std::make_shared<ExponentialDistribution>(10.0);
  WrappedDistribution wrapped(base, 4.0);
  EXPECT_DOUBLE_EQ(wrapped.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrapped.Cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(wrapped.Cdf(3.999999), wrapped.Cdf(3.999999));
  EXPECT_GT(wrapped.Cdf(2.0), 0.0);
  EXPECT_LT(wrapped.Cdf(2.0), 1.0);
}

TEST(WrappedTest, MatchesFoldedMassExponential) {
  // For Exp(mean) mod P, P(X mod P <= x) = Σ_k [F(x+kP) − F(kP)] has the
  // closed form (1 − e^{-x/m}) / (1 − e^{-P/m}).
  const double m = 3.0;
  const double period = 5.0;
  auto base = std::make_shared<ExponentialDistribution>(m);
  WrappedDistribution wrapped(base, period);
  for (double x : {0.5, 1.0, 2.5, 4.0, 4.9}) {
    const double expected = (1.0 - std::exp(-x / m)) /
                            (1.0 - std::exp(-period / m));
    EXPECT_NEAR(wrapped.Cdf(x), expected, 1e-10) << "x=" << x;
  }
}

TEST(WrappedTest, SamplerMatchesCdf) {
  auto base = std::make_shared<GammaDistribution>(2.0, 4.0);
  WrappedDistribution wrapped(base, 6.0);
  Rng rng(23);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) {
    const double x = wrapped.Sample(&rng);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 6.0);
    samples.push_back(x);
  }
  const KsTestResult ks = KolmogorovSmirnovTest(
      std::move(samples), [&](double x) { return wrapped.Cdf(x); });
  EXPECT_GT(ks.p_value, 0.001) << "D=" << ks.statistic;
}

TEST(WrappedTest, NoOpWhenPeriodCoversSupportMass) {
  // Wrapping at a period far beyond the effective support changes nothing.
  auto base = std::make_shared<GammaDistribution>(2.0, 1.0);
  WrappedDistribution wrapped(base, 200.0);
  for (double x : {0.5, 2.0, 8.0}) {
    EXPECT_NEAR(wrapped.Cdf(x), base->Cdf(x), 1e-10);
  }
  EXPECT_NEAR(wrapped.Mean(), base->Mean(), 1e-6);
}

TEST(WrappedTest, MeanIsBelowPeriod) {
  auto base = std::make_shared<ExponentialDistribution>(50.0);
  WrappedDistribution wrapped(base, 7.0);
  const double mean = wrapped.Mean();
  EXPECT_GT(mean, 0.0);
  EXPECT_LT(mean, 7.0);
  // A heavily folded exponential is nearly uniform: mean ≈ period/2.
  EXPECT_NEAR(mean, 3.5, 0.15);
  EXPECT_NEAR(wrapped.Variance(), 49.0 / 12.0, 0.3);
}

}  // namespace
}  // namespace vod
