#include "dist/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vod {
namespace {

TEST(LogGammaTest, IntegerFactorials) {
  // Γ(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-13);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-13);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-11);
}

TEST(LogGammaTest, HalfIntegerValues) {
  // Γ(1/2) = √π, Γ(3/2) = √π / 2.
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-12);
  EXPECT_NEAR(LogGamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-12);
}

TEST(LogGammaTest, RecurrenceHolds) {
  // Γ(x+1) = x Γ(x) ⇒ lnΓ(x+1) = ln x + lnΓ(x).
  for (double x : {0.3, 0.9, 1.7, 4.2, 13.5}) {
    EXPECT_NEAR(LogGamma(x + 1.0), std::log(x) + LogGamma(x), 1e-11)
        << "x=" << x;
  }
}

TEST(LogGammaTest, MatchesStdLgamma) {
  for (double x : {0.1, 0.5, 1.0, 2.5, 10.0, 100.0, 1000.0}) {
    EXPECT_NEAR(LogGamma(x), std::lgamma(x), 1e-10 * (1.0 + std::lgamma(x)))
        << "x=" << x;
  }
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 50.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ShapeOneIsExponential) {
  // P(1, x) = 1 - e^{-x}.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-13)
        << "x=" << x;
  }
}

TEST(RegularizedGammaTest, ShapeTwoClosedForm) {
  // P(2, x) = 1 - (1 + x) e^{-x}.
  for (double x : {0.2, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    EXPECT_NEAR(RegularizedGammaP(2.0, x), 1.0 - (1.0 + x) * std::exp(-x),
                1e-12)
        << "x=" << x;
  }
}

TEST(RegularizedGammaTest, PPlusQIsOne) {
  for (double a : {0.3, 1.0, 2.0, 7.5, 50.0}) {
    for (double x : {0.01, 0.5, 1.0, 5.0, 49.0, 120.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, MonotoneInX) {
  double previous = -1.0;
  for (double x = 0.0; x <= 30.0; x += 0.25) {
    const double p = RegularizedGammaP(3.5, x);
    ASSERT_GE(p, previous - 1e-14);
    previous = p;
  }
}

TEST(RegularizedGammaTest, MedianOfShape3) {
  // Median of Gamma(3, 1) ≈ 2.674060... (known reference value).
  const double median = 2.67406031372;
  EXPECT_NEAR(RegularizedGammaP(3.0, median), 0.5, 1e-9);
}

TEST(StandardNormalCdfTest, ReferenceValues) {
  EXPECT_NEAR(StandardNormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(StandardNormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(StandardNormalQuantileTest, RoundTripsThroughCdf) {
  for (double p : {0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999}) {
    EXPECT_NEAR(StandardNormalCdf(StandardNormalQuantile(p)), p, 1e-10)
        << "p=" << p;
  }
}

TEST(StandardNormalQuantileTest, KnownQuantiles) {
  EXPECT_NEAR(StandardNormalQuantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(StandardNormalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(StandardNormalQuantile(0.95), 1.6448536269514722, 1e-9);
}

}  // namespace
}  // namespace vod
