#include "stats/ks_test.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dist/exponential.h"
#include "dist/uniform.h"

namespace vod {
namespace {

TEST(KolmogorovSurvivalTest, KnownValues) {
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(-1.0), 1.0);
  // Q(1.36) ≈ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.049, 0.002);
  EXPECT_LT(KolmogorovSurvival(2.0), 0.001);
  EXPECT_GT(KolmogorovSurvival(0.5), 0.95);
}

TEST(KolmogorovSurvivalTest, MonotoneDecreasing) {
  double previous = 1.0;
  for (double t = 0.1; t <= 3.0; t += 0.1) {
    const double q = KolmogorovSurvival(t);
    ASSERT_LE(q, previous + 1e-15);
    previous = q;
  }
}

TEST(KsTest, AcceptsCorrectHypothesis) {
  UniformDistribution dist(0.0, 1.0);
  Rng rng(8);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(dist.Sample(&rng));
  const KsTestResult r = KolmogorovSmirnovTest(
      std::move(samples), [&](double x) { return dist.Cdf(x); });
  EXPECT_GT(r.p_value, 0.01);
  EXPECT_LT(r.statistic, 0.05);
  EXPECT_EQ(r.sample_size, 2000);
}

TEST(KsTest, RejectsWrongHypothesis) {
  ExponentialDistribution truth(2.0);
  UniformDistribution wrong(0.0, 4.0);
  Rng rng(9);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(truth.Sample(&rng));
  const KsTestResult r = KolmogorovSmirnovTest(
      std::move(samples), [&](double x) { return wrong.Cdf(x); });
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, DetectsShiftedDistribution) {
  ExponentialDistribution truth(2.0);
  ExponentialDistribution shifted(2.6);
  Rng rng(10);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(truth.Sample(&rng));
  const KsTestResult r = KolmogorovSmirnovTest(
      std::move(samples), [&](double x) { return shifted.Cdf(x); });
  EXPECT_LT(r.p_value, 0.01);
}

TEST(KsTest, EmptySampleIsTrivial) {
  const KsTestResult r =
      KolmogorovSmirnovTest({}, [](double x) { return x; });
  EXPECT_EQ(r.sample_size, 0);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(KsTest, StatisticIsSupremumDistance) {
  // Two samples at 0.5 against U(0,1): D = |1 - 0.5| = 0.5.
  const KsTestResult r = KolmogorovSmirnovTest(
      {0.5, 0.5}, [](double x) { return std::clamp(x, 0.0, 1.0); });
  EXPECT_NEAR(r.statistic, 0.5, 1e-12);
}

}  // namespace
}  // namespace vod
