#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace vod {
namespace {

TEST(HistogramTest, BinGeometry) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.num_bins(), 5);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(4), 10.0);
}

TEST(HistogramTest, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.0);   // bin 0
  h.Add(1.99);  // bin 0
  h.Add(2.0);   // bin 1
  h.Add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(1), 1);
  EXPECT_EQ(h.bin_count(4), 1);
  EXPECT_EQ(h.total_count(), 4);
}

TEST(HistogramTest, OutOfRangeTracked) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-0.1);
  h.Add(1.0);  // upper edge is exclusive -> overflow
  h.Add(2.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.total_count(), 3);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Uniform01());
  double mass = 0.0;
  for (int i = 0; i < h.num_bins(); ++i) mass += h.Density(i) * 0.1;
  EXPECT_NEAR(mass, 1.0, 1e-12);
  for (int i = 0; i < h.num_bins(); ++i) {
    EXPECT_NEAR(h.Density(i), 1.0, 0.15) << "bin " << i;
  }
}

TEST(HistogramTest, EmpiricalCdfMatchesUniform) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(4);
  for (int i = 0; i < 50000; ++i) h.Add(rng.Uniform01());
  EXPECT_DOUBLE_EQ(h.EmpiricalCdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.EmpiricalCdf(1.0), 1.0);
  for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(h.EmpiricalCdf(x), x, 0.01) << "x=" << x;
  }
}

TEST(HistogramTest, EmptyHistogramSafeAccessors) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.Density(0), 0.0);
  EXPECT_DOUBLE_EQ(h.EmpiricalCdf(0.5), 0.0);
}

TEST(HistogramTest, AsciiRenderingHasOneLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  const std::string art = h.ToAscii(20);
  int lines = 0;
  for (char ch : art) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace vod
