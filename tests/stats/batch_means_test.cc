#include "stats/batch_means.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace vod {
namespace {

TEST(StudentTTest, TableValues) {
  EXPECT_NEAR(StudentT975(1), 12.706, 1e-3);
  EXPECT_NEAR(StudentT975(10), 2.228, 1e-3);
  EXPECT_NEAR(StudentT975(30), 2.042, 1e-3);
  EXPECT_NEAR(StudentT975(1000), 1.960, 1e-3);
  // Monotone decreasing toward the normal quantile.
  for (int dof = 2; dof <= 200; ++dof) {
    EXPECT_LE(StudentT975(dof), StudentT975(dof - 1));
  }
}

TEST(BatchMeansTest, TooFewBatchesIsInvalid) {
  BatchMeans bm(100);
  for (int i = 0; i < 150; ++i) bm.Add(1.0);  // only 1 complete batch
  EXPECT_EQ(bm.completed_batches(), 1);
  EXPECT_FALSE(bm.Interval().valid);
}

TEST(BatchMeansTest, ConstantStreamHasZeroWidth) {
  BatchMeans bm(10);
  for (int i = 0; i < 200; ++i) bm.Add(3.5);
  const BatchMeansInterval interval = bm.Interval();
  ASSERT_TRUE(interval.valid);
  EXPECT_DOUBLE_EQ(interval.mean, 3.5);
  EXPECT_DOUBLE_EQ(interval.half_width, 0.0);
  EXPECT_EQ(interval.batches_used, 20);
}

TEST(BatchMeansTest, PartialBatchIgnored) {
  BatchMeans bm(10);
  for (int i = 0; i < 25; ++i) bm.Add(static_cast<double>(i < 20 ? 1 : 100));
  // Two complete batches of ones; the 5 hundreds sit in the partial batch.
  const BatchMeansInterval interval = bm.Interval();
  ASSERT_TRUE(interval.valid);
  EXPECT_DOUBLE_EQ(interval.mean, 1.0);
  EXPECT_EQ(bm.total_count(), 25);
}

TEST(BatchMeansTest, IidCoverageIsRoughlyNominal) {
  // For i.i.d. normal data the 95% interval should cover the true mean in
  // ~95% of replications.
  Rng rng(13);
  int covered = 0;
  const int replications = 400;
  for (int rep = 0; rep < replications; ++rep) {
    BatchMeans bm(50);
    for (int i = 0; i < 1500; ++i) bm.Add(10.0 + rng.Normal());
    const BatchMeansInterval interval = bm.Interval();
    ASSERT_TRUE(interval.valid);
    if (interval.lower() <= 10.0 && 10.0 <= interval.upper()) ++covered;
  }
  const double coverage = static_cast<double>(covered) / replications;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

TEST(BatchMeansTest, CorrelatedStreamWidensInterval) {
  // AR(1)-style positively correlated stream: the batch-means interval must
  // be wider than the naive i.i.d. interval computed from the same points.
  Rng rng(14);
  BatchMeans bm(200);
  double state = 0.0;
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    state = 0.95 * state + rng.Normal();
    bm.Add(state);
    sum += state;
    sum2 += state * state;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  const double naive_half = 1.96 * std::sqrt(var / n);
  const BatchMeansInterval interval = bm.Interval();
  ASSERT_TRUE(interval.valid);
  EXPECT_GT(interval.half_width, 2.0 * naive_half);
}

TEST(BatchMeansTest, BernoulliStreamEstimatesProportion) {
  Rng rng(15);
  BatchMeans bm(500);
  const double p = 0.3;
  for (int i = 0; i < 20000; ++i) bm.Add(rng.Bernoulli(p) ? 1.0 : 0.0);
  const BatchMeansInterval interval = bm.Interval();
  ASSERT_TRUE(interval.valid);
  EXPECT_NEAR(interval.mean, p, 0.02);
  EXPECT_LT(interval.half_width, 0.03);
}

}  // namespace
}  // namespace vod
