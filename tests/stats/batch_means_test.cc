#include "stats/batch_means.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace vod {
namespace {

TEST(StudentTTest, TableValues) {
  EXPECT_NEAR(StudentT975(1), 12.706, 1e-3);
  EXPECT_NEAR(StudentT975(10), 2.228, 1e-3);
  EXPECT_NEAR(StudentT975(30), 2.042, 1e-3);
  EXPECT_NEAR(StudentT975(1000), 1.960, 1e-3);
  // Monotone decreasing toward the normal quantile.
  for (int dof = 2; dof <= 200; ++dof) {
    EXPECT_LE(StudentT975(dof), StudentT975(dof - 1));
  }
}

TEST(BatchMeansTest, TooFewBatchesIsInvalid) {
  BatchMeans bm(100);
  for (int i = 0; i < 150; ++i) bm.Add(1.0);  // only 1 complete batch
  EXPECT_EQ(bm.completed_batches(), 1);
  EXPECT_FALSE(bm.Interval().valid);
}

TEST(BatchMeansTest, ConstantStreamHasZeroWidth) {
  BatchMeans bm(10);
  for (int i = 0; i < 200; ++i) bm.Add(3.5);
  const BatchMeansInterval interval = bm.Interval();
  ASSERT_TRUE(interval.valid);
  EXPECT_DOUBLE_EQ(interval.mean, 3.5);
  EXPECT_DOUBLE_EQ(interval.half_width, 0.0);
  EXPECT_EQ(interval.batches_used, 20);
}

TEST(BatchMeansTest, PartialBatchIgnored) {
  BatchMeans bm(10);
  for (int i = 0; i < 25; ++i) bm.Add(static_cast<double>(i < 20 ? 1 : 100));
  // Two complete batches of ones; the 5 hundreds sit in the partial batch.
  const BatchMeansInterval interval = bm.Interval();
  ASSERT_TRUE(interval.valid);
  EXPECT_DOUBLE_EQ(interval.mean, 1.0);
  EXPECT_EQ(bm.total_count(), 25);
}

TEST(BatchMeansTest, IidCoverageIsRoughlyNominal) {
  // For i.i.d. normal data the 95% interval should cover the true mean in
  // ~95% of replications.
  Rng rng(13);
  int covered = 0;
  const int replications = 400;
  for (int rep = 0; rep < replications; ++rep) {
    BatchMeans bm(50);
    for (int i = 0; i < 1500; ++i) bm.Add(10.0 + rng.Normal());
    const BatchMeansInterval interval = bm.Interval();
    ASSERT_TRUE(interval.valid);
    if (interval.lower() <= 10.0 && 10.0 <= interval.upper()) ++covered;
  }
  const double coverage = static_cast<double>(covered) / replications;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

TEST(BatchMeansTest, CorrelatedStreamWidensInterval) {
  // AR(1)-style positively correlated stream: the batch-means interval must
  // be wider than the naive i.i.d. interval computed from the same points.
  Rng rng(14);
  BatchMeans bm(200);
  double state = 0.0;
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    state = 0.95 * state + rng.Normal();
    bm.Add(state);
    sum += state;
    sum2 += state * state;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  const double naive_half = 1.96 * std::sqrt(var / n);
  const BatchMeansInterval interval = bm.Interval();
  ASSERT_TRUE(interval.valid);
  EXPECT_GT(interval.half_width, 2.0 * naive_half);
}

TEST(BatchMeansMergeTest, RejectsBatchSizeMismatch) {
  BatchMeans a(10);
  BatchMeans b(20);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(BatchMeansMergeTest, ExactWithNonEmptyPartials) {
  // Regression for the old fold-the-partials merge, which closed a batch
  // mixing observations from two streams (and of the wrong size). With
  // per-stream batch formation the merged completed batches are exactly the
  // union of the shards' batches, and both partial remainders survive as
  // accountable observations.
  BatchMeans a(10);
  BatchMeans b(10);
  for (int i = 0; i < 27; ++i) a.Add(1.0);   // 2 batches + 7 partial
  for (int i = 0; i < 35; ++i) b.Add(5.0);   // 3 batches + 5 partial
  ASSERT_TRUE(a.Merge(b).ok());

  EXPECT_EQ(a.completed_batches(), 5);
  EXPECT_EQ(a.total_count(), 62);
  EXPECT_EQ(a.in_batch(), 7);       // a's own partial keeps filling
  EXPECT_EQ(a.pending_count(), 5);  // b's remainder carried, not folded
  EXPECT_EQ(a.total_count(),
            a.completed_batches() * 10 + a.in_batch() + a.pending_count());
  // The old merge would have closed a 12-observation batch averaging
  // (7*1 + 5*5)/12 ≈ 2.67 here; every surviving batch average must be a
  // pure per-stream value.
  for (double avg : a.batch_averages()) {
    EXPECT_TRUE(avg == 1.0 || avg == 5.0) << avg;
  }
  const BatchMeansInterval interval = a.Interval();
  ASSERT_TRUE(interval.valid);
  EXPECT_DOUBLE_EQ(interval.mean, (2 * 1.0 + 3 * 5.0) / 5.0);
}

TEST(BatchMeansMergeTest, OrderIndependentAcrossThreeShards) {
  Rng rng(21);
  std::vector<std::vector<double>> streams(3);
  for (int s = 0; s < 3; ++s) {
    const int n = 40 + static_cast<int>(rng.UniformInt(25));
    for (int i = 0; i < n; ++i) streams[s].push_back(rng.Uniform(0.0, 1.0));
  }
  auto collect = [&](int s) {
    BatchMeans bm(10);
    for (double x : streams[s]) bm.Add(x);
    return bm;
  };
  BatchMeans fwd = collect(0);
  ASSERT_TRUE(fwd.Merge(collect(1)).ok());
  ASSERT_TRUE(fwd.Merge(collect(2)).ok());
  BatchMeans rev = collect(2);
  ASSERT_TRUE(rev.Merge(collect(1)).ok());
  ASSERT_TRUE(rev.Merge(collect(0)).ok());

  EXPECT_EQ(fwd.total_count(), rev.total_count());
  EXPECT_EQ(fwd.completed_batches(), rev.completed_batches());
  EXPECT_EQ(fwd.in_batch() + fwd.pending_count(),
            rev.in_batch() + rev.pending_count());
  const BatchMeansInterval fi = fwd.Interval();
  const BatchMeansInterval ri = rev.Interval();
  ASSERT_TRUE(fi.valid);
  EXPECT_DOUBLE_EQ(fi.mean, ri.mean);
  EXPECT_DOUBLE_EQ(fi.half_width, ri.half_width);
}

TEST(BatchMeansMergeTest, AlignedShardsEqualSingleStream) {
  // When shard boundaries align with batch boundaries, merge still equals
  // single-stream collection exactly (the guarantee the old merge had only
  // in this case must be preserved).
  Rng rng(22);
  std::vector<double> xs;
  for (int i = 0; i < 60; ++i) xs.push_back(rng.Uniform(0.0, 2.0));
  BatchMeans single(10);
  for (double x : xs) single.Add(x);
  BatchMeans a(10);
  BatchMeans b(10);
  for (int i = 0; i < 30; ++i) a.Add(xs[i]);
  for (int i = 30; i < 60; ++i) b.Add(xs[i]);
  ASSERT_TRUE(a.Merge(b).ok());
  ASSERT_EQ(a.batch_averages().size(), single.batch_averages().size());
  for (size_t i = 0; i < a.batch_averages().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.batch_averages()[i], single.batch_averages()[i]);
  }
  EXPECT_EQ(a.pending_count(), 0);
  EXPECT_EQ(a.in_batch(), 0);
}

TEST(BatchMeansTest, BernoulliStreamEstimatesProportion) {
  Rng rng(15);
  BatchMeans bm(500);
  const double p = 0.3;
  for (int i = 0; i < 20000; ++i) bm.Add(rng.Bernoulli(p) ? 1.0 : 0.0);
  const BatchMeansInterval interval = bm.Interval();
  ASSERT_TRUE(interval.valid);
  EXPECT_NEAR(interval.mean, p, 0.02);
  EXPECT_LT(interval.half_width, 0.03);
}

}  // namespace
}  // namespace vod
