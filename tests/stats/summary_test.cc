#include "stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace vod {
namespace {

TEST(RunningStatsTest, EmptyStats) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ConfidenceHalfWidth(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, NumericallyStableWithLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.Add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-5);
  EXPECT_NEAR(s.variance(), 1.0, 1e-5);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(3);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal() * 3.0 + 1.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStatsTest, ConfidenceHalfWidthShrinksWithN) {
  Rng rng(7);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.Add(rng.Normal());
  for (int i = 0; i < 10000; ++i) large.Add(rng.Normal());
  EXPECT_GT(small.ConfidenceHalfWidth(), large.ConfidenceHalfWidth());
  // Half width ≈ 1.96 σ/√n.
  EXPECT_NEAR(large.ConfidenceHalfWidth(0.05),
              1.96 * large.stddev() / 100.0, 1e-3);
}

TEST(NormalQuantileTest, SupportedAlphas) {
  EXPECT_NEAR(TwoSidedNormalQuantile(0.05), 1.96, 0.001);
  EXPECT_NEAR(TwoSidedNormalQuantile(0.10), 1.645, 0.001);
  EXPECT_NEAR(TwoSidedNormalQuantile(0.01), 2.576, 0.001);
  EXPECT_NEAR(TwoSidedNormalQuantile(0.42), 1.96, 0.001);  // fallback
}

TEST(ProportionTest, EstimateAndCounts) {
  ProportionEstimator p;
  for (int i = 0; i < 30; ++i) p.AddSuccess();
  for (int i = 0; i < 70; ++i) p.AddFailure();
  EXPECT_EQ(p.trials(), 100);
  EXPECT_EQ(p.successes(), 30);
  EXPECT_DOUBLE_EQ(p.estimate(), 0.3);
}

TEST(ProportionTest, WilsonIntervalBracketsEstimate) {
  ProportionEstimator p;
  for (int i = 0; i < 250; ++i) p.Add(i % 5 == 0);  // 20%
  EXPECT_LT(p.WilsonLower(), p.estimate());
  EXPECT_GT(p.WilsonUpper(), p.estimate());
  EXPECT_GT(p.WilsonLower(), 0.13);
  EXPECT_LT(p.WilsonUpper(), 0.27);
}

TEST(ProportionTest, WilsonBehavesAtExtremes) {
  ProportionEstimator all;
  for (int i = 0; i < 50; ++i) all.AddSuccess();
  EXPECT_NEAR(all.WilsonUpper(), 1.0, 1e-12);
  EXPECT_GT(all.WilsonLower(), 0.9);
  EXPECT_LT(all.WilsonLower(), 1.0);  // never collapses to a point

  ProportionEstimator none;
  for (int i = 0; i < 50; ++i) none.AddFailure();
  EXPECT_NEAR(none.WilsonLower(), 0.0, 1e-12);
  EXPECT_GT(none.WilsonUpper(), 0.0);
  EXPECT_LT(none.WilsonUpper(), 0.1);
}

TEST(ProportionTest, EmptyHasFullInterval) {
  ProportionEstimator p;
  EXPECT_DOUBLE_EQ(p.estimate(), 0.0);
  EXPECT_DOUBLE_EQ(p.WilsonLower(), 0.0);
  EXPECT_DOUBLE_EQ(p.WilsonUpper(), 1.0);
}

}  // namespace
}  // namespace vod
