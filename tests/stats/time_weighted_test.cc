#include "stats/time_weighted.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(TimeWeightedTest, ConstantSignal) {
  TimeWeightedValue v;
  v.Reset(0.0, 3.0);
  EXPECT_DOUBLE_EQ(v.TimeAverage(10.0), 3.0);
  EXPECT_DOUBLE_EQ(v.current(), 3.0);
  EXPECT_DOUBLE_EQ(v.max(), 3.0);
  EXPECT_DOUBLE_EQ(v.min(), 3.0);
}

TEST(TimeWeightedTest, StepSignalAverages) {
  TimeWeightedValue v;
  v.Reset(0.0, 0.0);
  v.Set(2.0, 4.0);   // 0 for [0,2), 4 for [2,6), 1 for [6,10)
  v.Set(6.0, 1.0);
  // average = (0*2 + 4*4 + 1*4)/10 = 2.0
  EXPECT_DOUBLE_EQ(v.TimeAverage(10.0), 2.0);
  EXPECT_DOUBLE_EQ(v.max(), 4.0);
  EXPECT_DOUBLE_EQ(v.min(), 0.0);
}

TEST(TimeWeightedTest, AddDeltas) {
  TimeWeightedValue v;
  v.Reset(0.0, 1.0);
  v.Add(5.0, 2.0);   // 3 from t=5
  v.Add(10.0, -3.0); // 0 from t=10
  EXPECT_DOUBLE_EQ(v.current(), 0.0);
  // average over [0, 20] = (1*5 + 3*5 + 0*10)/20 = 1.0
  EXPECT_DOUBLE_EQ(v.TimeAverage(20.0), 1.0);
}

TEST(TimeWeightedTest, ZeroWidthWindow) {
  TimeWeightedValue v;
  v.Reset(5.0, 7.0);
  EXPECT_DOUBLE_EQ(v.TimeAverage(5.0), 0.0);
  EXPECT_DOUBLE_EQ(v.TimeAverage(4.0), 0.0);
}

TEST(TimeWeightedTest, ImplicitInitializationOnFirstSet) {
  TimeWeightedValue v;
  v.Set(3.0, 2.0);
  EXPECT_DOUBLE_EQ(v.TimeAverage(5.0), 2.0);
}

TEST(TimeWeightedTest, ResetDiscardsHistory) {
  TimeWeightedValue v;
  v.Reset(0.0, 100.0);
  v.Set(10.0, 1.0);
  v.Reset(10.0, 1.0);  // warmup cut
  EXPECT_DOUBLE_EQ(v.TimeAverage(20.0), 1.0);
  EXPECT_DOUBLE_EQ(v.max(), 1.0);
}

TEST(TimeWeightedTest, RepeatedSetsAtSameTime) {
  TimeWeightedValue v;
  v.Reset(0.0, 0.0);
  v.Set(1.0, 5.0);
  v.Set(1.0, 2.0);  // zero-width spike still updates extrema
  EXPECT_DOUBLE_EQ(v.max(), 5.0);
  EXPECT_DOUBLE_EQ(v.TimeAverage(2.0), 1.0);  // (0*1 + 2*1)/2
}

}  // namespace
}  // namespace vod
