#include "stats/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "dist/exponential.h"
#include "dist/lognormal.h"
#include "dist/uniform.h"

namespace vod {
namespace {

TEST(P2QuantileTest, EmptyIsNaN) {
  P2Quantile q(0.5);
  EXPECT_TRUE(std::isnan(q.Estimate()));
  EXPECT_EQ(q.count(), 0);
}

TEST(P2QuantileTest, ExactForSmallSamples) {
  P2Quantile median(0.5);
  median.Add(3.0);
  EXPECT_DOUBLE_EQ(median.Estimate(), 3.0);
  median.Add(1.0);
  EXPECT_DOUBLE_EQ(median.Estimate(), 2.0);  // interpolated
  median.Add(5.0);
  EXPECT_DOUBLE_EQ(median.Estimate(), 3.0);
  median.Add(7.0);
  EXPECT_DOUBLE_EQ(median.Estimate(), 4.0);
}

TEST(P2QuantileTest, UniformQuantiles) {
  Rng rng(8);
  P2Quantile p50(0.5);
  P2Quantile p90(0.9);
  P2Quantile p99(0.99);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.Uniform01();
    p50.Add(x);
    p90.Add(x);
    p99.Add(x);
  }
  EXPECT_NEAR(p50.Estimate(), 0.5, 0.01);
  EXPECT_NEAR(p90.Estimate(), 0.9, 0.01);
  EXPECT_NEAR(p99.Estimate(), 0.99, 0.005);
}

TEST(P2QuantileTest, ExponentialQuantiles) {
  ExponentialDistribution dist(5.0);
  Rng rng(9);
  P2Quantile p50(0.5);
  P2Quantile p99(0.99);
  for (int i = 0; i < 200000; ++i) {
    const double x = dist.Sample(&rng);
    p50.Add(x);
    p99.Add(x);
  }
  EXPECT_NEAR(p50.Estimate(), dist.Quantile(0.5), 0.05);
  EXPECT_NEAR(p99.Estimate(), dist.Quantile(0.99), 0.5);
}

TEST(P2QuantileTest, SkewedDistribution) {
  LognormalDistribution dist(0.0, 1.5);
  Rng rng(10);
  P2Quantile p90(0.9);
  std::vector<double> all;
  for (int i = 0; i < 100000; ++i) {
    const double x = dist.Sample(&rng);
    p90.Add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<size_t>(0.9 * all.size())];
  EXPECT_NEAR(p90.Estimate(), exact, 0.1 * exact);
}

TEST(P2QuantileTest, MonotoneAcrossQuantiles) {
  Rng rng(11);
  P2Quantile p25(0.25);
  P2Quantile p50(0.5);
  P2Quantile p75(0.75);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.Normal();
    p25.Add(x);
    p50.Add(x);
    p75.Add(x);
  }
  EXPECT_LT(p25.Estimate(), p50.Estimate());
  EXPECT_LT(p50.Estimate(), p75.Estimate());
}

TEST(P2QuantileTest, RejectsInvalidQuantile) {
  EXPECT_DEATH(P2Quantile(0.0), "quantile");
  EXPECT_DEATH(P2Quantile(1.0), "quantile");
}

TEST(LatencyQuantilesTest, BundleTracksAllThree) {
  LatencyQuantiles latency;
  Rng rng(12);
  for (int i = 0; i < 50000; ++i) latency.Add(rng.Uniform(0.0, 100.0));
  EXPECT_EQ(latency.count(), 50000);
  EXPECT_NEAR(latency.p50(), 50.0, 2.0);
  EXPECT_NEAR(latency.p90(), 90.0, 2.0);
  EXPECT_NEAR(latency.p99(), 99.0, 1.0);
  EXPECT_LT(latency.p50(), latency.p90());
  EXPECT_LT(latency.p90(), latency.p99());
}

}  // namespace
}  // namespace vod
