// Ablation: sensitivity of the measured hit probability to the viewer
// interactivity rate (time between VCR operations).
//
// The paper's model has no interactivity-rate parameter, and the paper does
// not state the rate its simulations used. This bench justifies both: the
// hit probability is flat in the rate (it only scales how many resumes are
// observed), so any reasonable choice reproduces Figure 7.

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/hit_model.h"
#include "dist/exponential.h"
#include "exp/experiment.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("ablation_interactivity");
  flags.AddInt64("streams", 40, "partition count n");
  flags.AddDouble("wait", 1.0, "max wait w (minutes)");
  flags.AddBool("csv", false, "emit CSV");
  AddExperimentFlags(&flags);
  VOD_CHECK_OK(flags.Parse(argc, argv));

  const auto layout = PartitionLayout::FromMaxWait(
      paper::kFig7MovieLength, static_cast<int>(flags.GetInt64("streams")),
      flags.GetDouble("wait"));
  VOD_CHECK_OK(layout.status());
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  VOD_CHECK_OK(model.status());
  const auto p_model = model->HitProbability(
      VcrMix::PaperMixed(), VcrDurations::AllSame(paper::Fig7Duration()));
  VOD_CHECK_OK(p_model.status());

  std::printf("Ablation: measured P(hit) vs mean time between VCR ops\n");
  std::printf("layout %s, mixed workload; model predicts %.4f "
              "(rate-independent)\n\n",
              layout->ToString().c_str(), *p_model);

  const std::vector<double> gaps = {5.0, 10.0, 20.0, 40.0, 80.0};
  const auto reports = RunExperimentGrid(
      gaps, ExperimentOptionsFromFlags(flags, /*base_seed=*/4242),
      [&](double mean_gap, const CellContext& context) {
        SimulationOptions options;
        options.mean_interarrival_minutes = paper::kFig7MeanInterarrival;
        options.behavior = paper::Fig7MixedBehavior();
        options.behavior.interactivity =
            std::make_shared<ExponentialDistribution>(mean_gap);
        options.warmup_minutes = 2000.0;
        options.measurement_minutes = 30000.0;
        options.seed = context.seed;
        const auto report = RunSimulation(*layout, paper::Rates(), options);
        VOD_CHECK_OK(report.status());
        return *report;
      });

  TableWriter table({"mean gap (min)", "P(hit) in-partition", "P(hit) all",
                     "resumes", "avg dedicated streams"});
  for (size_t i = 0; i < gaps.size(); ++i) {
    const SimulationReport& report = reports[i][0];
    table.AddRow({FormatDouble(gaps[i], 0),
                  FormatDouble(report.hit_probability_in_partition, 4),
                  FormatDouble(report.hit_probability, 4),
                  std::to_string(report.total_resumes),
                  FormatDouble(report.mean_dedicated_streams, 2)});
  }

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  std::printf("\nNote: the dedicated-stream demand DOES grow with the VCR "
              "rate — more misses pin more streams — which is exactly why "
              "the paper maximizes P(hit).\n");
  return 0;
}
