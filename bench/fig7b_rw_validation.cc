// Figure 7(b): model vs simulation, rewind requests only.

#include "bench/fig7_common.h"

int main(int argc, char** argv) {
  vod::bench::Fig7Config config;
  config.figure = "7(b)";
  config.description = "rewind (RW) requests only";
  config.behavior = vod::paper::Fig7SingleOpBehavior(vod::VcrOp::kRewind);
  config.mix = vod::VcrMix::Only(vod::VcrOp::kRewind);
  return vod::bench::RunFig7(argc, argv, config);
}
