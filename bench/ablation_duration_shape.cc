// Ablation: does P(hit) depend on the VCR-duration distribution beyond its
// mean?
//
// The paper's model is general in f(x) and its evaluation uses exponential
// and gamma durations. This bench fixes the mean at 8 minutes and sweeps
// the *shape*: deterministic, uniform, gamma, exponential, lognormal, and
// heavy-tailed Lomax. Coverage intuition says only the mean should matter
// for large n; the model (confirmed by simulation) shows the shape does
// matter near the boundaries — heavy tails push more mass past the movie
// end (FF releases) and past the movie start (RW misses).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/hit_model.h"
#include "dist/deterministic.h"
#include "dist/exponential.h"
#include "dist/gamma.h"
#include "dist/lognormal.h"
#include "dist/pareto.h"
#include "dist/uniform.h"
#include "exp/experiment.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("ablation_duration_shape");
  flags.AddInt64("streams", 40, "partition count n");
  flags.AddDouble("wait", 1.0, "max wait w (minutes)");
  flags.AddDouble("mean", 8.0, "common duration mean (minutes)");
  flags.AddBool("csv", false, "emit CSV");
  AddExperimentFlags(&flags);
  VOD_CHECK_OK(flags.Parse(argc, argv));
  const double mean = flags.GetDouble("mean");

  const auto layout = PartitionLayout::FromMaxWait(
      paper::kFig7MovieLength, static_cast<int>(flags.GetInt64("streams")),
      flags.GetDouble("wait"));
  VOD_CHECK_OK(layout.status());
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  VOD_CHECK_OK(model.status());

  std::printf("Ablation: P(hit) across equal-mean (%.0f min) duration "
              "shapes, %s\n\n",
              mean, layout->ToString().c_str());

  struct Case {
    const char* label;
    DistributionPtr dist;
  };
  // lognormal(mu, sigma) with mean 8: mu = ln(8) − sigma²/2.
  const double sigma = 1.0;
  const std::vector<Case> cases = {
      {"deterministic", std::make_shared<DeterministicDistribution>(mean)},
      {"uniform(0,2m)", std::make_shared<UniformDistribution>(0.0, 2 * mean)},
      {"gamma(2, m/2)", std::make_shared<GammaDistribution>(2.0, mean / 2)},
      {"exponential", std::make_shared<ExponentialDistribution>(mean)},
      {"lognormal", std::make_shared<LognormalDistribution>(
                        std::log(mean) - 0.5 * sigma * sigma, sigma)},
      {"lomax(2.5)", std::make_shared<LomaxDistribution>(
                         LomaxDistribution::FromMean(mean, 2.5))},
  };

  const auto reports = RunExperimentGrid(
      cases, ExperimentOptionsFromFlags(flags, /*base_seed=*/20240708),
      [&](const Case& c, const CellContext& context) {
        SimulationOptions options;
        options.behavior.mix = VcrMix::Only(VcrOp::kFastForward);
        options.behavior.durations = VcrDurations::AllSame(c.dist);
        options.behavior.interactivity = paper::DefaultInteractivity();
        options.warmup_minutes = 1500.0;
        options.measurement_minutes = 20000.0;
        options.seed = context.seed;
        const auto report = RunSimulation(*layout, paper::Rates(), options);
        VOD_CHECK_OK(report.status());
        return *report;
      });

  TableWriter table({"duration shape", "P(hit|FF)", "(end part)",
                     "P(hit|RW)", "P(hit|PAU)", "sim P(hit|FF)"});
  for (size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    const auto ff = model->Breakdown(VcrOp::kFastForward, c.dist);
    const auto rw = model->HitProbability(VcrOp::kRewind, c.dist);
    const auto pau = model->HitProbability(VcrOp::kPause, c.dist);
    VOD_CHECK_OK(ff.status());
    VOD_CHECK_OK(rw.status());
    VOD_CHECK_OK(pau.status());

    table.AddRow({c.label, FormatDouble(ff->total(), 4),
                  FormatDouble(ff->end, 4), FormatDouble(*rw, 4),
                  FormatDouble(*pau, 4),
                  FormatDouble(reports[i][0].hit_probability_in_partition, 4)});
  }

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  return 0;
}
