// Shared harness for the Figure 7 validation benches (7a–7d).
//
// Each bench sweeps the number of partitions n for several maximum-wait
// targets w, printing the analytic model prediction next to the simulated
// estimate — the same series the paper plots. The simulation cells fan out
// over the replication harness (src/exp): `--threads=N` changes only
// wall-clock, never a digit of the table, and `--replications=R` averages R
// decorrelated runs per point with a Student-t interval instead of the
// single-run Wilson interval.

#ifndef VOD_BENCH_FIG7_COMMON_H_
#define VOD_BENCH_FIG7_COMMON_H_

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/hit_model.h"
#include "exp/experiment.h"
#include "exp/replication.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace vod {
namespace bench {

struct Fig7Config {
  std::string figure;       // e.g. "7(a)"
  std::string description;  // e.g. "fast-forward only"
  VcrBehavior behavior;
  VcrMix mix;
};

inline int RunFig7(int argc, char** argv, const Fig7Config& config) {
  FlagSet flags("fig7_validation");
  flags.AddInt64("seed", 20240707, "base RNG seed for the simulations");
  flags.AddDouble("warmup", 2000.0, "simulation warmup (minutes)");
  flags.AddDouble("measure", 30000.0, "simulation measurement span (minutes)");
  flags.AddBool("csv", false, "emit CSV instead of an aligned table");
  flags.AddInt64("n_step", 10, "stride of the partition-count sweep");
  AddExperimentFlags(&flags, /*with_replications=*/true);
  VOD_CHECK_OK(flags.Parse(argc, argv));

  std::printf("Figure %s: P(hit) vs number of partitions n — %s\n",
              config.figure.c_str(), config.description.c_str());
  std::printf("l = %.0f min, 1/lambda = %.0f min, durations gamma(2,4) "
              "(mean 8), R_FF = R_RW = 3 R_PB\n\n",
              paper::kFig7MovieLength, paper::kFig7MeanInterarrival);

  struct SweepPoint {
    double w = 0.0;
    int n = 0;
  };
  std::vector<SweepPoint> points;
  for (double w : {0.5, 1.0, 2.0}) {
    for (int n = 10; n * w < paper::kFig7MovieLength;
         n += static_cast<int>(flags.GetInt64("n_step"))) {
      points.push_back({w, n});
    }
  }

  const auto experiment = ExperimentOptionsFromFlags(
      flags, static_cast<uint64_t>(flags.GetInt64("seed")));
  const double warmup = flags.GetDouble("warmup");
  const double measure = flags.GetDouble("measure");
  const auto reports = RunExperimentGrid(
      points, experiment,
      [&](const SweepPoint& point, const CellContext& context) {
        const auto layout = PartitionLayout::FromMaxWait(
            paper::kFig7MovieLength, point.n, point.w);
        VOD_CHECK_OK(layout.status());
        SimulationOptions options;
        options.mean_interarrival_minutes = paper::kFig7MeanInterarrival;
        options.behavior = config.behavior;
        options.warmup_minutes = warmup;
        options.measurement_minutes = measure;
        options.seed = context.seed;
        const auto report = RunSimulation(*layout, paper::Rates(), options);
        VOD_CHECK_OK(report.status());
        return *report;
      });

  TableWriter table({"w", "n", "B", "P(hit) model", "P(hit) sim",
                     "sim 95% lo", "sim 95% hi", "resumes"});
  const auto durations = VcrDurations::AllSame(paper::Fig7Duration());
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& point = points[i];
    const auto layout = PartitionLayout::FromMaxWait(paper::kFig7MovieLength,
                                                     point.n, point.w);
    VOD_CHECK_OK(layout.status());
    const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
    VOD_CHECK_OK(model.status());
    const auto p_model = model->HitProbability(config.mix, durations);
    VOD_CHECK_OK(p_model.status());

    double p_sim = 0.0, lo = 0.0, hi = 0.0;
    int64_t resumes = 0;
    if (reports[i].size() == 1) {
      // Single replication: the run's own Wilson interval.
      const SimulationReport& report = reports[i][0];
      p_sim = report.hit_probability_in_partition;
      lo = report.hit_probability_in_partition_low;
      hi = report.hit_probability_in_partition_high;
      resumes = report.in_partition_resumes;
    } else {
      const auto summary = SummarizeReplications(reports[i]);
      const auto metric = summary.hit_probability_in_partition();
      p_sim = metric.mean;
      lo = metric.lower();
      hi = metric.upper();
      resumes = summary.total_in_partition_resumes();
    }
    table.AddRow({FormatDouble(point.w, 1), std::to_string(point.n),
                  FormatDouble(layout->buffer_minutes(), 0),
                  FormatDouble(*p_model, 4), FormatDouble(p_sim, 4),
                  FormatDouble(lo, 4), FormatDouble(hi, 4),
                  std::to_string(resumes)});
  }

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  return 0;
}

}  // namespace bench
}  // namespace vod

#endif  // VOD_BENCH_FIG7_COMMON_H_
