// Figure 9(a)–(f): normalized system cost φ·ΣB + Σn versus the total number
// of I/O streams, for memory/stream price ratios φ ∈ {3, 4, 6, 10, 11, 16},
// over Example 1's movie set.
//
// Expected shapes (paper §5): for large φ (memory dominates — 9(e), 9(f))
// the minimum sits at the maximum feasible stream count; for small φ the
// minimum moves into the interior of the curve.

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/cost_model.h"
#include "core/sizing.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("fig9_cost_curves");
  flags.AddInt64("points", 25, "points per curve");
  flags.AddBool("csv", false, "emit CSV");
  VOD_CHECK_OK(flags.Parse(argc, argv));

  // Per-movie feasibility bounds from the sizing model (P* = 0.5).
  std::vector<MovieAllocationBound> bounds;
  for (const MovieSizingSpec& spec : paper::Example1Movies()) {
    const auto choice = MinimumBufferChoice(spec);
    VOD_CHECK_OK(choice.status());
    bounds.push_back({spec.name, spec.length_minutes, spec.max_wait_minutes,
                      choice->streams});
  }

  std::printf("Figure 9: system cost vs number of I/O streams "
              "(Example 1 movie set, P* = 0.5)\n\n");

  TableWriter table({"phi", "streams", "buffer (min)",
                     "cost (phi*B + n)", "minimum?"});
  const char* subfig = "abcdef";
  int idx = 0;
  for (double phi : paper::Fig9PhiValues()) {
    const auto curve = ComputeCostCurve(
        bounds, phi, static_cast<int>(flags.GetInt64("points")));
    VOD_CHECK_OK(curve.status());
    const CostCurvePoint best = MinimumCostPoint(*curve);
    std::printf("Figure 9(%c): phi = %.0f -> minimum cost %.0f at %d "
                "streams (%s)\n",
                subfig[idx++], phi, best.normalized_cost, best.total_streams,
                best.total_streams == curve->back().total_streams
                    ? "maximum feasible streams"
                    : "interior optimum");
    for (const auto& point : *curve) {
      table.AddRow({FormatDouble(phi, 0), std::to_string(point.total_streams),
                    FormatDouble(point.total_buffer_minutes, 1),
                    FormatDouble(point.normalized_cost, 1),
                    point.total_streams == best.total_streams ? "*" : ""});
    }
  }
  std::printf("\n");

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  return 0;
}
