// Ablation: the model's uniformity assumptions, population by population.
//
// The analytic model assumes every resuming viewer sits in a partition at a
// uniform offset d ~ U[0, B/n] (paper §3.1, P(V_f) = 1/(B/n)). In the real
// system two populations violate this: type-1 viewers enter at d = 0
// exactly, and post-miss viewers drift in the *gap* between windows. This
// bench splits the measured hit probability by the issuing population and
// quantifies the §4 discrepancies per operation.

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/hit_model.h"
#include "exp/experiment.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("ablation_population");
  flags.AddInt64("streams", 40, "partition count n");
  flags.AddDouble("wait", 1.0, "max wait w (minutes)");
  flags.AddBool("csv", false, "emit CSV");
  AddExperimentFlags(&flags);
  VOD_CHECK_OK(flags.Parse(argc, argv));

  const auto layout = PartitionLayout::FromMaxWait(
      paper::kFig7MovieLength, static_cast<int>(flags.GetInt64("streams")),
      flags.GetDouble("wait"));
  VOD_CHECK_OK(layout.status());
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  VOD_CHECK_OK(model.status());

  std::printf("Ablation: hit probability by issuing population, %s\n\n",
              layout->ToString().c_str());

  const std::vector<VcrOp> ops(kAllVcrOps.begin(), kAllVcrOps.end());
  const auto reports = RunExperimentGrid(
      ops, ExperimentOptionsFromFlags(flags, /*base_seed=*/1234),
      [&](VcrOp op, const CellContext& context) {
        SimulationOptions options;
        options.mean_interarrival_minutes = paper::kFig7MeanInterarrival;
        options.behavior = paper::Fig7SingleOpBehavior(op);
        options.warmup_minutes = 2000.0;
        options.measurement_minutes = 40000.0;
        options.seed = context.seed;
        const auto report = RunSimulation(*layout, paper::Rates(), options);
        VOD_CHECK_OK(report.status());
        return *report;
      });

  TableWriter table({"op", "model", "sim in-partition", "sim dedicated",
                     "sim all", "in-partition share"});
  for (size_t i = 0; i < ops.size(); ++i) {
    const VcrOp op = ops[i];
    const SimulationReport& report = reports[i][0];
    const auto p_model = model->HitProbability(op, paper::Fig7Duration());
    VOD_CHECK_OK(p_model.status());

    // Back out the dedicated-origin population from the totals.
    const double all_hits =
        report.hit_probability * static_cast<double>(report.total_resumes);
    const double part_hits =
        report.hit_probability_in_partition *
        static_cast<double>(report.in_partition_resumes);
    const auto dedicated_trials =
        report.total_resumes - report.in_partition_resumes;
    const double dedicated_rate =
        dedicated_trials > 0 ? (all_hits - part_hits) / dedicated_trials
                             : 0.0;

    table.AddRow(
        {VcrOpName(op), FormatDouble(*p_model, 4),
         FormatDouble(report.hit_probability_in_partition, 4),
         FormatDouble(dedicated_rate, 4),
         FormatDouble(report.hit_probability, 4),
         FormatDouble(static_cast<double>(report.in_partition_resumes) /
                          static_cast<double>(report.total_resumes),
                      3)});
  }

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  std::printf(
      "\nReading: 'in-partition' is the model's population (d ∈ [0, B/n]); "
      "'dedicated' viewers sit in the gaps (effective phase beyond the "
      "window), so their hit geometry differs from every modeled case. The "
      "column differences isolate the paper's §4 discrepancies: compare "
      "'model' vs 'sim in-partition' for the d-uniformity effect and vs "
      "'sim all' for the population-mix effect.\n");
  return 0;
}
