// Microbenchmarks of the event-queue kernel in isolation (google-benchmark).
//
// The simulator-level benches (perf_simulator.cc) measure the kernel through
// a full workload; these isolate the kernel's own operations so a regression
// in the slab, the 4-ary heap, or the dispatch path is attributable without
// profiling. Sweeps run at 1e3..1e6 pending events to expose cache effects —
// the queue-size regimes a single simulation never covers in one run.
//
// The hold model (schedule-one, pop-one at steady size) is the classic
// future-event-list benchmark: most DES kernels spend their life in it.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"

namespace vod {
namespace {

/// Deterministic 64-bit LCG; cheap enough to be invisible next to the
/// kernel operations under test.
class BenchRng {
 public:
  explicit BenchRng(uint64_t seed) : state_(seed * 2862933555777941757ULL + 1) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 11;
  }
  /// Uniform double in [0, range).
  double Time(double range) {
    return static_cast<double>(Next() % (1u << 20)) * range / (1u << 20);
  }

 private:
  uint64_t state_;
};

/// Fills `q` with `n` handler events uniformly over [now, now + n) minutes
/// and returns their tokens.
std::vector<EventToken> Fill(EventQueue& q, uint64_t kind, size_t n,
                             BenchRng& rng) {
  std::vector<EventToken> tokens;
  tokens.reserve(n);
  const double base = q.Now();
  const double range = static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    tokens.push_back(q.ScheduleHandler(base + rng.Time(range), kind, i));
  }
  return tokens;
}

// Hold model: at a steady population of `range(0)` pending events, pop the
// head and schedule a replacement. One iteration = one pop + one schedule.
void BM_HoldModel(benchmark::State& state) {
  const size_t population = static_cast<size_t>(state.range(0));
  EventQueue q;
  uint64_t sink = 0;
  const uint64_t kind = q.AddHandler([&sink](uint64_t p) { sink += p; });
  q.Reserve(population + 1);
  BenchRng rng(7);
  Fill(q, kind, population, rng);
  const double range = static_cast<double>(population);
  for (auto _ : state) {
    q.RunNext();
    q.ScheduleHandler(q.Now() + rng.Time(range), kind, 1);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HoldModel)
    ->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

// Pure schedule throughput into a growing heap, then drain outside the
// timed region. Measures PushKey/SiftUp and slab allocation.
void BM_ScheduleOnly(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EventQueue q;
  uint64_t sink = 0;
  const uint64_t kind = q.AddHandler([&sink](uint64_t p) { sink += p; });
  q.Reserve(n);
  BenchRng rng(11);
  const double range = static_cast<double>(n);
  for (auto _ : state) {
    const double base = q.Now();
    for (size_t i = 0; i < n; ++i) {
      q.ScheduleHandler(base + rng.Time(range), kind, i);
    }
    state.PauseTiming();
    q.RunUntil(base + range + 1.0);
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleOnly)->Arg(1000)->Arg(10000)->Arg(100000);

// Pop throughput from a pre-filled heap of `range(0)` events (PopRoot /
// SiftDown plus dispatch). The refill runs untimed.
void BM_PopOnly(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EventQueue q;
  uint64_t sink = 0;
  const uint64_t kind = q.AddHandler([&sink](uint64_t p) { sink += p; });
  q.Reserve(n);
  BenchRng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    Fill(q, kind, n, rng);
    state.ResumeTiming();
    while (q.RunNext()) {
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PopOnly)->Arg(1000)->Arg(10000)->Arg(100000);

// Schedule/cancel churn at a steady population: every iteration schedules
// one event and cancels a pseudo-random live one. Measures token
// validation, FreeSlot, and the compaction amortization — the VCR
// abandon/reschedule pattern the simulator generates.
void BM_ScheduleCancelMix(benchmark::State& state) {
  const size_t population = static_cast<size_t>(state.range(0));
  EventQueue q;
  const uint64_t kind = q.AddHandler([](uint64_t) {});
  q.Reserve(population + 1);
  BenchRng rng(17);
  std::vector<EventToken> live = Fill(q, kind, population, rng);
  const double range = static_cast<double>(population);
  size_t cursor = 0;
  for (auto _ : state) {
    const size_t victim = rng.Next() % live.size();
    q.Cancel(live[victim]);
    live[victim] =
        q.ScheduleHandler(q.Now() + rng.Time(range), kind, cursor++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScheduleCancelMix)
    ->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

// Worst case for lazy deletion: cancel an entire far-future wave, then pop
// through the tombstones. One iteration = schedule + cancel + drain of
// `range(0)` events; exercises CompactHeap end-to-end.
void BM_CancelBurstThenDrain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  EventQueue q;
  const uint64_t kind = q.AddHandler([](uint64_t) {});
  q.Reserve(n + 1);
  BenchRng rng(19);
  for (auto _ : state) {
    std::vector<EventToken> tokens = Fill(q, kind, n, rng);
    for (size_t i = 0; i + 1 < tokens.size(); ++i) q.Cancel(tokens[i]);
    while (q.RunNext()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CancelBurstThenDrain)->Arg(1000)->Arg(10000)->Arg(100000);

// Closure path (std::function allocation per schedule) at hold steady
// state, for comparison against BM_HoldModel's handler path. The gap is
// what the tagged-dispatch table buys.
void BM_HoldModelClosure(benchmark::State& state) {
  const size_t population = static_cast<size_t>(state.range(0));
  EventQueue q;
  q.Reserve(population + 1);
  BenchRng rng(23);
  uint64_t sink = 0;
  const double range = static_cast<double>(population);
  for (size_t i = 0; i < population; ++i) {
    q.Schedule(rng.Time(range), [&sink] { ++sink; });
  }
  for (auto _ : state) {
    q.RunNext();
    q.Schedule(q.Now() + rng.Time(range), [&sink] { ++sink; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HoldModelClosure)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace vod

BENCHMARK_MAIN();
