// Extension: diurnal load.
//
// The paper assumes stationary Poisson arrivals. Two structural properties
// make its pre-allocation robust to real (time-varying) load, and this
// bench demonstrates both:
//   1. the QoS side (max wait = w, P(hit)) depends only on the restart
//      schedule and buffer geometry — it is load-INdependent;
//   2. the resource side (concurrent viewers, dedicated VCR streams)
//      scales linearly with the instantaneous arrival rate — so the VCR
//      reserve must be sized for the peak, not the average (offered-load
//      column feeds Erlang-B; see bench/ext_blocking).

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "exp/experiment.h"
#include "sim/arrival_process.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("ext_diurnal");
  flags.AddBool("csv", false, "emit CSV");
  AddExperimentFlags(&flags);
  VOD_CHECK_OK(flags.Parse(argc, argv));

  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  VOD_CHECK_OK(layout.status());

  std::printf("Extension: load dependence, %s, mixed VCR workload\n\n",
              layout->ToString().c_str());

  // Quasi-static sweep over the day's instantaneous rates, plus one
  // genuinely non-stationary cell: a 24-hour sinusoid with 90% swing.
  struct LoadPoint {
    double rate = 0.0;   // constant Poisson rate, or
    bool diurnal = false;  // the sinusoidal day
  };
  const std::vector<LoadPoint> points = {{0.1, false},  {0.25, false},
                                         {0.5, false},  {1.0, false},
                                         {2.0, false},  {0.5, true}};
  const auto reports = RunExperimentGrid(
      points, ExperimentOptionsFromFlags(flags, /*base_seed=*/606),
      [&](const LoadPoint& point, const CellContext& context) {
        SimulationOptions options;
        if (point.diurnal) {
          const auto diurnal =
              SinusoidalArrivals::Create(point.rate, 0.9, 1440.0);
          VOD_CHECK_OK(diurnal.status());
          options.arrivals = std::make_shared<SinusoidalArrivals>(*diurnal);
        } else {
          options.arrivals = std::make_shared<PoissonArrivals>(point.rate);
        }
        options.behavior = paper::Fig7MixedBehavior();
        options.warmup_minutes = 1500.0;
        options.measurement_minutes = 25000.0;
        options.seed = context.seed;
        const auto report = RunSimulation(*layout, paper::Rates(), options);
        VOD_CHECK_OK(report.status());
        return *report;
      });

  TableWriter table({"arrivals/min", "viewers", "VCR streams (mean)",
                     "P(hit) in-partition", "max wait", "p99 wait"});
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].diurnal) continue;
    const SimulationReport& report = reports[i][0];
    table.AddRow({FormatDouble(points[i].rate, 2),
                  FormatDouble(report.mean_concurrent_viewers, 1),
                  FormatDouble(report.mean_dedicated_streams, 2),
                  FormatDouble(report.hit_probability_in_partition, 4),
                  FormatDouble(report.max_wait_minutes, 3),
                  FormatDouble(report.p99_wait_minutes, 3)});
  }
  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }

  const SimulationReport& report = reports.back()[0];
  std::printf("\nsinusoidal day (mean 0.5/min, swing ±90%%): "
              "P(hit) = %.4f, max wait = %.3f (guarantee %.3f), "
              "peak VCR streams = %.0f vs %.2f mean\n",
              report.hit_probability_in_partition,
              report.max_wait_minutes, layout->max_wait(),
              report.peak_dedicated_streams,
              report.mean_dedicated_streams);
  std::printf("=> QoS columns are flat in load; resource columns scale "
              "with it. Size reserves for the peak.\n");
  return 0;
}
