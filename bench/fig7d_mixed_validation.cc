// Figure 7(d): model vs simulation, mixed VCR workload with
// P_FF = 0.2, P_RW = 0.2, P_PAU = 0.6.

#include "bench/fig7_common.h"

int main(int argc, char** argv) {
  vod::bench::Fig7Config config;
  config.figure = "7(d)";
  config.description = "mixed workload (P_FF=0.2, P_RW=0.2, P_PAU=0.6)";
  config.behavior = vod::paper::Fig7MixedBehavior();
  config.mix = vod::VcrMix::PaperMixed();
  return vod::bench::RunFig7(argc, argv, config);
}
