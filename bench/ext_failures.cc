// Extension: disk failures, graceful degradation, and QoS recovery.
//
// ext_blocking showed the fault-free reserve economics. Here the reserve is
// striped across disks that fail (exponential MTBF) and get repaired
// (exponential MTTR), shrinking capacity while a disk is down. The
// degradation ladder (sim/degradation.h) queues dry-reserve VCR requests
// with a retry deadline, sheds new VCR work under deep loss, and forcibly
// reclaims dedicated streams when the pool becomes oversubscribed — instead
// of the seed's hard-refusal cliff.
//
// The sweep shows two convergences and one invariant:
//   * MTBF -> infinity or MTTR -> 0 recovers the fault-free baseline row.
//   * The quasi-stationary Erlang prediction (core/erlang.h,
//     ErlangBlockingWithFailures) tracks the observed refusal probability.
//   * Accounting closes: queued = grants + expired + pending, and
//     blocked FF/RW = denied + expired — no request is silently dropped.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/erlang.h"
#include "exp/experiment.h"
#include "sim/server.h"
#include "sim/sharded_server.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace {

constexpr int kDisks = 4;

std::vector<vod::ServerMovieSpec> Movies() {
  using namespace vod;
  std::vector<ServerMovieSpec> movies;
  auto layout_a = PartitionLayout::FromBuffer(120.0, 40, 60.0);
  auto layout_b = PartitionLayout::FromBuffer(90.0, 30, 45.0);
  auto layout_c = PartitionLayout::FromBuffer(105.0, 35, 52.5);
  VOD_CHECK_OK(layout_a.status());
  VOD_CHECK_OK(layout_b.status());
  VOD_CHECK_OK(layout_c.status());
  movies.push_back({"top-1", *layout_a, 0.5, nullptr, paper::Fig7MixedBehavior()});
  movies.push_back({"top-2", *layout_b, 0.33, nullptr, paper::Fig7MixedBehavior()});
  movies.push_back({"top-3", *layout_c, 0.25, nullptr, paper::Fig7MixedBehavior()});
  return movies;
}

struct FaultPoint {
  const char* label;
  bool faults;       // false = fault-free baseline (ladder still on)
  double mtbf;
  double mttr;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("ext_failures");
  flags.AddBool("csv", false, "emit CSV");
  flags.AddDouble("measure", 6000.0, "measured minutes");
  flags.AddDouble("deadline", 5.0, "queued-VCR retry deadline (minutes)");
  AddExperimentFlags(&flags);
  VOD_CHECK_OK(flags.Parse(argc, argv));

  std::printf("Extension: disk failures vs graceful degradation "
              "(3 movies, reserve striped over %d disks, mixed VCR "
              "workload)\n\n", kDisks);

  const double measure = flags.GetDouble("measure");
  const double deadline = flags.GetDouble("deadline");
  const auto movies = Movies();
  const auto experiment = ExperimentOptionsFromFlags(flags, /*base_seed=*/901);

  // Offered load for the Erlang prediction: mean busy dedicated streams
  // under unlimited supply, summed over the movies (as in ext_blocking).
  std::vector<int> movie_indices;
  for (size_t m = 0; m < movies.size(); ++m) {
    movie_indices.push_back(static_cast<int>(m));
  }
  const auto offered_reports = RunExperimentGrid(
      movie_indices, experiment,
      [&](int movie_index, const CellContext& context) {
        const auto& movie = movies[movie_index];
        SimulationOptions options;
        options.mean_interarrival_minutes =
            1.0 / movie.arrival_rate_per_minute;
        options.behavior = movie.behavior;
        options.warmup_minutes = 1000.0;
        options.measurement_minutes = measure;
        options.seed = context.seed;
        const auto report =
            RunSimulation(movie.layout, paper::Rates(), options);
        VOD_CHECK_OK(report.status());
        return *report;
      });
  double offered = 0.0;
  for (const auto& row : offered_reports) {
    offered += row[0].mean_dedicated_streams;
  }
  std::printf("offered load: %.1f Erlangs\n\n", offered);

  const std::vector<FaultPoint> fault_points = {
      {"fault-free", false, 0.0, 0.0},
      {"mtbf=1e12 mttr=120", true, 1e12, 120.0},   // -> fault-free
      {"mtbf=4000 mttr=1e-3", true, 4000.0, 1e-3}, // -> fault-free
      {"mtbf=4000 mttr=120", true, 4000.0, 120.0},
      {"mtbf=4000 mttr=480", true, 4000.0, 480.0},
      {"mtbf=1000 mttr=480", true, 1000.0, 480.0},
  };
  struct GridPoint {
    const FaultPoint* fault;
    int64_t reserve;
  };
  std::vector<GridPoint> grid;
  for (const FaultPoint& point : fault_points) {
    for (int64_t reserve : {20, 40, 80}) grid.push_back({&point, reserve});
  }

  ExperimentOptions server_experiment = experiment;
  server_experiment.base_seed = 555;
  const auto server_reports = RunExperimentGrid(
      grid, server_experiment,
      [&](const GridPoint& cell, const CellContext& context) {
        const FaultPoint& point = *cell.fault;
        ServerOptions options;
        options.rates = paper::Rates();
        options.dynamic_stream_reserve = cell.reserve;
        options.warmup_minutes = 1000.0;
        options.measurement_minutes = measure;
        // Every fault point at a given reserve shares one seed: identical
        // arrival/VCR streams are what let the mtbf=1e12 and mttr~0 rows
        // reproduce the fault-free row exactly (the convergence check).
        options.seed = CellSeed(server_experiment.base_seed,
                                context.config_index % 3,
                                context.replication);
        options.degradation.enabled = true;
        options.degradation.queue_deadline_minutes = deadline;
        if (point.faults) {
          options.faults.enabled = true;
          options.faults.disks = kDisks;
          options.faults.profile.mtbf_minutes = point.mtbf;
          options.faults.profile.mttr_minutes = point.mttr;
        }
        const auto report = RunServerSimulation(movies, options);
        VOD_CHECK_OK(report.status());
        return *report;
      });

  TableWriter table({"faults", "reserve", "avail", "p_refuse", "Erlang pred",
                     "blocked", "queued", "q-wait p99", "reclaims",
                     "degraded %", "recover mean", "accounting"});
  bool all_closed = true;
  for (size_t i = 0; i < grid.size(); ++i) {
    const FaultPoint& point = *grid[i].fault;
    const int64_t reserve = grid[i].reserve;
    const ServerReport& report = server_reports[i][0];
    const ResilienceReport& rz = report.resilience;

    DiskFaultProfile profile;
    profile.mtbf_minutes = point.mtbf;
    profile.mttr_minutes = point.mttr;
    const double availability =
        point.faults ? profile.StationaryAvailability() : 1.0;
    const auto predicted = ErlangBlockingWithFailures(
        kDisks, static_cast<int>(reserve / kDisks), offered, availability);
    VOD_CHECK_OK(predicted.status());

    const double horizon = 1000.0 + measure;
    const double degraded_fraction = 1.0 - rz.time_in_level[0] / horizon;
    // Every queued request and every blocked FF/RW must be accounted for.
    const bool queue_closed =
        rz.vcr_queued ==
        rz.vcr_queue_grants + rz.vcr_queue_expirations + rz.vcr_queue_pending;
    const bool blocked_closed =
        report.total_blocked_vcr == rz.vcr_denied + rz.vcr_queue_expirations;
    all_closed = all_closed && queue_closed && blocked_closed;

    table.AddRow({point.label, std::to_string(reserve),
                  FormatDouble(availability, 4),
                  FormatDouble(report.refusal_probability, 4),
                  FormatDouble(*predicted, 4),
                  std::to_string(report.total_blocked_vcr),
                  std::to_string(rz.vcr_queued),
                  FormatDouble(rz.p99_queued_wait_minutes, 2),
                  std::to_string(rz.forced_reclaims),
                  FormatDouble(100.0 * degraded_fraction, 1),
                  FormatDouble(rz.mean_recovery_minutes, 1),
                  queue_closed && blocked_closed ? "closed" : "VIOLATED"});
  }

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }

  // ---- sharded leg: the windowed ladder at scale ---------------------------
  //
  // The same failure regimes on the sharded multi-core engine with the
  // windowed degradation ladder armed: shards x fault intensity, 1 shard as
  // the reference. Three checks ride along: the report must be
  // byte-identical across shard counts (the ladder decision is a pure
  // function of summed pressure at the barrier, so shard count cannot leak
  // into it), the queue accounting must close, and the resilience view —
  // time under degradation, blocked VCR work, P2 queued-wait quantiles
  // pooled across every shard's queue — is the row payload.
  std::printf("\nsharded windowed ladder (6 movies, shards x faults, "
              "reserve=24):\n");
  std::vector<ServerMovieSpec> sharded_movies;
  for (int copy = 0; copy < 2; ++copy) {
    for (const ServerMovieSpec& movie : movies) {
      ServerMovieSpec spec = movie;
      spec.arrival_rate_per_minute *= 0.5;
      sharded_movies.push_back(spec);
    }
  }
  const std::vector<FaultPoint> sharded_faults = {
      {"mtbf=4000 mttr=240", true, 4000.0, 240.0},
      {"mtbf=1000 mttr=480", true, 1000.0, 480.0},
  };
  TableWriter sharded_table({"faults", "shards", "windows", "blocked",
                             "queued", "q-wait p50", "q-wait p99",
                             "reclaims", "degraded %", "identical"});
  bool all_identical = true;
  for (const FaultPoint& point : sharded_faults) {
    std::string reference;  // 1-shard report bytes
    for (const int shards : {1, 4, 8}) {
      ShardedServerOptions options;
      options.base.rates = paper::Rates();
      options.base.dynamic_stream_reserve = 24;
      options.base.warmup_minutes = 1000.0;
      options.base.measurement_minutes = measure;
      options.base.seed = 555;
      options.base.degradation.enabled = true;
      options.base.degradation.queue_deadline_minutes = deadline;
      options.base.faults.enabled = true;
      options.base.faults.disks = kDisks;
      options.base.faults.profile.mtbf_minutes = point.mtbf;
      options.base.faults.profile.mttr_minutes = point.mttr;
      options.base.audit.enabled = true;
      options.shards = shards;
      options.threads = shards;
      const auto sharded = RunShardedServerSimulation(sharded_movies, options);
      VOD_CHECK_OK(sharded.status());
      const std::string bytes = sharded->ToString();
      if (reference.empty()) reference = bytes;
      const bool identical = bytes == reference;
      all_identical = all_identical && identical;

      const ResilienceReport& rz = sharded->server.resilience;
      const double horizon = 1000.0 + measure;
      const double degraded_fraction = 1.0 - rz.time_in_level[0] / horizon;
      const bool queue_closed =
          rz.vcr_queued == rz.vcr_queue_grants + rz.vcr_queue_expirations +
                               rz.vcr_queue_pending;
      all_closed = all_closed && queue_closed;
      sharded_table.AddRow(
          {point.label, std::to_string(shards),
           std::to_string(sharded->windows),
           std::to_string(sharded->server.total_blocked_vcr),
           std::to_string(rz.vcr_queued),
           FormatDouble(rz.p50_queued_wait_minutes, 2),
           FormatDouble(rz.p99_queued_wait_minutes, 2),
           std::to_string(rz.forced_reclaims),
           FormatDouble(100.0 * degraded_fraction, 1),
           identical && queue_closed ? "yes" : "DIVERGED"});
    }
  }
  if (flags.GetBool("csv")) {
    sharded_table.RenderCsv(std::cout);
  } else {
    sharded_table.RenderText(std::cout);
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "ext_failures: sharded ladder reports DIVERGED across "
                 "shard counts\n");
    return 1;
  }

  std::printf("\nReading: the mtbf=1e12 and mttr~0 rows reproduce the "
              "fault-free row (convergence); harsher failure regimes raise "
              "refusals, queueing, and forced reclaims, and the "
              "quasi-stationary Erlang mixture tracks the observed refusal "
              "probability. Accounting closes on every row: queued = grants "
              "+ expired + pending and blocked = denied + expired.\n");
  if (!all_closed) {
    std::fprintf(stderr, "ext_failures: accounting identity VIOLATED\n");
    return 1;
  }
  return 0;
}
