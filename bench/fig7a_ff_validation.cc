// Figure 7(a): model vs simulation, fast-forward requests only.

#include "bench/fig7_common.h"

int main(int argc, char** argv) {
  vod::bench::Fig7Config config;
  config.figure = "7(a)";
  config.description = "fast-forward (FF) requests only";
  config.behavior =
      vod::paper::Fig7SingleOpBehavior(vod::VcrOp::kFastForward);
  config.mix = vod::VcrMix::Only(vod::VcrOp::kFastForward);
  return vod::bench::RunFig7(argc, argv, config);
}
