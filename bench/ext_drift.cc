// Extension: popularity drift — static sizing vs the reallocation
// controller.
//
// The paper sizes every movie's (B, n) once, offline, for forecast rates.
// This bench drives the multi-movie server through the drift regimes that
// age such an allocation — a flash crowd (one-shot 4x rate spike on the top
// title), a new release (permanent rate step on the tail title), and a
// diurnal wave — and compares static sizing against the ctrl/ control
// plane, same seed, same budgets.
//
// Three claims are checked, not just printed:
//   1. quiescence — under zero drift the controller-on report is
//      byte-identical to the controller-off report (the control plane is
//      free until it is needed);
//   2. dominance — under the flash crowd the controller strictly improves
//      the drifting movie's P(hit) AND strictly reduces total blocking;
//   3. economics (Fig. 9 lens) — matching the flash peak with static
//      provisioning means buying the peak-rate allocation permanently; the
//      bench prices both allocations with the paper's phi = C_b/C_n model
//      and reports the premium the controller avoids.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/cost_model.h"
#include "core/erlang.h"
#include "core/partition_layout.h"
#include "exp/experiment.h"
#include "sim/arrival_process.h"
#include "sim/server.h"
#include "workload/paper_presets.h"

namespace {

using namespace vod;

constexpr double kLength = 120.0;    // movie length (minutes)
constexpr double kWait = 1.0;        // per-movie max-wait target
constexpr double kTotalRate = 0.5;   // arrivals/minute across the catalog
constexpr int kStreamBudget = 30;    // batching streams across the catalog
constexpr int64_t kReserve = 20;     // shared dynamic stream reserve
constexpr double kFlashFactor = 4.0;
constexpr double kFlashStart = 500.0;
constexpr double kFlashDuration = 1500.0;

struct Scenario {
  const char* name;
  int drift_movie;  // the movie whose QoS the drift stresses
  enum { kNone, kFlash, kRelease, kDiurnal } kind;
};

// Zipf(1.0) split of rate and stream budget across three titles, each sized
// by FromMaxWait against the shared wait target (as `vodctl simulate
// --movies=3` does).
std::vector<ServerMovieSpec> BaseMovies() {
  VcrBehavior behavior = paper::Fig7MixedBehavior();
  std::vector<double> weights = {1.0, 1.0 / 2.0, 1.0 / 3.0};
  double norm = 0.0;
  for (double w : weights) norm += w;

  std::vector<ServerMovieSpec> movies;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double share = weights[i] / norm;
    const auto streams = static_cast<int>(
        std::llround(std::max(1.0, kStreamBudget * share)));
    const auto layout = PartitionLayout::FromMaxWait(kLength, streams, kWait);
    VOD_CHECK_OK(layout.status());
    movies.push_back({"m" + std::to_string(i), *layout, kTotalRate * share,
                      /*arrivals=*/nullptr, behavior});
  }
  return movies;
}

std::vector<ServerMovieSpec> MoviesForScenario(const Scenario& scenario) {
  std::vector<ServerMovieSpec> movies = BaseMovies();
  ServerMovieSpec& target =
      movies[static_cast<size_t>(scenario.drift_movie)];
  switch (scenario.kind) {
    case Scenario::kNone:
      break;
    case Scenario::kFlash: {
      const auto flash = FlashArrivals::Create(
          target.arrival_rate_per_minute, kFlashFactor, kFlashStart,
          kFlashDuration);
      VOD_CHECK_OK(flash.status());
      target.arrivals = std::make_shared<FlashArrivals>(*flash);
      break;
    }
    case Scenario::kRelease: {
      // Permanent popularity step: the "new release" the tail layout was
      // never sized for.
      const auto step = FlashArrivals::Create(
          target.arrival_rate_per_minute, kFlashFactor, kFlashStart,
          std::numeric_limits<double>::infinity());
      VOD_CHECK_OK(step.status());
      target.arrivals = std::make_shared<FlashArrivals>(*step);
      break;
    }
    case Scenario::kDiurnal: {
      const auto wave = SinusoidalArrivals::Create(
          target.arrival_rate_per_minute, 0.8, 1440.0);
      VOD_CHECK_OK(wave.status());
      target.arrivals = std::make_shared<SinusoidalArrivals>(*wave);
      break;
    }
  }
  return movies;
}

// Normalized Eq.-23 cost phi*sum(B) + sum(n) of a movie set plus the shared
// reserve (reserve streams are I/O capacity like any other).
double CatalogCostNormalized(const std::vector<ServerMovieSpec>& movies,
                             double phi) {
  double cost = static_cast<double>(kReserve);
  for (const ServerMovieSpec& movie : movies) {
    cost += phi * movie.layout.buffer_minutes() + movie.layout.streams();
  }
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags("ext_drift");
  flags.AddBool("csv", false, "emit CSV");
  flags.AddDouble("measure", 4000.0, "measured minutes");
  AddExperimentFlags(&flags);
  VOD_CHECK_OK(flags.Parse(argc, argv));
  const double measure = flags.GetDouble("measure");

  std::printf(
      "Extension: popularity drift — static (B, n) sizing vs the dynamic "
      "reallocation controller\n(3 Zipf movies, %d batching streams, "
      "reserve %lld, same seed per scenario)\n\n",
      kStreamBudget, static_cast<long long>(kReserve));

  const std::vector<Scenario> scenarios = {
      {"none", 0, Scenario::kNone},
      {"flash x4", 0, Scenario::kFlash},
      {"release x4", 2, Scenario::kRelease},
      {"diurnal 80%", 0, Scenario::kDiurnal},
  };
  struct Cell {
    const Scenario* scenario;
    bool dynamic;
  };
  std::vector<Cell> grid;
  for (const Scenario& scenario : scenarios) {
    grid.push_back({&scenario, false});
    grid.push_back({&scenario, true});
  }

  const auto experiment = ExperimentOptionsFromFlags(flags, /*base_seed=*/777);
  const auto reports = RunExperimentGrid(
      grid, experiment, [&](const Cell& cell, const CellContext& context) {
        ServerOptions options;
        options.rates = paper::Rates();
        options.dynamic_stream_reserve = kReserve;
        options.measurement_minutes = measure;
        options.warmup_minutes = measure * 0.05;
        // Static and dynamic rows of one scenario share a seed: the
        // controller is the only difference between them.
        options.seed = CellSeed(experiment.base_seed,
                                context.config_index / 2,
                                context.replication);
        options.degradation.enabled = true;
        options.degradation.queue_deadline_minutes = 5.0;
        options.controller.enabled = cell.dynamic;
        options.audit.enabled = true;
        const auto report =
            RunServerSimulation(MoviesForScenario(*cell.scenario), options);
        VOD_CHECK_OK(report.status());
        return *report;
      });

  TableWriter table({"scenario", "mode", "P(hit) drift-movie", "P(hit) m0",
                     "blocked", "queued", "p_refuse", "stalls", "migrations",
                     "sheds"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const ServerReport& report = reports[i][0];
    const SimulationReport& drifting =
        report.movies[static_cast<size_t>(grid[i].scenario->drift_movie)]
            .report;
    table.AddRow(
        {grid[i].scenario->name, grid[i].dynamic ? "dynamic" : "static",
         FormatDouble(drifting.hit_probability, 4),
         FormatDouble(report.movies[0].report.hit_probability, 4),
         std::to_string(report.total_blocked_vcr),
         std::to_string(report.total_queued_vcr),
         FormatDouble(report.refusal_probability, 4),
         std::to_string(report.total_stalls),
         std::to_string(report.controller.migrations_committed),
         std::to_string(report.controller.admission_sheds)});
  }
  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }

  // Claim 1: quiescence. No drift => the controller must be a pure
  // observer, down to the last serialized byte.
  const bool quiescent =
      reports[0][0].ToString() == reports[1][0].ToString();
  std::printf("\nzero-drift quiescence: controller-on report is %s to "
              "controller-off\n",
              quiescent ? "byte-identical" : "DIFFERENT");

  // Claim 2: dominance under the flash crowd.
  const ServerReport& flash_static = reports[2][0];
  const ServerReport& flash_dynamic = reports[3][0];
  const double static_hit = flash_static.movies[0].report.hit_probability;
  const double dynamic_hit = flash_dynamic.movies[0].report.hit_probability;
  const int64_t static_blocked = flash_static.total_blocked_vcr;
  const int64_t dynamic_blocked = flash_dynamic.total_blocked_vcr;
  const bool dominates =
      dynamic_hit > static_hit && dynamic_blocked < static_blocked;
  std::printf("flash-crowd dominance: P(hit) %.4f -> %.4f, blocked %lld -> "
              "%lld => dynamic %s static\n",
              static_hit, dynamic_hit,
              static_cast<long long>(static_blocked),
              static_cast<long long>(dynamic_blocked),
              dominates ? "strictly dominates" : "DOES NOT dominate");

  // Claim 3: the avoided provisioning premium. The partition sizing is
  // rate-independent (w and P* fix it); what a rate peak stresses is the
  // shared reserve, whose offered dedicated-stream load scales with the
  // arrival rate. A static design holding its blocking at the flash peak
  // must size the reserve for the peak offered load — and pay for those
  // streams permanently. The controller rides the peak on the base reserve.
  const double phi = HardwareCosts().Phi();
  double base_offered = 0.0;
  for (const auto& movie : reports[0][0].movies) {
    base_offered += movie.report.mean_dedicated_streams;
  }
  const double hot_offered =
      reports[0][0].movies[0].report.mean_dedicated_streams;
  const double peak_offered =
      base_offered + (kFlashFactor - 1.0) * hot_offered;
  const auto design_blocking = ErlangBlockingProbability(
      static_cast<int>(kReserve), base_offered);
  VOD_CHECK_OK(design_blocking.status());
  const auto peak_reserve =
      MinStreamsForBlocking(peak_offered, *design_blocking);
  VOD_CHECK_OK(peak_reserve.status());
  const double base_cost = CatalogCostNormalized(BaseMovies(), phi);
  const double peak_cost =
      base_cost + static_cast<double>(*peak_reserve - kReserve);
  std::printf("Fig-9 economics (phi = %.1f): holding the design blocking "
              "B(%lld, %.1f) = %.4f at the flash peak (%.1f Erlangs) takes "
              "a %d-stream reserve; normalized cost %.0f -> %.0f (+%.1f%%) "
              "— a premium the controller avoids\n",
              phi, static_cast<long long>(kReserve), base_offered,
              *design_blocking, peak_offered, *peak_reserve, base_cost,
              peak_cost, 100.0 * (peak_cost - base_cost) / base_cost);

  if (!quiescent) {
    std::fprintf(stderr, "ext_drift: zero-drift quiescence VIOLATED\n");
    return 1;
  }
  if (!dominates) {
    std::fprintf(stderr, "ext_drift: flash-crowd dominance VIOLATED\n");
    return 1;
  }
  return 0;
}
