// Extension: piggyback merging as the phase-2 fallback for misses.
//
// The paper (§2) leaves miss-viewers holding their dedicated stream "until
// [they] can join a partition, for instance, using the piggybacking
// technique" and cites adaptive piggybacking (Golubchik–Lui–Muntz) without
// evaluating it. This bench closes that loop: sweeping the speed offset Δ,
// it measures the dedicated-stream demand with and without merging, plus
// the mean drift time against the analytic w/(4Δ) expectation.

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/piggyback.h"
#include "exp/experiment.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("ext_piggyback");
  flags.AddInt64("streams", 40, "partition count n");
  flags.AddDouble("buffer", 40.0, "buffer minutes B (small => miss-heavy)");
  flags.AddBool("csv", false, "emit CSV");
  AddExperimentFlags(&flags);
  VOD_CHECK_OK(flags.Parse(argc, argv));

  const auto layout = PartitionLayout::FromBuffer(
      paper::kFig7MovieLength, static_cast<int>(flags.GetInt64("streams")),
      flags.GetDouble("buffer"));
  VOD_CHECK_OK(layout.status());

  std::printf("Extension: phase-2 piggyback merging, %s\n",
              layout->ToString().c_str());
  std::printf("mixed VCR workload; 'streams' = mean dedicated streams "
              "pinned by VCR activity\n\n");

  const std::vector<double> deltas = {0.0, 0.02, 0.05, 0.10, 0.20};
  const auto reports = RunExperimentGrid(
      deltas, ExperimentOptionsFromFlags(flags, /*base_seed=*/31),
      [&](double delta, const CellContext& context) {
        SimulationOptions options;
        options.mean_interarrival_minutes = paper::kFig7MeanInterarrival;
        options.behavior = paper::Fig7MixedBehavior();
        options.warmup_minutes = 2000.0;
        options.measurement_minutes = 30000.0;
        options.seed = context.seed;
        options.piggyback.enabled = delta > 0.0;
        options.piggyback.speed_delta = delta > 0.0 ? delta : 0.05;
        const auto report = RunSimulation(*layout, paper::Rates(), options);
        VOD_CHECK_OK(report.status());
        return *report;
      });

  TableWriter table({"delta", "streams (mean)", "streams (peak)", "merges",
                     "mean merge (min)", "analytic w/(4*delta)", "misses"});
  for (size_t i = 0; i < deltas.size(); ++i) {
    const double delta = deltas[i];
    const SimulationReport& report = reports[i][0];

    PiggybackOptions analytic_options;
    analytic_options.enabled = delta > 0.0;
    analytic_options.speed_delta = delta > 0.0 ? delta : 0.05;
    const double analytic =
        delta > 0.0
            ? ExpectedPiggybackMergeMinutes(*layout, analytic_options)
            : 0.0;

    table.AddRow({FormatDouble(delta, 2),
                  FormatDouble(report.mean_dedicated_streams, 2),
                  FormatDouble(report.peak_dedicated_streams, 0),
                  std::to_string(report.piggyback_merges),
                  FormatDouble(report.mean_merge_minutes, 2),
                  delta > 0.0 ? FormatDouble(analytic, 2) : "-",
                  std::to_string(report.misses)});
  }

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  std::printf("\nWithout merging (delta = 0) a miss pins its stream until "
              "the movie ends; with a 5%% speed offset it is released after "
              "~w/(4*0.05) minutes of drift.\n");
  return 0;
}
