// Ablation: display-speed sensitivity (the α and γ factors of Eq. 1).
//
// The paper fixes R_FF = R_RW = 3·R_PB. This bench sweeps the speeds and
// shows the catch-up factors at work: faster fast-forward lowers α toward 1
// (a duration covers more relative distance, overshooting the own window
// sooner but jumping farther), while faster rewind raises γ toward 1 (the
// PAU limit). Model and simulation move together throughout.

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/hit_model.h"
#include "exp/experiment.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("ablation_speed");
  flags.AddInt64("streams", 40, "partition count n");
  flags.AddDouble("wait", 1.0, "max wait w (minutes)");
  flags.AddBool("csv", false, "emit CSV");
  AddExperimentFlags(&flags);
  VOD_CHECK_OK(flags.Parse(argc, argv));

  const auto layout = PartitionLayout::FromMaxWait(
      paper::kFig7MovieLength, static_cast<int>(flags.GetInt64("streams")),
      flags.GetDouble("wait"));
  VOD_CHECK_OK(layout.status());

  std::printf("Ablation: P(hit) vs display speed, %s, gamma(2,4) durations\n\n",
              layout->ToString().c_str());

  struct SpeedPoint {
    VcrOp op;
    double speed;
  };
  std::vector<SpeedPoint> points;
  for (VcrOp op : {VcrOp::kFastForward, VcrOp::kRewind}) {
    for (double speed : {1.5, 2.0, 3.0, 5.0, 10.0}) points.push_back({op, speed});
  }
  const auto rates_for = [](const SpeedPoint& point) {
    PlaybackRates rates = paper::Rates();
    if (point.op == VcrOp::kFastForward) {
      rates.fast_forward = point.speed;
    } else {
      rates.rewind = point.speed;
    }
    return rates;
  };

  const auto reports = RunExperimentGrid(
      points, ExperimentOptionsFromFlags(flags, /*base_seed=*/77),
      [&](const SpeedPoint& point, const CellContext& context) {
        SimulationOptions options;
        options.mean_interarrival_minutes = paper::kFig7MeanInterarrival;
        options.behavior = paper::Fig7SingleOpBehavior(point.op);
        options.warmup_minutes = 1500.0;
        options.measurement_minutes = 20000.0;
        options.seed = context.seed;
        const auto report = RunSimulation(*layout, rates_for(point), options);
        VOD_CHECK_OK(report.status());
        return *report;
      });

  TableWriter table({"op", "speed", "alpha/gamma", "P(hit) model",
                     "P(hit) sim"});
  for (size_t i = 0; i < points.size(); ++i) {
    const SpeedPoint& point = points[i];
    const PlaybackRates rates = rates_for(point);
    const double factor =
        point.op == VcrOp::kFastForward ? rates.Alpha() : rates.Gamma();
    const auto model = AnalyticHitModel::Create(*layout, rates);
    VOD_CHECK_OK(model.status());
    const auto p_model = model->HitProbability(point.op, paper::Fig7Duration());
    VOD_CHECK_OK(p_model.status());

    table.AddRow({VcrOpName(point.op), FormatDouble(point.speed, 1),
                  FormatDouble(factor, 3), FormatDouble(*p_model, 4),
                  FormatDouble(reports[i][0].hit_probability_in_partition, 4)});
  }

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  return 0;
}
