// Example 2: deriving the cost constants C_b, C_n, and φ from hardware
// parameters (1997 parts list), plus the resulting dollar cost of the
// Example 1 allocation.

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/cost_model.h"
#include "core/sizing.h"
#include "storage/disk_model.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("table_example2_cost");
  flags.AddDouble("disk_price", 700.0, "disk price in dollars");
  flags.AddDouble("disk_mbps", 5.0, "disk transfer rate, MB/s");
  flags.AddDouble("mem_price", 25.0, "memory price, $/MB");
  flags.AddDouble("video_mbps", 4.0, "video bitrate, Mbit/s");
  flags.AddBool("csv", false, "emit CSV");
  VOD_CHECK_OK(flags.Parse(argc, argv));

  HardwareCosts costs;
  costs.disk_price_dollars = flags.GetDouble("disk_price");
  costs.disk_transfer_mbytes_per_sec = flags.GetDouble("disk_mbps");
  costs.memory_price_per_mbyte = flags.GetDouble("mem_price");
  costs.video_rate_mbits_per_sec = flags.GetDouble("video_mbps");
  VOD_CHECK_OK(costs.Validate());

  std::printf("Example 2: cost constants from hardware parameters\n");
  std::printf("paper reference: C_b = $750/movie-minute, C_n = $70/stream, "
              "phi ~= 11\n\n");

  TableWriter table({"quantity", "value"});
  table.AddRow({"disk price ($)", FormatDouble(costs.disk_price_dollars, 0)});
  table.AddRow({"disk transfer (MB/s)",
                FormatDouble(costs.disk_transfer_mbytes_per_sec, 1)});
  table.AddRow({"memory price ($/MB)",
                FormatDouble(costs.memory_price_per_mbyte, 2)});
  table.AddRow({"video rate (Mbit/s)",
                FormatDouble(costs.video_rate_mbits_per_sec, 1)});
  table.AddRow({"streams per disk", FormatDouble(costs.StreamsPerDisk(), 1)});
  table.AddRow({"C_n ($/stream)", FormatDouble(costs.StreamCost(), 2)});
  table.AddRow({"C_b ($/movie-minute)",
                FormatDouble(costs.BufferCostPerMovieMinute(), 2)});
  table.AddRow({"phi = C_b / C_n", FormatDouble(costs.Phi(), 2)});

  const auto disk_model = DiskModel::Create(
      DiskSpec{2.0, costs.disk_transfer_mbytes_per_sec,
               costs.disk_price_dollars},
      VideoFormat{costs.video_rate_mbits_per_sec});
  VOD_CHECK_OK(disk_model.status());
  table.AddRow({"storage minutes per 2GB disk",
                FormatDouble(disk_model->StorageMinutesPerDisk(), 1)});

  // Price the Example 1 allocation with these constants.
  const auto movies = paper::Example1Movies();
  const auto sized = SizeSystem(movies, PureBatchingStreams(movies));
  VOD_CHECK_OK(sized.status());
  table.AddRow({"Example-1 allocation streams",
                std::to_string(sized->total_streams)});
  table.AddRow({"Example-1 allocation buffer (min)",
                FormatDouble(sized->total_buffer_minutes, 1)});
  table.AddRow({"Example-1 allocation cost ($)",
                FormatDouble(AllocationCostDollars(*sized, costs), 0)});
  table.AddRow({"disks for its bandwidth",
                std::to_string(
                    disk_model->DisksForBandwidth(sized->total_streams))});

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  return 0;
}
