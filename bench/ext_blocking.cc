// Extension: VCR blocking versus the dynamic stream reserve.
//
// The paper motivates pre-allocation with the warning that poorly managed
// VCR support "can easily result in consumption of large amounts of system
// resources". This bench runs the multi-movie server simulator with a
// finite shared reserve: when misses pin streams, the reserve drains,
// further FF/RW requests are refused, and resumes stall. Piggyback merging
// relieves the pressure.

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/erlang.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace {

std::vector<vod::ServerMovieSpec> Movies() {
  using namespace vod;
  std::vector<ServerMovieSpec> movies;
  auto layout_a = PartitionLayout::FromBuffer(120.0, 40, 60.0);
  auto layout_b = PartitionLayout::FromBuffer(90.0, 30, 45.0);
  auto layout_c = PartitionLayout::FromBuffer(105.0, 35, 52.5);
  VOD_CHECK_OK(layout_a.status());
  VOD_CHECK_OK(layout_b.status());
  VOD_CHECK_OK(layout_c.status());
  movies.push_back({"top-1", *layout_a, 0.5, paper::Fig7MixedBehavior()});
  movies.push_back({"top-2", *layout_b, 0.33, paper::Fig7MixedBehavior()});
  movies.push_back({"top-3", *layout_c, 0.25, paper::Fig7MixedBehavior()});
  return movies;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("ext_blocking");
  flags.AddBool("csv", false, "emit CSV");
  flags.AddDouble("measure", 15000.0, "measured minutes");
  VOD_CHECK_OK(flags.Parse(argc, argv));

  std::printf("Extension: shared VCR stream reserve vs blocking "
              "(3 movies, ~50%% buffer coverage, mixed VCR workload)\n\n");

  // Offered load per policy: mean busy dedicated streams under unlimited
  // supply (per movie, summed), which feeds the Erlang-B prediction.
  double offered[2] = {0.0, 0.0};
  for (int pb = 0; pb < 2; ++pb) {
    for (const auto& movie : Movies()) {
      SimulationOptions options;
      options.mean_interarrival_minutes = 1.0 / movie.arrival_rate_per_minute;
      options.behavior = movie.behavior;
      options.warmup_minutes = 1000.0;
      options.measurement_minutes = flags.GetDouble("measure");
      options.seed = 901;
      options.piggyback.enabled = pb == 1;
      options.piggyback.speed_delta = 0.05;
      const auto report =
          RunSimulation(movie.layout, paper::Rates(), options);
      VOD_CHECK_OK(report.status());
      offered[pb] += report->mean_dedicated_streams;
    }
  }
  std::printf("offered load (Erlangs): %.1f without piggyback, %.1f with\n\n",
              offered[0], offered[1]);

  TableWriter table({"reserve", "piggyback", "refusal prob", "Erlang-B pred",
                     "blocked FF/RW", "stalled resumes", "reserve mean use",
                     "reserve peak"});
  for (bool piggyback : {false, true}) {
    for (int64_t reserve : {10, 20, 40, 80, 160, 320}) {
      ServerOptions options;
      options.rates = paper::Rates();
      options.dynamic_stream_reserve = reserve;
      options.warmup_minutes = 1000.0;
      options.measurement_minutes = flags.GetDouble("measure");
      options.seed = 555;
      options.piggyback.enabled = piggyback;
      options.piggyback.speed_delta = 0.05;
      const auto report = RunServerSimulation(Movies(), options);
      VOD_CHECK_OK(report.status());
      const auto predicted = ErlangBlockingProbability(
          static_cast<int>(reserve), offered[piggyback ? 1 : 0]);
      VOD_CHECK_OK(predicted.status());
      table.AddRow({std::to_string(reserve), piggyback ? "on" : "off",
                    FormatDouble(report->refusal_probability, 4),
                    FormatDouble(*predicted, 4),
                    std::to_string(report->total_blocked_vcr),
                    std::to_string(report->total_stalls),
                    FormatDouble(report->mean_reserve_in_use, 1),
                    std::to_string(report->peak_reserve_in_use)});
    }
  }

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  std::printf("\nReading: without piggybacking the reserve must absorb "
              "misses that pin streams for the rest of the movie; with it, "
              "a far smaller reserve reaches zero refusals.\n");
  return 0;
}
