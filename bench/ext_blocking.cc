// Extension: VCR blocking versus the dynamic stream reserve.
//
// The paper motivates pre-allocation with the warning that poorly managed
// VCR support "can easily result in consumption of large amounts of system
// resources". This bench runs the multi-movie server simulator with a
// finite shared reserve: when misses pin streams, the reserve drains,
// further FF/RW requests are refused, and resumes stall. Piggyback merging
// relieves the pressure.

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/erlang.h"
#include "exp/experiment.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace {

std::vector<vod::ServerMovieSpec> Movies() {
  using namespace vod;
  std::vector<ServerMovieSpec> movies;
  auto layout_a = PartitionLayout::FromBuffer(120.0, 40, 60.0);
  auto layout_b = PartitionLayout::FromBuffer(90.0, 30, 45.0);
  auto layout_c = PartitionLayout::FromBuffer(105.0, 35, 52.5);
  VOD_CHECK_OK(layout_a.status());
  VOD_CHECK_OK(layout_b.status());
  VOD_CHECK_OK(layout_c.status());
  movies.push_back({"top-1", *layout_a, 0.5, nullptr, paper::Fig7MixedBehavior()});
  movies.push_back({"top-2", *layout_b, 0.33, nullptr, paper::Fig7MixedBehavior()});
  movies.push_back({"top-3", *layout_c, 0.25, nullptr, paper::Fig7MixedBehavior()});
  return movies;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("ext_blocking");
  flags.AddBool("csv", false, "emit CSV");
  flags.AddDouble("measure", 15000.0, "measured minutes");
  AddExperimentFlags(&flags);
  VOD_CHECK_OK(flags.Parse(argc, argv));

  std::printf("Extension: shared VCR stream reserve vs blocking "
              "(3 movies, ~50%% buffer coverage, mixed VCR workload)\n\n");

  const double measure = flags.GetDouble("measure");
  const auto movies = Movies();
  const auto experiment = ExperimentOptionsFromFlags(flags, /*base_seed=*/901);

  // Stage 1 — offered load per policy: mean busy dedicated streams under
  // unlimited supply (per movie, summed), which feeds the Erlang-B
  // prediction.
  struct OfferedPoint {
    int piggyback = 0;
    int movie = 0;
  };
  std::vector<OfferedPoint> offered_points;
  for (int pb = 0; pb < 2; ++pb) {
    for (size_t m = 0; m < movies.size(); ++m) {
      offered_points.push_back({pb, static_cast<int>(m)});
    }
  }
  const auto offered_reports = RunExperimentGrid(
      offered_points, experiment,
      [&](const OfferedPoint& point, const CellContext& context) {
        const auto& movie = movies[point.movie];
        SimulationOptions options;
        options.mean_interarrival_minutes =
            1.0 / movie.arrival_rate_per_minute;
        options.behavior = movie.behavior;
        options.warmup_minutes = 1000.0;
        options.measurement_minutes = measure;
        options.seed = context.seed;
        options.piggyback.enabled = point.piggyback == 1;
        options.piggyback.speed_delta = 0.05;
        const auto report =
            RunSimulation(movie.layout, paper::Rates(), options);
        VOD_CHECK_OK(report.status());
        return *report;
      });
  double offered[2] = {0.0, 0.0};
  for (size_t i = 0; i < offered_points.size(); ++i) {
    offered[offered_points[i].piggyback] +=
        offered_reports[i][0].mean_dedicated_streams;
  }
  std::printf("offered load (Erlangs): %.1f without piggyback, %.1f with\n\n",
              offered[0], offered[1]);

  // Stage 2 — the finite-reserve server grid.
  struct ReservePoint {
    bool piggyback = false;
    int64_t reserve = 0;
  };
  std::vector<ReservePoint> reserve_points;
  for (bool piggyback : {false, true}) {
    for (int64_t reserve : {10, 20, 40, 80, 160, 320}) {
      reserve_points.push_back({piggyback, reserve});
    }
  }
  ExperimentOptions server_experiment = experiment;
  server_experiment.base_seed = 555;
  const auto server_reports = RunExperimentGrid(
      reserve_points, server_experiment,
      [&](const ReservePoint& point, const CellContext& context) {
        ServerOptions options;
        options.rates = paper::Rates();
        options.dynamic_stream_reserve = point.reserve;
        options.warmup_minutes = 1000.0;
        options.measurement_minutes = measure;
        options.seed = context.seed;
        options.piggyback.enabled = point.piggyback;
        options.piggyback.speed_delta = 0.05;
        const auto report = RunServerSimulation(movies, options);
        VOD_CHECK_OK(report.status());
        return *report;
      });

  TableWriter table({"reserve", "piggyback", "refusal prob", "Erlang-B pred",
                     "blocked FF/RW", "stalled resumes", "reserve mean use",
                     "reserve peak"});
  for (size_t i = 0; i < reserve_points.size(); ++i) {
    const ReservePoint& point = reserve_points[i];
    const ServerReport& report = server_reports[i][0];
    const auto predicted = ErlangBlockingProbability(
        static_cast<int>(point.reserve), offered[point.piggyback ? 1 : 0]);
    VOD_CHECK_OK(predicted.status());
    table.AddRow({std::to_string(point.reserve), point.piggyback ? "on" : "off",
                  FormatDouble(report.refusal_probability, 4),
                  FormatDouble(*predicted, 4),
                  std::to_string(report.total_blocked_vcr),
                  std::to_string(report.total_stalls),
                  FormatDouble(report.mean_reserve_in_use, 1),
                  std::to_string(report.peak_reserve_in_use)});
  }

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  std::printf("\nReading: without piggybacking the reserve must absorb "
              "misses that pin streams for the rest of the movie; with it, "
              "a far smaller reserve reaches zero refusals.\n");
  return 0;
}
