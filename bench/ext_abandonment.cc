// Extension: viewer abandonment and the non-uniform position density.
//
// The paper assumes every VCR request is issued from a uniformly random
// movie position (P(V_c) = 1/l, §3.1). Real viewers abandon sessions, so
// active positions pile up near the start. This bench simulates exponential
// patience and compares the measured FF hit probability against (a) the
// paper's uniform model and (b) the extended model unconditioned over the
// abandonment-induced position density q(v) ∝ e^{-v/mean} on [0, l].

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/hit_model.h"
#include "dist/exponential.h"
#include "dist/transformed.h"
#include "exp/experiment.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("ext_abandonment");
  flags.AddBool("csv", false, "emit CSV");
  AddExperimentFlags(&flags);
  VOD_CHECK_OK(flags.Parse(argc, argv));

  const auto layout = PartitionLayout::FromBuffer(120.0, 40, 80.0);
  VOD_CHECK_OK(layout.status());
  const auto uniform_model =
      AnalyticHitModel::Create(*layout, paper::Rates());
  VOD_CHECK_OK(uniform_model.status());
  const auto p_uniform = uniform_model->HitProbability(
      VcrOp::kFastForward, paper::Fig7Duration());
  VOD_CHECK_OK(p_uniform.status());

  std::printf("Extension: abandonment skews viewer positions, %s, FF only\n",
              layout->ToString().c_str());
  std::printf("uniform-position model (the paper): P(hit|FF) = %.4f\n\n",
              *p_uniform);

  const std::vector<double> patiences = {1e9, 240.0, 90.0, 45.0, 20.0};
  const auto reports = RunExperimentGrid(
      patiences, ExperimentOptionsFromFlags(flags, /*base_seed=*/808),
      [&](double patience, const CellContext& context) {
        SimulationOptions options;
        options.behavior = paper::Fig7SingleOpBehavior(VcrOp::kFastForward);
        if (patience < 1e8) {
          options.patience =
              std::make_shared<ExponentialDistribution>(patience);
        }
        options.warmup_minutes = 2000.0;
        options.measurement_minutes = 40000.0;
        options.seed = context.seed;
        const auto report = RunSimulation(*layout, paper::Rates(), options);
        VOD_CHECK_OK(report.status());
        return *report;
      });

  TableWriter table({"mean patience (min)", "abandon frac", "sim P(hit|FF)",
                     "model (uniform V_c)", "model (skewed V_c)"});
  for (size_t i = 0; i < patiences.size(); ++i) {
    const double patience = patiences[i];
    const SimulationReport& report = reports[i][0];

    double p_skewed = *p_uniform;
    if (patience < 1e8) {
      HitModelOptions skew;
      skew.position_density = std::make_shared<TruncatedDistribution>(
          std::make_shared<ExponentialDistribution>(patience), 0.0,
          layout->movie_length());
      const auto model =
          AnalyticHitModel::Create(*layout, paper::Rates(), skew);
      VOD_CHECK_OK(model.status());
      const auto p = model->HitProbability(VcrOp::kFastForward,
                                           paper::Fig7Duration());
      VOD_CHECK_OK(p.status());
      p_skewed = *p;
    }

    const double departures = static_cast<double>(report.abandonments +
                                                  report.completions);
    table.AddRow({patience < 1e8 ? FormatDouble(patience, 0) : "inf",
                  FormatDouble(departures > 0
                                   ? report.abandonments / departures
                                   : 0.0,
                               3),
                  FormatDouble(report.hit_probability_in_partition, 4),
                  FormatDouble(*p_uniform, 4), FormatDouble(p_skewed, 4)});
  }

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  std::printf("\nReading: as patience shrinks, the measured hit probability "
              "drifts away from the paper's uniform-V_c prediction; the "
              "q-weighted model follows it.\n");
  return 0;
}
