// Figure 7(c): model vs simulation, pause requests only.

#include "bench/fig7_common.h"

int main(int argc, char** argv) {
  vod::bench::Fig7Config config;
  config.figure = "7(c)";
  config.description = "pause (PAU) requests only";
  config.behavior = vod::paper::Fig7SingleOpBehavior(vod::VcrOp::kPause);
  config.mix = vod::VcrMix::Only(vod::VcrOp::kPause);
  return vod::bench::RunFig7(argc, argv, config);
}
