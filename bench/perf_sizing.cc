// Microbenchmarks of the sizing layer (google-benchmark): the costs an
// operator pays per planning decision.

#include <benchmark/benchmark.h>

#include "core/cost_model.h"
#include "core/erlang.h"
#include "core/sizing.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

void BM_MinimumBufferChoice(benchmark::State& state) {
  // Movie 2 of Example 1 (smallest n_max of the three).
  const auto movies = paper::Example1Movies();
  for (auto _ : state) {
    const auto choice = MinimumBufferChoice(movies[1]);
    benchmark::DoNotOptimize(choice);
  }
}
BENCHMARK(BM_MinimumBufferChoice)->Unit(benchmark::kMillisecond);

void BM_SizeSystemExample1(benchmark::State& state) {
  const auto movies = paper::Example1Movies();
  for (auto _ : state) {
    const auto sized = SizeSystem(movies, 1230);
    benchmark::DoNotOptimize(sized);
  }
}
BENCHMARK(BM_SizeSystemExample1)->Unit(benchmark::kMillisecond);

void BM_SizingCurve(benchmark::State& state) {
  const auto movies = paper::Example1Movies();
  const int step = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto curve = ComputeSizingCurve(movies[2], step);
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(BM_SizingCurve)->Arg(1)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_CostCurve(benchmark::State& state) {
  std::vector<MovieAllocationBound> bounds = {
      {"movie-1", 75.0, 0.1, 360},
      {"movie-2", 60.0, 0.5, 60},
      {"movie-3", 90.0, 0.25, 182},
  };
  for (auto _ : state) {
    const auto curve = ComputeCostCurve(bounds, 11.0, 200);
    benchmark::DoNotOptimize(curve);
  }
}
BENCHMARK(BM_CostCurve);

void BM_ErlangB(benchmark::State& state) {
  const int servers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ErlangBlockingProbability(servers, 0.9 * servers));
  }
}
BENCHMARK(BM_ErlangB)->Arg(100)->Arg(10000);

}  // namespace
}  // namespace vod

BENCHMARK_MAIN();
