// Microbenchmarks of the sharded multi-core server (google-benchmark).
//
// BM_ShardedRun drives one mixed-behavior many-movie server through the
// sharded coordinator at shard counts 1/2/4/8 and reports event and viewer
// throughput. The 1-shard row is the serial baseline (one event kernel, one
// heap); higher rows buy (a) real parallelism up to the machine's core
// count and (b) smaller per-shard heaps and event slabs whose hot paths
// stay cache-resident — at large catalogs the second effect makes the
// speedup superlinear in cores. BENCH_simulator.json tracks
// events_per_second for the default rows.
//
// BM_ShardedRunDegraded is the same catalog with disk faults and the
// windowed degradation ladder armed — pressure mailboxes, the barrier's
// rung step and quota apportionment, and the shards' queued-VCR retry
// machinery all on the hot path — pricing graceful degradation against the
// plain rows.
//
// BM_ShardedRunGiant is the 10M-viewer scaling run behind EXPERIMENTS.md's
// shards-vs-throughput table: an 8192-movie catalog with ~450k concurrent
// viewers, minutes of wall clock per row. It only registers when
// VOD_BENCH_GIANT is set in the environment so that a default invocation
// (CI smoke, `for b in build/bench/*`) stays fast:
//
//   VOD_BENCH_GIANT=1 bench/perf_sharded --benchmark_filter=Giant

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "sim/sharded_server.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

/// A mixed catalog: four layout/behavior templates cycled over `count`
/// movies with rates fanned across a 4x range, so shards see different
/// event densities and the barrier must handle imbalance. The template
/// pattern is decorrelated from i % shards for every power-of-two shard
/// count.
std::vector<ServerMovieSpec> MixedCatalog(int count) {
  struct Template {
    double length;
    int streams;
    double buffer;
    VcrBehavior behavior;
  };
  const Template kTemplates[] = {
      {120.0, 40, 80.0, paper::Fig7MixedBehavior()},
      {90.0, 30, 45.0, paper::Fig7SingleOpBehavior(VcrOp::kFastForward)},
      {100.0, 20, 50.0, paper::Fig7MixedBehavior()},
      {110.0, 25, 60.0, paper::Fig7SingleOpBehavior(VcrOp::kPause)},
  };
  std::vector<ServerMovieSpec> movies;
  movies.reserve(count);
  for (int i = 0; i < count; ++i) {
    const Template& t = kTemplates[(i + i / 4) % 4];
    const double rate = 0.15 + 0.45 * ((i * 7) % 16) / 15.0;
    auto layout = PartitionLayout::FromBuffer(t.length, t.streams, t.buffer);
    movies.push_back({"movie" + std::to_string(i), *layout, rate, nullptr,
                      t.behavior});
  }
  return movies;
}

/// Observability posture for a bench row (DESIGN.md §14).
enum class BenchObs {
  kOff,   ///< no bus at all — the historical baseline
  kIdle,  ///< bus attached with no sinks: prices the dormant branches
  kOn,    ///< ring-buffered trace + sampled metrics: full telemetry cost
};

/// Runs the sharded server over `movie_count` movies at the benchmark's
/// shard count, with one worker thread per shard up to the hardware limit.
/// `degraded` arms faults plus the windowed degradation ladder, so the
/// barrier's pressure fold / rung step / quota apportionment and the
/// shards' queued-VCR machinery are all on the measured path.
void RunSharded(benchmark::State& state, int movie_count,
                double measurement_minutes, bool degraded = false,
                BenchObs obs = BenchObs::kOff) {
  const int shards = static_cast<int>(state.range(0));
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const auto movies = MixedCatalog(movie_count);
  ShardedServerOptions options;
  options.base.rates = paper::Rates();
  options.base.dynamic_stream_reserve = 2 * movie_count;
  options.base.warmup_minutes = 200.0;
  options.base.measurement_minutes = measurement_minutes;
  options.shards = shards;
  options.threads = shards < hw ? shards : hw;
  options.window_minutes = 60.0;
  if (degraded) {
    options.base.faults.enabled = true;
    options.base.faults.disks = 4;
    options.base.faults.profile.mtbf_minutes = 600.0;
    options.base.faults.profile.mttr_minutes = 300.0;
    options.base.degradation.enabled = true;
    options.base.degradation.queue_deadline_minutes = 5.0;
  }
  EventLog event_log;
  EventRing trace_ring(1 << 16);
  MetricsRegistry registry;
  if (obs == BenchObs::kIdle) {
    // Bus wired but sink-less: every emission site runs its ShouldEmit
    // check and the shard lanes stay dark. This is the overhead a run pays
    // for obs *capability* without a consumer — the ≤2% budget row.
    options.base.obs.event_log = &event_log;
  } else if (obs == BenchObs::kOn) {
    event_log.AddSink(&trace_ring);
    options.base.obs.event_log = &event_log;
    options.base.obs.metrics = &registry;
    options.base.obs.metrics_sample_minutes = 120.0;
  }
  uint64_t seed = 1;
  uint64_t total_events = 0;
  int64_t total_viewers = 0;
  double simulated_minutes = 0.0;
  for (auto _ : state) {
    options.base.seed = seed++;
    const auto report = RunShardedServerSimulation(movies, options);
    benchmark::DoNotOptimize(report);
    if (report.ok()) {
      total_events += report->executed_events;
      total_viewers += report->aggregate.admissions;
      simulated_minutes +=
          options.base.warmup_minutes + options.base.measurement_minutes;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(simulated_minutes));
  state.SetLabel("items = simulated minutes");
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(total_events), benchmark::Counter::kIsRate);
  state.counters["viewers_per_second"] = benchmark::Counter(
      static_cast<double>(total_viewers), benchmark::Counter::kIsRate);
  state.counters["viewers"] = benchmark::Counter(
      static_cast<double>(total_viewers) /
      static_cast<double>(state.iterations()));
}

void BM_ShardedRun(benchmark::State& state) {
  RunSharded(state, /*movie_count=*/384, /*measurement_minutes=*/3000.0);
}

void BM_ShardedRunDegraded(benchmark::State& state) {
  RunSharded(state, /*movie_count=*/384, /*measurement_minutes=*/3000.0,
             /*degraded=*/true);
}

void BM_ShardedRunObsIdle(benchmark::State& state) {
  RunSharded(state, /*movie_count=*/384, /*measurement_minutes=*/3000.0,
             /*degraded=*/false, BenchObs::kIdle);
}

void BM_ShardedRunTraced(benchmark::State& state) {
  RunSharded(state, /*movie_count=*/384, /*measurement_minutes=*/3000.0,
             /*degraded=*/false, BenchObs::kOn);
}

void BM_ShardedRunGiant(benchmark::State& state) {
  // ~10.1M viewers admitted per measured iteration (8192 movies, mean rate
  // 0.375/min, 3300 measured minutes), ~450k concurrently live.
  RunSharded(state, /*movie_count=*/8192, /*measurement_minutes=*/3300.0);
}

void RegisterBenches() {
  auto* smoke = benchmark::RegisterBenchmark("BM_ShardedRun", BM_ShardedRun);
  smoke->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(
      benchmark::kMillisecond);
  // Faults + windowed ladder live: what graceful degradation costs at the
  // barrier. Shares the BM_ShardedRun name prefix so the CI smoke filter
  // picks it up.
  auto* degraded = benchmark::RegisterBenchmark("BM_ShardedRunDegraded",
                                                BM_ShardedRunDegraded);
  degraded->Arg(1)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);
  // Obs postures at the 4-shard row (vs. the plain BM_ShardedRun/4 row):
  // idle prices the dormant branches (the telemetry-only budget is ≤ ~2%),
  // traced prices full per-shard lanes + barrier merge + sampled metrics.
  auto* obs_idle = benchmark::RegisterBenchmark("BM_ShardedRunObsIdle",
                                                BM_ShardedRunObsIdle);
  obs_idle->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);
  auto* traced = benchmark::RegisterBenchmark("BM_ShardedRunTraced",
                                              BM_ShardedRunTraced);
  traced->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);
  if (std::getenv("VOD_BENCH_GIANT") != nullptr) {
    auto* giant =
        benchmark::RegisterBenchmark("BM_ShardedRunGiant", BM_ShardedRunGiant);
    giant->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()->Unit(
        benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace vod

int main(int argc, char** argv) {
  vod::RegisterBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
