// Figure 8: feasible (B, n) pairs for Example 1's three movies, stepped by
// 5 minutes of buffer, with the model-predicted hit probability per pair.
//
// A pair is feasible when P(hit) >= P* = 0.5. The paper plots the feasible
// pairs for each movie; the rightmost feasible point per movie (minimum
// buffer, maximum streams) is the one Example 1's optimizer selects.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/sizing.h"
#include "workload/paper_presets.h"

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("fig8_feasible_pairs");
  flags.AddDouble("buffer_step", 5.0, "buffer step in minutes (paper: 5)");
  flags.AddBool("csv", false, "emit CSV instead of an aligned table");
  VOD_CHECK_OK(flags.Parse(argc, argv));
  const double step = flags.GetDouble("buffer_step");

  std::printf("Figure 8: feasible (B, n) pairs per movie, %.0f-minute "
              "buffer step, P* = 0.5\n\n",
              step);

  TableWriter table(
      {"movie", "l", "w", "B", "n", "P(hit)", "feasible"});
  for (const MovieSizingSpec& spec : paper::Example1Movies()) {
    for (double buffer = step; buffer < spec.length_minutes; buffer += step) {
      // Eq. (2): n = (l − B)/w, rounded to the nearest integer stream count.
      const int streams = static_cast<int>(std::lround(
          (spec.length_minutes - buffer) / spec.max_wait_minutes));
      if (streams < 1) continue;
      const auto layout = PartitionLayout::FromMaxWait(
          spec.length_minutes, streams, spec.max_wait_minutes);
      if (!layout.ok()) continue;
      const auto model = AnalyticHitModel::Create(*layout, spec.rates);
      VOD_CHECK_OK(model.status());
      const auto p = model->HitProbability(spec.mix, spec.durations);
      VOD_CHECK_OK(p.status());
      table.AddRow({spec.name, FormatDouble(spec.length_minutes, 0),
                    FormatDouble(spec.max_wait_minutes, 2),
                    FormatDouble(layout->buffer_minutes(), 1),
                    std::to_string(streams), FormatDouble(*p, 4),
                    *p >= spec.min_hit_probability ? "yes" : "no"});
    }
  }

  if (flags.GetBool("csv")) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  return 0;
}
