// Microbenchmarks of the distribution library (google-benchmark):
// sampling and CDF evaluation costs, which bound both simulator and model
// throughput.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dist/exponential.h"
#include "dist/gamma.h"
#include "dist/lognormal.h"
#include "dist/special_functions.h"
#include "dist/weibull.h"

namespace vod {
namespace {

void BM_SampleExponential(benchmark::State& state) {
  ExponentialDistribution dist(5.0);
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(dist.Sample(&rng));
}
BENCHMARK(BM_SampleExponential);

void BM_SampleGamma(benchmark::State& state) {
  GammaDistribution dist(2.0, 4.0);
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(dist.Sample(&rng));
}
BENCHMARK(BM_SampleGamma);

void BM_SampleGammaShapeBelowOne(benchmark::State& state) {
  GammaDistribution dist(0.5, 1.0);
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(dist.Sample(&rng));
}
BENCHMARK(BM_SampleGammaShapeBelowOne);

void BM_SampleWeibull(benchmark::State& state) {
  WeibullDistribution dist(1.5, 3.0);
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(dist.Sample(&rng));
}
BENCHMARK(BM_SampleWeibull);

void BM_SampleLognormal(benchmark::State& state) {
  LognormalDistribution dist(0.0, 1.0);
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(dist.Sample(&rng));
}
BENCHMARK(BM_SampleLognormal);

void BM_CdfExponential(benchmark::State& state) {
  ExponentialDistribution dist(5.0);
  double x = 0.0;
  for (auto _ : state) {
    x += 0.001;
    if (x > 40.0) x = 0.0;
    benchmark::DoNotOptimize(dist.Cdf(x));
  }
}
BENCHMARK(BM_CdfExponential);

void BM_CdfGamma(benchmark::State& state) {
  GammaDistribution dist(2.0, 4.0);
  double x = 0.0;
  for (auto _ : state) {
    x += 0.001;
    if (x > 40.0) x = 0.0;
    benchmark::DoNotOptimize(dist.Cdf(x));
  }
}
BENCHMARK(BM_CdfGamma);

void BM_CdfLognormal(benchmark::State& state) {
  LognormalDistribution dist(0.0, 1.0);
  double x = 0.0;
  for (auto _ : state) {
    x += 0.001;
    if (x > 40.0) x = 0.0;
    benchmark::DoNotOptimize(dist.Cdf(x));
  }
}
BENCHMARK(BM_CdfLognormal);

void BM_RegularizedGammaP(benchmark::State& state) {
  double x = 0.0;
  for (auto _ : state) {
    x += 0.001;
    if (x > 30.0) x = 0.0;
    benchmark::DoNotOptimize(RegularizedGammaP(2.0, x));
  }
}
BENCHMARK(BM_RegularizedGammaP);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Uniform01());
}
BENCHMARK(BM_RngUniform);

}  // namespace
}  // namespace vod

BENCHMARK_MAIN();
