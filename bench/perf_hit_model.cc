// Microbenchmarks of the analytic engine (google-benchmark).
//
// Not a paper artifact: measures the cost of one P(hit) evaluation — the
// unit of work in every sizing sweep — across stream counts, quadrature
// orders, and evaluation paths (interval engine vs literal paper equations
// vs brute-force reference).

#include <benchmark/benchmark.h>

#include "core/hit_model.h"
#include "core/paper_equations.h"
#include "core/reference_model.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

void BM_HitProbabilityVsStreams(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto layout = PartitionLayout::FromMaxWait(120.0, n, 1.0);
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  const auto compiled =
      CompiledDuration::Create(paper::Fig7Duration(), 120.0);
  for (auto _ : state) {
    const auto p = model->HitProbability(VcrOp::kFastForward, *compiled);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_HitProbabilityVsStreams)->Arg(10)->Arg(40)->Arg(100);

void BM_HitProbabilityByOp(benchmark::State& state) {
  const auto op = static_cast<VcrOp>(state.range(0));
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  const auto model = AnalyticHitModel::Create(*layout, paper::Rates());
  const auto compiled =
      CompiledDuration::Create(paper::Fig7Duration(), 120.0);
  for (auto _ : state) {
    const auto p = model->HitProbability(op, *compiled);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_HitProbabilityByOp)->Arg(0)->Arg(1)->Arg(2);

void BM_CompileDuration(benchmark::State& state) {
  const auto gamma = paper::Fig7Duration();
  for (auto _ : state) {
    const auto compiled = CompiledDuration::Create(gamma, 120.0);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileDuration);

void BM_QuadratureOrder(benchmark::State& state) {
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  HitModelOptions options;
  options.d_quadrature_points = static_cast<int>(state.range(0));
  const auto model =
      AnalyticHitModel::Create(*layout, paper::Rates(), options);
  const auto compiled =
      CompiledDuration::Create(paper::Fig7Duration(), 120.0);
  for (auto _ : state) {
    const auto p = model->HitProbability(VcrOp::kFastForward, *compiled);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_QuadratureOrder)->Arg(8)->Arg(32)->Arg(128);

void BM_PaperEquationsFF(benchmark::State& state) {
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  const auto gamma = paper::Fig7Duration();
  for (auto _ : state) {
    const auto p =
        PaperFastForwardHitProbability(*layout, paper::Rates(), *gamma, 24);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PaperEquationsFF);

void BM_ReferenceModelFF(benchmark::State& state) {
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  const auto gamma = paper::Fig7Duration();
  ReferenceModelOptions options;
  options.vc_panels = 64;
  for (auto _ : state) {
    const auto p = ReferenceHitProbability(VcrOp::kFastForward, *layout,
                                           paper::Rates(), *gamma, options);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ReferenceModelFF);

}  // namespace
}  // namespace vod

BENCHMARK_MAIN();
