// Example 1: optimal buffer/stream allocation for three popular movies
// versus the pure-batching baseline.
//
// Paper's numbers: pure batching needs 1230 streams (P(hit) = 0); the sized
// allocation needs ~602 streams plus ~113.5 minutes of buffer,
// [(B,n)] = [(39, 360), (30, 60), (44.5, 182)]. The exact split depends on
// the VCR-operation mix, which the paper leaves unstated; this bench prints
// the FF-only sizing (the operation the paper derives) and the Fig-7(d)
// mixed sizing side by side.

#include <cstdio>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/sizing.h"
#include "workload/paper_presets.h"

namespace {

void RunCase(const char* label, const std::vector<vod::MovieSizingSpec>& movies,
             bool csv) {
  using namespace vod;
  const int pure = PureBatchingStreams(movies);
  const auto sized = SizeSystem(movies, pure);
  VOD_CHECK_OK(sized.status());

  std::printf("--- %s ---\n", label);
  TableWriter table({"movie", "B* (min)", "n*", "P(hit) at (B*, n*)"});
  for (size_t i = 0; i < movies.size(); ++i) {
    const auto choice = MinimumBufferChoice(movies[i]);
    VOD_CHECK_OK(choice.status());
    table.AddRow({movies[i].name, FormatDouble(choice->buffer_minutes, 1),
                  std::to_string(choice->streams),
                  FormatDouble(choice->hit_probability, 4)});
  }
  if (csv) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
  std::printf(
      "pure batching baseline : %4d streams, 0 buffer, P(hit) = 0\n"
      "sized allocation       : %4d streams, %.1f buffer-minutes\n"
      "streams saved          : %4d (%.0f%%)\n\n",
      pure, sized->total_streams, sized->total_buffer_minutes,
      pure - sized->total_streams,
      100.0 * (pure - sized->total_streams) / pure);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vod;
  FlagSet flags("table_example1_allocation");
  flags.AddBool("csv", false, "emit CSV tables");
  VOD_CHECK_OK(flags.Parse(argc, argv));

  std::printf("Example 1: resource pre-allocation for movies "
              "{75, 60, 90} min, w = {0.1, 0.5, 0.25} min, P* = 0.5\n"
              "paper reference: [(39, 360), (30, 60), (44.5, 182)], "
              "113.5 buffer-minutes, 602 streams vs 1230 pure batching\n\n");

  RunCase("FF-only sizing (the operation the paper derives)",
          paper::Example1Movies(VcrMix::Only(VcrOp::kFastForward)),
          flags.GetBool("csv"));
  RunCase("mixed sizing (P_FF=0.2, P_RW=0.2, P_PAU=0.6)",
          paper::Example1Movies(VcrMix::PaperMixed()), flags.GetBool("csv"));
  return 0;
}
