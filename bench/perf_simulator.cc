// Microbenchmarks of the discrete-event simulator (google-benchmark).
//
// Reports simulated-minutes-per-second and event throughput for the
// workloads the validation benches run, so regressions in the event kernel
// or the partition lookup are visible.

#include <benchmark/benchmark.h>

#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "sim/event_queue.h"
#include "sim/partition_schedule.h"
#include "sim/simulator.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

void BM_SimulationRun(benchmark::State& state) {
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  SimulationOptions options;
  options.behavior = paper::Fig7MixedBehavior();
  options.warmup_minutes = 100.0;
  options.measurement_minutes = static_cast<double>(state.range(0));
  uint64_t seed = 1;
  uint64_t total_events = 0;
  for (auto _ : state) {
    options.seed = seed++;
    const auto report = RunSimulation(*layout, paper::Rates(), options);
    benchmark::DoNotOptimize(report);
    total_events += report.ok() ? report->executed_events : 0;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("items = simulated minutes");
  // Kernel throughput, the metric BENCH_simulator.json tracks: simulated
  // minutes per second depends on the workload's event density, events/sec
  // does not.
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(total_events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulationRun)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

// Same workload forced onto the scalar (non-batched) dispatch loop. The
// delta against BM_SimulationRun is run extraction's whole contribution
// (DESIGN.md §15.1) measured back-to-back in one process, which makes it
// immune to the run-to-run throughput drift of shared containers — the
// honest way to quote the batching win here.
void BM_SimulationRunScalar(benchmark::State& state) {
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  SimulationOptions options;
  options.behavior = paper::Fig7MixedBehavior();
  options.warmup_minutes = 100.0;
  options.measurement_minutes = static_cast<double>(state.range(0));
  options.scalar_event_dispatch = true;
  uint64_t seed = 1;
  uint64_t total_events = 0;
  for (auto _ : state) {
    options.seed = seed++;
    const auto report = RunSimulation(*layout, paper::Rates(), options);
    benchmark::DoNotOptimize(report);
    total_events += report.ok() ? report->executed_events : 0;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("items = simulated minutes");
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(total_events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulationRunScalar)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

// Same workload with the invariant auditor at its default cadence; the
// delta against BM_SimulationRun is the auditor's overhead (EXPERIMENTS.md
// quotes it: ~5-7% of the post-kernel-rewrite baseline).
void BM_SimulationRunAudited(benchmark::State& state) {
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  SimulationOptions options;
  options.behavior = paper::Fig7MixedBehavior();
  options.warmup_minutes = 100.0;
  options.measurement_minutes = static_cast<double>(state.range(0));
  options.audit.enabled = true;
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto report = RunSimulation(*layout, paper::Rates(), options);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("items = simulated minutes");
}
BENCHMARK(BM_SimulationRunAudited)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

// Same workload with an event log attached but no sinks: every emission
// site pays its guard (one pointer test + one masked branch) and nothing
// else. The delta against BM_SimulationRun is the cost of *carrying* the
// observability layer while it is off — DESIGN.md §9 quotes it, and the
// acceptance bar is <= 2%.
void BM_SimulationRunObsIdle(benchmark::State& state) {
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  SimulationOptions options;
  options.behavior = paper::Fig7MixedBehavior();
  options.warmup_minutes = 100.0;
  options.measurement_minutes = static_cast<double>(state.range(0));
  EventLog log;  // no sinks attached: ShouldEmit() is false at every site
  options.obs.event_log = &log;
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto report = RunSimulation(*layout, paper::Rates(), options);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("items = simulated minutes");
}
BENCHMARK(BM_SimulationRunObsIdle)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

// Full tracing into a bounded in-memory ring plus cadenced metrics
// sampling: the cost of observability when it is *on*.
void BM_SimulationRunTraced(benchmark::State& state) {
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  SimulationOptions options;
  options.behavior = paper::Fig7MixedBehavior();
  options.warmup_minutes = 100.0;
  options.measurement_minutes = static_cast<double>(state.range(0));
  EventLog log;
  EventRing ring(1 << 16);
  log.AddSink(&ring);
  MetricsRegistry registry;
  options.obs.event_log = &log;
  options.obs.metrics = &registry;
  options.obs.metrics_sample_minutes = 100.0;
  uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    const auto report = RunSimulation(*layout, paper::Rates(), options);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("items = simulated minutes");
}
BENCHMARK(BM_SimulationRunTraced)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      q.Schedule(static_cast<double>((i * 7919) % 1000),
                 [&counter] { ++counter; });
    }
    while (q.RunNext()) {
    }
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_PartitionLookup(benchmark::State& state) {
  const auto layout = PartitionLayout::FromMaxWait(120.0, 40, 1.0);
  PartitionSchedule schedule(*layout);
  double t = 0.0;
  double p = 0.0;
  int64_t hits = 0;
  for (auto _ : state) {
    t += 0.37;
    p += 0.73;
    if (p > 120.0) p -= 120.0;
    const auto covering = schedule.FindCoveringStream(t, p);
    hits += covering.has_value() ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_PartitionLookup);

}  // namespace
}  // namespace vod

BENCHMARK_MAIN();
