// Chaos-soak harness for crash-recoverable experiment grids.
//
// The parent process runs a worker copy of this binary (fork + exec of
// /proc/self/exe) over a fixed multi-configuration sweep, SIGKILLs it at a
// randomized point mid-sweep, restarts it with --resume, and repeats for
// --cycles kills before letting a final resume complete. The recovered
// report must be byte-identical to a golden, uninterrupted run of the same
// sweep — any lost cell, double-merged cell, or torn checkpoint shows up as
// a byte difference or a failed resume. The kill schedule derives from
// --seed, so a failing run is replayable.
//
// This is the out-of-process counterpart of
// tests/exp/checkpoint_test.cc (which emulates kills in-process via
// CheckpointOptions::max_cells) and of `vodctl soak` (which soaks the CLI).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "core/partition_layout.h"
#include "exp/checkpoint.h"
#include "sim/simulator.h"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define SOAK_HAS_FORK 1
#else
#define SOAK_HAS_FORK 0
#endif

namespace vod {
namespace {

constexpr int64_t kConfigs = 2;  // two buffer budgets
constexpr uint64_t kFingerprintSalt = 0xC4A5ED0C;

void AddSweepFlags(FlagSet* flags) {
  flags->AddInt64("replications", 6, "replications per configuration");
  // Sized so a full sweep takes a few hundred ms: long enough that the
  // default kill window interrupts it mid-flight, short enough for CI.
  flags->AddDouble("measure", 100000.0, "measured minutes per replication");
  flags->AddInt64("seed", 20240707, "base seed of the sweep");
  flags->AddInt64("threads", 2, "worker threads inside the sweep");
}

SimulationReport RunSweepCell(double measure, const CellContext& context) {
  auto layout = PartitionLayout::FromBuffer(
      120.0, 6, 40.0 + 20.0 * context.config_index);
  VOD_CHECK(layout.ok());
  SimulationOptions options;
  options.warmup_minutes = measure * 0.05;
  options.measurement_minutes = measure;
  options.seed = context.seed;
  options.audit.enabled = true;  // the soak audits invariants throughout
  auto report = RunSimulation(*layout, PlaybackRates{}, options);
  VOD_CHECK_OK(report.status());
  return *report;
}

uint64_t SweepFingerprint(const FlagSet& flags) {
  std::ostringstream description;
  description << "soak-crash-recovery-v1 configs=" << kConfigs
              << " measure=" << flags.GetDouble("measure");
  return HashGridDescription(description.str()) ^ kFingerprintSalt;
}

/// Worker mode: runs the (possibly resumed) checkpointed sweep to
/// completion and writes the full grid report text to --report_out.
int WorkerMain(const FlagSet& flags) {
  ExperimentOptions experiment;
  experiment.threads = static_cast<int>(flags.GetInt64("threads"));
  experiment.replications = static_cast<int>(flags.GetInt64("replications"));
  experiment.base_seed = static_cast<uint64_t>(flags.GetInt64("seed"));

  CheckpointOptions checkpoint;
  checkpoint.path = flags.GetString("checkpoint");
  checkpoint.checkpoint_every = 1;  // maximum crash-surface per run
  checkpoint.resume = flags.GetBool("resume");

  const double measure = flags.GetDouble("measure");
  auto result = RunCheckpointedReportGrid(
      kConfigs, experiment, checkpoint, SweepFingerprint(flags),
      [measure](const CellContext& context) {
        return RunSweepCell(measure, context);
      });
  if (!result.ok()) {
    std::fprintf(stderr, "worker: %s\n", result.status().ToString().c_str());
    return 1;
  }
  VOD_CHECK(result->complete);

  std::ostringstream text;
  for (int64_t c = 0; c < kConfigs; ++c) {
    for (size_t r = 0; r < result->reports[c].size(); ++r) {
      text << "config " << c << " rep " << r << ": "
           << result->reports[c][r].ToString() << "\n";
    }
  }
  std::ofstream out(flags.GetString("report_out"),
                    std::ios::binary | std::ios::trunc);
  out << text.str();
  if (!out) {
    std::fprintf(stderr, "worker: cannot write %s\n",
                 flags.GetString("report_out").c_str());
    return 1;
  }
  return 0;
}

#if SOAK_HAS_FORK

/// Spawns this binary in worker mode; SIGKILLs it after `kill_after_ms`
/// (< 0 = let it finish). Returns exit code, or -signal on signal death.
int RunWorker(const std::vector<std::string>& args, int kill_after_ms) {
  const pid_t pid = fork();
  VOD_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    std::vector<std::string> storage = args;
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("soak_crash_recovery"));
    for (std::string& arg : storage) argv.push_back(arg.data());
    argv.push_back(nullptr);
    execv("/proc/self/exe", argv.data());
    _exit(127);
  }
  if (kill_after_ms >= 0) {
    usleep(static_cast<useconds_t>(kill_after_ms) * 1000);
    kill(pid, SIGKILL);
  }
  int wstatus = 0;
  VOD_CHECK_MSG(waitpid(pid, &wstatus, 0) >= 0, "waitpid failed");
  return WIFSIGNALED(wstatus) ? -WTERMSIG(wstatus) : WEXITSTATUS(wstatus);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  VOD_CHECK_MSG(in.good(), "missing report file");
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

int ParentMain(const FlagSet& flags) {
  const std::string prefix = flags.GetString("prefix");
  const std::string golden_path = prefix + ".golden";
  const std::string report_path = prefix + ".report";
  const std::string ckpt_path = prefix + ".ckpt";
  std::remove(golden_path.c_str());
  std::remove(report_path.c_str());
  std::remove(ckpt_path.c_str());

  const std::vector<std::string> sweep_args = {
      "--worker",
      "--replications=" + std::to_string(flags.GetInt64("replications")),
      "--measure=" + std::to_string(flags.GetDouble("measure")),
      "--seed=" + std::to_string(flags.GetInt64("seed")),
      "--threads=" + std::to_string(flags.GetInt64("threads")),
  };

  std::printf("soak: golden uninterrupted run...\n");
  std::vector<std::string> golden_args = sweep_args;
  golden_args.push_back("--report_out=" + golden_path);
  const int golden_exit = RunWorker(golden_args, /*kill_after_ms=*/-1);
  if (golden_exit != 0) {
    std::fprintf(stderr, "soak: golden run failed (exit %d)\n", golden_exit);
    return 1;
  }

  Rng kill_rng(static_cast<uint64_t>(flags.GetInt64("seed")) ^
               0x4B494C4Cull);  // "KILL"
  const int64_t kill_min = flags.GetInt64("kill_min_ms");
  const int64_t kill_span = flags.GetInt64("kill_max_ms") - kill_min + 1;
  bool finished_early = false;
  for (int64_t cycle = 0; cycle < flags.GetInt64("cycles"); ++cycle) {
    std::vector<std::string> args = sweep_args;
    args.push_back("--checkpoint=" + ckpt_path);
    args.push_back("--report_out=" + report_path);
    if (FileExists(ckpt_path)) args.push_back("--resume");
    const int kill_after = static_cast<int>(
        kill_min + static_cast<int64_t>(
                       kill_rng.UniformInt(static_cast<uint64_t>(kill_span))));
    const int exit_code = RunWorker(args, kill_after);
    std::printf("soak: cycle %lld: SIGKILL scheduled at %d ms -> %s\n",
                static_cast<long long>(cycle), kill_after,
                exit_code == -SIGKILL
                    ? "killed mid-sweep"
                    : ("exit " + std::to_string(exit_code)).c_str());
    if (exit_code == 0) {
      finished_early = true;
      break;
    }
    if (exit_code != -SIGKILL) {
      std::fprintf(stderr, "soak: worker failed (exit %d), not killed\n",
                   exit_code);
      return 1;
    }
  }

  if (!finished_early) {
    std::vector<std::string> args = sweep_args;
    args.push_back("--checkpoint=" + ckpt_path);
    args.push_back("--report_out=" + report_path);
    if (FileExists(ckpt_path)) args.push_back("--resume");
    const int exit_code = RunWorker(args, /*kill_after_ms=*/-1);
    if (exit_code != 0) {
      std::fprintf(stderr, "soak: final resume failed (exit %d)\n",
                   exit_code);
      return 1;
    }
  }

  const std::string golden = ReadFileBytes(golden_path);
  const std::string recovered = ReadFileBytes(report_path);
  if (golden != recovered) {
    std::fprintf(stderr,
                 "soak: FAIL — recovered report differs from golden\n"
                 "--- golden ---\n%s--- recovered ---\n%s",
                 golden.c_str(), recovered.c_str());
    return 1;
  }
  std::printf("soak: PASS — recovered report byte-identical to golden "
              "(%zu bytes)\n", golden.size());
  std::remove(golden_path.c_str());
  std::remove(report_path.c_str());
  std::remove(ckpt_path.c_str());
  return 0;
}

#endif  // SOAK_HAS_FORK

int Main(int argc, char** argv) {
  FlagSet flags("soak_crash_recovery");
  AddSweepFlags(&flags);
  flags.AddInt64("cycles", 3, "SIGKILL/resume cycles");
  flags.AddInt64("kill_min_ms", 15, "earliest kill, ms after worker start");
  flags.AddInt64("kill_max_ms", 300, "latest kill, ms after worker start");
  flags.AddString("prefix", "soak_crash_recovery", "work-file prefix");
  flags.AddBool("worker", false, "internal: run one sweep (worker mode)");
  flags.AddString("checkpoint", "", "internal: worker checkpoint file");
  flags.AddBool("resume", false, "internal: worker resumes --checkpoint");
  flags.AddString("report_out", "", "internal: worker report file");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  if (flags.GetBool("worker")) return WorkerMain(flags);
#if SOAK_HAS_FORK
  return ParentMain(flags);
#else
  std::printf("soak: skipped — no fork/exec on this platform\n");
  return 0;
#endif
}

}  // namespace
}  // namespace vod

int main(int argc, char** argv) { return vod::Main(argc, argv); }
