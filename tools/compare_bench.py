#!/usr/bin/env python3
"""Compares a fresh perf-baseline document against the committed reference.

Consumes two JSON documents produced by tools/make_bench_baseline.py and
prints a per-benchmark comparison of the throughput metrics (ns_per_event
when the bench exports an events_per_second counter, ns_per_item otherwise,
falling back to real_time_ns). Exits non-zero when any benchmark regresses
past its threshold (a ratio: 1.5 = candidate may be up to 50% slower) or
when peak RSS grows by more than --rss-threshold.

Two threshold tiers:

  * Kernel benches (--kernel-threshold, default 1.3): the event-queue
    microbenches plus the end-to-end simulation loops (BM_SimulationRun*,
    BM_ShardedRun*). These are single-hot-loop measurements with low
    run-to-run variance even on shared runners, so the gate is kept tight —
    the whole point of tracking them is that kernel-regression PRs fail.
  * Everything else (--threshold, default 2.0): deliberately loose; shared
    CI runners are too noisy for single-digit percentages on macro benches —
    those are for a quiet local machine with --threshold=1.1.

A document whose provenance says it was built from a non-Release tree is
refused outright (override with --allow-non-release): gating against a
Debug baseline silently waves every regression through. Documents predating
the provenance block are accepted with a warning.

Benchmarks present on only one side are reported but never fatal: the gate
must not brick CI when a bench is added or renamed.

Stdlib only. Usage:

    tools/compare_bench.py BENCH_simulator.json build-rel/BENCH_simulator.json
    tools/compare_bench.py --threshold=1.1 baseline.json candidate.json
"""

import argparse
import json
import sys

# Preferred metric per benchmark, first present wins. Lower is better for
# all of them.
METRICS = ("ns_per_event", "ns_per_item", "real_time_ns")

# Benchmark-name prefixes held to the tight kernel threshold: the
# perf_event_queue microbenches and the end-to-end run loops.
KERNEL_PREFIXES = (
    "BM_SimulationRun",
    "BM_ShardedRun",
    "BM_EventQueueScheduleRun",
    "BM_HoldModel",
    "BM_PopOnly",
    "BM_ScheduleOnly",
    "BM_ScheduleCancelMix",
    "BM_CancelBurstThenDrain",
)


def is_kernel_bench(name):
    return name.startswith(KERNEL_PREFIXES)


def load(path, allow_non_release):
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" not in doc:
        raise SystemExit(f"{path}: not a make_bench_baseline.py document")
    build_type = doc.get("provenance", {}).get("build_type")
    if build_type is None:
        print(f"WARNING: {path} has no provenance block (pre-provenance "
              "document) — build type unverified", file=sys.stderr)
    elif build_type != "Release":
        msg = (f"{path}: built from a {build_type or 'unknown'} tree, not "
               "Release — a non-Release baseline waves regressions through")
        if not allow_non_release:
            raise SystemExit(msg + " (pass --allow-non-release to override)")
        print(f"WARNING: {msg}", file=sys.stderr)
    return doc


def pick_metric(entry):
    for metric in METRICS:
        if metric in entry:
            return metric, entry[metric]
    return None, None


def main():
    parser = argparse.ArgumentParser(
        description="Gate a perf-baseline document against a reference."
    )
    parser.add_argument("baseline", help="committed reference JSON")
    parser.add_argument("candidate", help="freshly generated JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="max allowed slowdown ratio per macro benchmark (default 2.0)",
    )
    parser.add_argument(
        "--kernel-threshold",
        type=float,
        default=1.3,
        help="max allowed slowdown ratio for kernel benches "
             "(BM_SimulationRun*, BM_ShardedRun*, the perf_event_queue "
             "rows; default 1.3)",
    )
    parser.add_argument(
        "--rss-threshold",
        type=float,
        default=2.0,
        help="max allowed peak-RSS growth ratio (default 2.0)",
    )
    parser.add_argument(
        "--allow-non-release",
        action="store_true",
        help="downgrade the non-Release-provenance refusal to a warning",
    )
    args = parser.parse_args()
    if min(args.threshold, args.kernel_threshold, args.rss_threshold) <= 0:
        raise SystemExit("thresholds must be positive")

    baseline = load(args.baseline, args.allow_non_release)
    candidate = load(args.candidate, args.allow_non_release)
    base_benches = baseline["benchmarks"]
    cand_benches = candidate["benchmarks"]

    regressions = []
    width = max((len(n) for n in base_benches), default=20)
    print(f"{'benchmark':<{width}}  {'metric':>12}  {'base':>12}  "
          f"{'cand':>12}  {'ratio':>7}")
    for name in sorted(base_benches):
        if name not in cand_benches:
            print(f"{name:<{width}}  (missing from candidate — skipped)")
            continue
        metric, base_value = pick_metric(base_benches[name])
        if metric is None or base_value <= 0:
            print(f"{name:<{width}}  (no comparable metric — skipped)")
            continue
        cand_value = cand_benches[name].get(metric)
        if cand_value is None or cand_value <= 0:
            print(f"{name:<{width}}  ({metric} missing from candidate — "
                  "skipped)")
            continue
        ratio = cand_value / base_value
        threshold = (args.kernel_threshold if is_kernel_bench(name)
                     else args.threshold)
        flag = ""
        if ratio > threshold:
            flag = "  REGRESSED"
            regressions.append((name, metric, ratio, threshold))
        print(f"{name:<{width}}  {metric:>12}  {base_value:12.1f}  "
              f"{cand_value:12.1f}  {ratio:7.2f}{flag}")
    for name in sorted(set(cand_benches) - set(base_benches)):
        print(f"{name:<{width}}  (new — not in baseline)")

    base_rss = baseline.get("peak_rss_kb", 0)
    cand_rss = candidate.get("peak_rss_kb", 0)
    if base_rss and cand_rss:
        rss_ratio = cand_rss / base_rss
        flag = ""
        if rss_ratio > args.rss_threshold:
            flag = "  REGRESSED"
            regressions.append(
                ("peak_rss_kb", "peak_rss_kb", rss_ratio, args.rss_threshold))
        print(f"{'peak RSS':<{width}}  {'kb':>12}  {base_rss:12d}  "
              f"{cand_rss:12d}  {rss_ratio:7.2f}{flag}")

    if regressions:
        print(file=sys.stderr)
        for name, metric, ratio, threshold in regressions:
            print(
                f"REGRESSION: {name} {metric} is {ratio:.2f}x the baseline "
                f"(threshold {threshold:.2f}x)",
                file=sys.stderr,
            )
        return 1
    print(f"\nOK: no benchmark exceeded its threshold "
          f"(kernel {args.kernel_threshold:.2f}x, other {args.threshold:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
