#!/usr/bin/env python3
"""Compares a fresh perf-baseline document against the committed reference.

Consumes two JSON documents produced by tools/make_bench_baseline.py and
prints a per-benchmark comparison of the throughput metrics (ns_per_event
when the bench exports an events_per_second counter, ns_per_item otherwise,
falling back to real_time_ns). Exits non-zero when any benchmark regresses
by more than --threshold (a ratio: 1.5 = candidate may be up to 50% slower)
or when peak RSS grows by more than --rss-threshold.

The default thresholds are deliberately loose: shared CI runners are noisy,
so the gate is meant to catch catastrophic regressions (an accidental
O(n^2), a debug build sneaking into Release) rather than single-digit
percentages — those are for a quiet local machine with --threshold=1.1.

Benchmarks present on only one side are reported but never fatal: the gate
must not brick CI when a bench is added or renamed.

Stdlib only. Usage:

    tools/compare_bench.py BENCH_simulator.json build-rel/BENCH_simulator.json
    tools/compare_bench.py --threshold=1.1 baseline.json candidate.json
"""

import argparse
import json
import sys

# Preferred metric per benchmark, first present wins. Lower is better for
# all of them.
METRICS = ("ns_per_event", "ns_per_item", "real_time_ns")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" not in doc:
        raise SystemExit(f"{path}: not a make_bench_baseline.py document")
    return doc


def pick_metric(entry):
    for metric in METRICS:
        if metric in entry:
            return metric, entry[metric]
    return None, None


def main():
    parser = argparse.ArgumentParser(
        description="Gate a perf-baseline document against a reference."
    )
    parser.add_argument("baseline", help="committed reference JSON")
    parser.add_argument("candidate", help="freshly generated JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="max allowed slowdown ratio per benchmark (default 2.0)",
    )
    parser.add_argument(
        "--rss-threshold",
        type=float,
        default=2.0,
        help="max allowed peak-RSS growth ratio (default 2.0)",
    )
    args = parser.parse_args()
    if args.threshold <= 0 or args.rss_threshold <= 0:
        raise SystemExit("thresholds must be positive")

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    base_benches = baseline["benchmarks"]
    cand_benches = candidate["benchmarks"]

    regressions = []
    width = max((len(n) for n in base_benches), default=20)
    print(f"{'benchmark':<{width}}  {'metric':>12}  {'base':>12}  "
          f"{'cand':>12}  {'ratio':>7}")
    for name in sorted(base_benches):
        if name not in cand_benches:
            print(f"{name:<{width}}  (missing from candidate — skipped)")
            continue
        metric, base_value = pick_metric(base_benches[name])
        if metric is None or base_value <= 0:
            print(f"{name:<{width}}  (no comparable metric — skipped)")
            continue
        cand_value = cand_benches[name].get(metric)
        if cand_value is None or cand_value <= 0:
            print(f"{name:<{width}}  ({metric} missing from candidate — "
                  "skipped)")
            continue
        ratio = cand_value / base_value
        flag = ""
        if ratio > args.threshold:
            flag = "  REGRESSED"
            regressions.append((name, metric, ratio))
        print(f"{name:<{width}}  {metric:>12}  {base_value:12.1f}  "
              f"{cand_value:12.1f}  {ratio:7.2f}{flag}")
    for name in sorted(set(cand_benches) - set(base_benches)):
        print(f"{name:<{width}}  (new — not in baseline)")

    base_rss = baseline.get("peak_rss_kb", 0)
    cand_rss = candidate.get("peak_rss_kb", 0)
    if base_rss and cand_rss:
        rss_ratio = cand_rss / base_rss
        flag = ""
        if rss_ratio > args.rss_threshold:
            flag = "  REGRESSED"
            regressions.append(("peak_rss_kb", "peak_rss_kb", rss_ratio))
        print(f"{'peak RSS':<{width}}  {'kb':>12}  {base_rss:12d}  "
              f"{cand_rss:12d}  {rss_ratio:7.2f}{flag}")

    if regressions:
        print(file=sys.stderr)
        for name, metric, ratio in regressions:
            print(
                f"REGRESSION: {name} {metric} is {ratio:.2f}x the baseline "
                f"(threshold {args.threshold:.2f}x)",
                file=sys.stderr,
            )
        return 1
    print(f"\nOK: no benchmark exceeded {args.threshold:.2f}x baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
