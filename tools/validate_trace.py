#!/usr/bin/env python3
"""Validate a JSONL trace file against docs/trace_schema.json.

Usage: validate_trace.py SCHEMA TRACE [--require-cat=NAME[,NAME...]]

Stdlib-only on purpose: CI and developer machines get line-accurate
diagnostics without a jsonschema dependency. Implements the subset of JSON
Schema the trace schema uses — required, additionalProperties, type
(number/integer/string/object), enum, minimum, maximum.

--require-cat asserts that at least one event of each named category is
present — CI uses it to prove a traced sharded run actually produced its
per-shard lane records ('shard') rather than silently tracing dark.

Exits 0 when every line validates; exits 1 with one diagnostic per bad
line (capped) otherwise. An empty trace file is an error: a traced run
always emits at least one event.
"""

import json
import sys

MAX_DIAGNOSTICS = 20


def type_ok(value, expected):
    if expected == "number":
        # bool is an int subclass in Python; JSON booleans are not numbers.
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "string":
        return isinstance(value, str)
    if expected == "object":
        return isinstance(value, dict)
    raise ValueError(f"unsupported schema type {expected!r}")


def validate_object(obj, schema):
    """Yields human-readable problems with `obj` under `schema`."""
    if not type_ok(obj, schema.get("type", "object")):
        yield f"not a JSON object: {obj!r}"
        return
    props = schema.get("properties", {})
    for key in schema.get("required", []):
        if key not in obj:
            yield f"missing required field {key!r}"
    if not schema.get("additionalProperties", True):
        for key in obj:
            if key not in props:
                yield f"unexpected field {key!r}"
    for key, subschema in props.items():
        if key not in obj:
            continue
        value = obj[key]
        if not type_ok(value, subschema["type"]):
            yield (f"field {key!r} should be {subschema['type']}, "
                   f"got {value!r}")
            continue
        if "enum" in subschema and value not in subschema["enum"]:
            yield f"field {key!r} has unknown value {value!r}"
        if "minimum" in subschema and value < subschema["minimum"]:
            yield f"field {key!r} below minimum: {value!r}"
        if "maximum" in subschema and value > subschema["maximum"]:
            yield f"field {key!r} above maximum: {value!r}"


def main(argv):
    required_cats = []
    positional = []
    for arg in argv[1:]:
        if arg.startswith("--require-cat="):
            required_cats.extend(
                c for c in arg.split("=", 1)[1].split(",") if c)
        else:
            positional.append(arg)
    if len(positional) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schema_path, trace_path = positional
    with open(schema_path, encoding="utf-8") as f:
        schema = json.load(f)

    known_cats = schema["properties"]["cat"].get("enum", [])
    for cat in required_cats:
        if known_cats and cat not in known_cats:
            print(f"--require-cat={cat}: not a category the schema knows",
                  file=sys.stderr)
            return 2

    problems = 0
    lines = 0
    seen_cats = set()
    with open(trace_path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, start=1):
            lines += 1
            line = line.rstrip("\n")
            found = []
            if not line.strip():
                found = ["blank line (truncated or damaged trace)"]
            else:
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as err:
                    found = [f"invalid JSON: {err}"]
                else:
                    found = list(validate_object(obj, schema))
                    if isinstance(obj, dict):
                        cat = obj.get("cat")
                        if isinstance(cat, str):
                            seen_cats.add(cat)
            for problem in found:
                problems += 1
                if problems <= MAX_DIAGNOSTICS:
                    print(f"{trace_path}:{line_no}: {problem}",
                          file=sys.stderr)

    for cat in required_cats:
        if cat not in seen_cats:
            problems += 1
            print(f"{trace_path}: no {cat!r} events (required via "
                  "--require-cat)", file=sys.stderr)

    if lines == 0:
        print(f"{trace_path}: empty trace (a traced run always emits "
              "events)", file=sys.stderr)
        return 1
    if problems:
        if problems > MAX_DIAGNOSTICS:
            print(f"... and {problems - MAX_DIAGNOSTICS} more problem(s)",
                  file=sys.stderr)
        print(f"{trace_path}: {problems} problem(s) in {lines} line(s)",
              file=sys.stderr)
        return 1
    print(f"{trace_path}: {lines} events OK against {schema_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
