#!/usr/bin/env python3
"""Appends one distilled line to the perf-trajectory log BENCH_history.jsonl.

The committed BENCH_history.jsonl at the repo root is an append-only record
of the kernel's performance across PRs: one JSON object per line, carrying
the provenance stamp and the headline metrics of a make_bench_baseline.py
document. Each perf-focused PR appends the line for its committed baseline;
CI additionally appends the fresh run's line to its checked-out copy and
uploads the result as an artifact, so the trajectory across a PR is visible
from the workflow page without any external storage.

Line schema (fields absent when the source document lacks them):

    {"git_sha": ..., "date": ..., "build_type": ..., "compiler": ...,
     "label": ...,
     "benchmarks": {<name>: {"ns_per_event": ...} | {"ns_per_item": ...}
                    | {"real_time_ns": ...}},
     "peak_rss_kb": ...}

Only the preferred metric per bench is kept (the full document remains the
source of truth); lower is better for all of them.

Stdlib only. Usage:

    tools/append_bench_history.py BENCH_simulator.json BENCH_history.jsonl
    tools/append_bench_history.py --label=pr10-ci build-rel/BENCH_simulator.json \
        BENCH_history.jsonl
"""

import argparse
import json

METRICS = ("ns_per_event", "ns_per_item", "real_time_ns")


def main():
    parser = argparse.ArgumentParser(
        description="Append a baseline document's headline to the "
                    "perf-trajectory log."
    )
    parser.add_argument("baseline", help="make_bench_baseline.py document")
    parser.add_argument("history", help="JSONL log to append to")
    parser.add_argument(
        "--label", default="",
        help="free-form tag for the line (e.g. pr10, pr10-ci)",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        doc = json.load(f)
    if "benchmarks" not in doc:
        raise SystemExit(
            f"{args.baseline}: not a make_bench_baseline.py document")

    prov = doc.get("provenance", {})
    line = {
        "git_sha": prov.get("git_sha", "unknown"),
        "date": doc.get("context", {}).get("date", "unknown"),
        "build_type": prov.get("build_type", "unknown"),
        "compiler": prov.get("compiler", "unknown"),
    }
    if args.label:
        line["label"] = args.label
    line["benchmarks"] = {}
    for name, entry in sorted(doc["benchmarks"].items()):
        for metric in METRICS:
            if metric in entry:
                line["benchmarks"][name] = {metric: entry[metric]}
                break
    if "peak_rss_kb" in doc:
        line["peak_rss_kb"] = doc["peak_rss_kb"]

    with open(args.history, "a") as f:
        json.dump(line, f, sort_keys=True)
        f.write("\n")
    print(f"appended {line['git_sha'][:12]} ({line['build_type']}, "
          f"{len(line['benchmarks'])} benches) to {args.history}")


if __name__ == "__main__":
    main()
