// vodctl — command-line front end to the VOD pre-allocation library.
//
//   vodctl model    --length=120 --streams=40 --buffer=80 --duration='gamma(2,4)'
//   vodctl size     --length=120 --wait=0.5 --pstar=0.5 --duration='exp(5)'
//   vodctl simulate --length=120 --streams=40 --buffer=80 --measure=20000
//   vodctl simulate --reserve=40 --faults=4:2000:120 --queue_deadline=5
//   vodctl simulate --trace_out=run.jsonl --metrics_out=run.prom
//   vodctl inspect  --trace=run.jsonl
//   vodctl catalog  --file=catalog.csv --rate=4 --zipf=1 --budget=0
//
// Every subcommand prints an aligned table (add --csv for machine-readable
// output) and exits non-zero on invalid input.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/cost_model.h"
#include "core/hit_model.h"
#include "core/sizing.h"
#include "exp/checkpoint.h"
#include "exp/experiment.h"
#include "exp/replication.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/trace_reader.h"
#include "sim/degradation.h"
#include "sim/partition_schedule.h"
#include "sim/server.h"
#include "sim/sharded_server.h"
#include "sim/simulator.h"
#include "workload/catalog.h"
#include "workload/paper_presets.h"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define VODCTL_HAS_FORK 1
#else
#define VODCTL_HAS_FORK 0
#endif

namespace vod {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "vodctl: %s\n", status.ToString().c_str());
  return 1;
}

void RenderTable(const TableWriter& table, bool csv) {
  if (csv) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
}

Result<VcrMix> ParseMix(const std::string& text) {
  // "ff" | "rw" | "pau" | "mixed" | "pf,pr,pp"
  if (text == "ff") return VcrMix::Only(VcrOp::kFastForward);
  if (text == "rw") return VcrMix::Only(VcrOp::kRewind);
  if (text == "pau") return VcrMix::Only(VcrOp::kPause);
  if (text == "mixed") return VcrMix::PaperMixed();
  VcrMix mix;
  if (std::sscanf(text.c_str(), "%lf,%lf,%lf", &mix.p_fast_forward,
                  &mix.p_rewind, &mix.p_pause) != 3) {
    return Status::InvalidArgument(
        "mix must be ff|rw|pau|mixed or 'p_ff,p_rw,p_pau'");
  }
  VOD_RETURN_IF_ERROR(mix.Validate());
  return mix;
}

Result<PartitionLayout> LayoutFromFlags(const FlagSet& flags) {
  const double length = flags.GetDouble("length");
  const int streams = static_cast<int>(flags.GetInt64("streams"));
  if (flags.WasSet("buffer")) {
    return PartitionLayout::FromBuffer(length, streams,
                                       flags.GetDouble("buffer"));
  }
  return PartitionLayout::FromMaxWait(length, streams,
                                      flags.GetDouble("wait"));
}

// ---- observability flags (simulate / soak) --------------------------------

void AddObsFlags(FlagSet* flags) {
  flags->AddString("trace_out", "", "write the structured event trace here "
                   "(JSONL; a .bin suffix selects the binary spill format)");
  flags->AddString("trace_categories", "all", "comma-separated categories to "
                   "trace (e.g. admission,resume,fault,degradation)");
  flags->AddString("metrics_out", "",
                   "write Prometheus-text metrics here at the end of the run");
  flags->AddString("metrics_csv", "", "write the sampled metric time series "
                   "here (long-format CSV: sample_t,metric,value)");
  flags->AddDouble("metrics_every", 500.0, "metric sampling cadence in "
                   "simulated minutes (sweeps sample per completed cell)");
  flags->AddString("profile_out", "", "write a Chrome trace_event JSON "
                   "profile here (load in chrome://tracing or Perfetto)");
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Per-invocation observability state assembled from the flags. All
/// telemetry-only: attaching any of it cannot change a report byte.
struct ObsCli {
  EventLog event_log;
  std::unique_ptr<EventSink> trace_sink;
  MetricsRegistry registry;
  PhaseProfiler profiler;
  bool want_trace = false;
  bool want_metrics = false;
  bool want_profile = false;
  std::string metrics_out, metrics_csv, profile_out;
  double metrics_every = 0.0;

  Status Init(const FlagSet& flags) {
    const std::string trace_path = flags.GetString("trace_out");
    want_trace = !trace_path.empty();
    if (want_trace) {
      VOD_ASSIGN_OR_RETURN(
          const uint32_t mask,
          ParseCategoryMask(flags.GetString("trace_categories")));
      event_log.set_mask(mask);
      if (EndsWith(trace_path, ".bin")) {
        VOD_ASSIGN_OR_RETURN(auto sink, BinarySink::Open(trace_path));
        trace_sink = std::move(sink);
      } else {
        VOD_ASSIGN_OR_RETURN(auto sink, JsonlSink::Open(trace_path));
        trace_sink = std::move(sink);
      }
      event_log.AddSink(trace_sink.get());
    }
    metrics_out = flags.GetString("metrics_out");
    metrics_csv = flags.GetString("metrics_csv");
    want_metrics = !metrics_out.empty() || !metrics_csv.empty();
    metrics_every = flags.GetDouble("metrics_every");
    profile_out = flags.GetString("profile_out");
    want_profile = !profile_out.empty();
    return Status::OK();
  }

  /// Wiring for a single simulation run (simulated-minutes clock). The
  /// profiler rides along for engines that record internal lanes (the
  /// sharded server's per-shard work / barrier-wait / fold spans).
  ObsOptions RunOptions() {
    ObsOptions obs;
    if (want_trace) obs.event_log = &event_log;
    if (want_metrics) {
      obs.metrics = &registry;
      obs.metrics_sample_minutes = metrics_every;
    }
    if (want_profile) obs.profiler = &profiler;
    return obs;
  }

  /// Wiring for a replication sweep (cells-done clock; the registry samples
  /// once per completed cell).
  GridObsOptions GridOptions() {
    GridObsOptions obs;
    if (want_profile) obs.profiler = &profiler;
    if (want_metrics) {
      registry.set_sample_every(1.0);
      obs.metrics = &registry;
    }
    if (want_trace) obs.event_log = &event_log;
    return obs;
  }

  /// Flushes the trace and writes the metrics / profile output files.
  Status Finish() {
    if (want_trace) VOD_RETURN_IF_ERROR(event_log.FlushSinks());
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out, std::ios::trunc);
      registry.WritePrometheus(out);
      if (!out) return Status::Internal("cannot write " + metrics_out);
    }
    if (!metrics_csv.empty()) {
      std::ofstream out(metrics_csv, std::ios::trunc);
      registry.WriteSeriesCsv(out);
      if (!out) return Status::Internal("cannot write " + metrics_csv);
    }
    if (want_profile) {
      std::ofstream out(profile_out, std::ios::trunc);
      profiler.WriteChromeTrace(out);
      if (!out) return Status::Internal("cannot write " + profile_out);
    }
    return Status::OK();
  }
};

// ---- vodctl model ---------------------------------------------------------

int ModelCommand(int argc, char** argv) {
  FlagSet flags("vodctl model");
  flags.AddDouble("length", 120.0, "movie length (minutes)");
  flags.AddInt64("streams", 40, "number of I/O streams n");
  flags.AddDouble("buffer", 0.0, "buffer minutes B (overrides --wait)");
  flags.AddDouble("wait", 1.0, "max wait w (used when --buffer unset)");
  flags.AddString("duration", "gamma(2,4)", "VCR duration distribution");
  flags.AddDouble("ff_rate", 3.0, "fast-forward speed (x playback)");
  flags.AddDouble("rw_rate", 3.0, "rewind speed (x playback)");
  flags.AddBool("csv", false, "CSV output");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);

  const auto layout = LayoutFromFlags(flags);
  if (!layout.ok()) return Fail(layout.status());
  const auto duration = ParseDistributionSpec(flags.GetString("duration"));
  if (!duration.ok()) return Fail(duration.status());

  PlaybackRates rates;
  rates.fast_forward = flags.GetDouble("ff_rate");
  rates.rewind = flags.GetDouble("rw_rate");
  const auto model = AnalyticHitModel::Create(*layout, rates);
  if (!model.ok()) return Fail(model.status());

  std::printf("%s, durations %s\n", layout->ToString().c_str(),
              (*duration)->ToString().c_str());
  TableWriter table({"op", "P(hit)", "own partition", "other partitions",
                     "movie end"});
  for (VcrOp op : kAllVcrOps) {
    const auto breakdown = model->Breakdown(op, *duration);
    if (!breakdown.ok()) return Fail(breakdown.status());
    table.AddRow({VcrOpName(op), FormatDouble(breakdown->total(), 4),
                  FormatDouble(breakdown->within, 4),
                  FormatDouble(breakdown->jump, 4),
                  FormatDouble(breakdown->end, 4)});
  }
  RenderTable(table, flags.GetBool("csv"));
  return 0;
}

// ---- vodctl size ---------------------------------------------------------

int SizeCommand(int argc, char** argv) {
  FlagSet flags("vodctl size");
  flags.AddDouble("length", 120.0, "movie length (minutes)");
  flags.AddDouble("wait", 0.5, "target max wait (minutes)");
  flags.AddDouble("pstar", 0.5, "target hit probability");
  flags.AddString("duration", "gamma(2,4)", "VCR duration distribution");
  flags.AddString("mix", "mixed", "ff|rw|pau|mixed or 'p_ff,p_rw,p_pau'");
  flags.AddBool("curve", false, "print the full (B, n) trade-off curve");
  flags.AddBool("csv", false, "CSV output");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);

  const auto duration = ParseDistributionSpec(flags.GetString("duration"));
  if (!duration.ok()) return Fail(duration.status());
  const auto mix = ParseMix(flags.GetString("mix"));
  if (!mix.ok()) return Fail(mix.status());

  MovieSizingSpec spec;
  spec.name = "movie";
  spec.length_minutes = flags.GetDouble("length");
  spec.max_wait_minutes = flags.GetDouble("wait");
  spec.min_hit_probability = flags.GetDouble("pstar");
  spec.mix = *mix;
  spec.durations = VcrDurations::AllSame(*duration);
  spec.rates = paper::Rates();

  if (flags.GetBool("curve")) {
    const int max_n = static_cast<int>(spec.length_minutes /
                                       spec.max_wait_minutes);
    const auto curve = ComputeSizingCurve(spec, std::max(1, max_n / 20));
    if (!curve.ok()) return Fail(curve.status());
    TableWriter table({"n", "B", "P(hit)", "feasible"});
    for (const auto& point : *curve) {
      table.AddRow({std::to_string(point.streams),
                    FormatDouble(point.buffer_minutes, 1),
                    FormatDouble(point.hit_probability, 4),
                    point.feasible ? "yes" : "no"});
    }
    RenderTable(table, flags.GetBool("csv"));
  }

  const auto choice = MinimumBufferChoice(spec);
  if (!choice.ok()) return Fail(choice.status());
  std::printf("minimum-buffer choice: B* = %.1f min, n* = %d, "
              "P(hit) = %.4f (target %.2f)\n",
              choice->buffer_minutes, choice->streams,
              choice->hit_probability, spec.min_hit_probability);
  const HardwareCosts costs;
  AllocationResult allocation;
  allocation.total_streams = choice->streams;
  allocation.total_buffer_minutes = choice->buffer_minutes;
  std::printf("1997-hardware cost: $%.0f (phi = %.1f)\n",
              AllocationCostDollars(allocation, costs), costs.Phi());
  return 0;
}

// ---- vodctl simulate --------------------------------------------------------

AuditOptions AuditFromFlags(const FlagSet& flags) {
  AuditOptions audit;
  audit.enabled = flags.GetBool("audit") || flags.GetBool("paranoid");
  if (flags.GetBool("paranoid")) audit.every_events = 1;
  return audit;
}

/// Prints `text` and, when --report_out is set, writes the identical bytes
/// to that file (the soak harness byte-compares these files).
int EmitReport(const FlagSet& flags, const std::string& text) {
  std::fputs(text.c_str(), stdout);
  const std::string& path = flags.GetString("report_out");
  if (!path.empty()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    if (!out) {
      return Fail(Status::Internal("cannot write report to " + path));
    }
  }
  return 0;
}

Result<ServerFaultOptions> ParseFaultSpec(const std::string& text) {
  // "disks:mtbf:mttr", e.g. "4:2000:120" (minutes).
  ServerFaultOptions faults;
  char trailing = '\0';
  if (std::sscanf(text.c_str(), "%d:%lf:%lf%c", &faults.disks,
                  &faults.profile.mtbf_minutes, &faults.profile.mttr_minutes,
                  &trailing) != 3) {
    return Status::InvalidArgument(
        "--faults must be 'disks:mtbf:mttr' (e.g. 4:2000:120), got '" + text +
        "'");
  }
  faults.enabled = true;
  if (faults.disks < 1) {
    return Status::InvalidArgument("--faults needs at least one disk");
  }
  VOD_RETURN_IF_ERROR(faults.profile.Validate());
  return faults;
}

// Parses --flash 'movie:start:duration:factor' (minutes; factor scales the
// movie's base rate inside the window).
struct FlashSpec {
  long long movie = 0;
  double start_minutes = 0.0;
  double duration_minutes = 0.0;
  double factor = 1.0;
};

Result<FlashSpec> ParseFlashSpec(const std::string& text) {
  FlashSpec spec;
  char trailing = 0;
  if (std::sscanf(text.c_str(), "%lld:%lf:%lf:%lf%c", &spec.movie,
                  &spec.start_minutes, &spec.duration_minutes, &spec.factor,
                  &trailing) != 4) {
    return Status::InvalidArgument(
        "--flash must be 'movie:start:duration:factor' (e.g. 0:5000:2000:4), "
        "got '" + text + "'");
  }
  if (spec.movie < 0) {
    return Status::InvalidArgument("--flash movie index must be >= 0");
  }
  return spec;
}

// Builds the server's movie list: the single configured layout, or a
// Zipf(--zipf) split of the arrival rate and stream budget across --movies
// titles (each sized by FromMaxWait against the shared --wait target).
// --flash overrides one movie's arrival process with a one-shot rate step.
Result<std::vector<ServerMovieSpec>> ServerMoviesFromFlags(
    const FlagSet& flags, const PartitionLayout& layout, const VcrMix& mix,
    const DistributionPtr& duration) {
  VcrBehavior behavior;
  behavior.mix = mix;
  behavior.durations = VcrDurations::AllSame(duration);
  behavior.interactivity = paper::DefaultInteractivity();
  const double total_rate = 1.0 / flags.GetDouble("arrival_gap");

  std::vector<ServerMovieSpec> movies;
  const int64_t count = flags.GetInt64("movies");
  if (count < 1) {
    return Status::InvalidArgument("--movies must be >= 1");
  }
  if (count == 1) {
    movies.push_back(
        {"movie", layout, total_rate, /*arrivals=*/nullptr, behavior});
  } else {
    const double skew = flags.GetDouble("zipf");
    std::vector<double> weights(static_cast<size_t>(count));
    double norm = 0.0;
    for (int64_t i = 0; i < count; ++i) {
      weights[static_cast<size_t>(i)] =
          std::pow(static_cast<double>(i + 1), -skew);
      norm += weights[static_cast<size_t>(i)];
    }
    for (int64_t i = 0; i < count; ++i) {
      const double share = weights[static_cast<size_t>(i)] / norm;
      const auto streams = static_cast<int64_t>(std::llround(
          std::max(1.0, static_cast<double>(flags.GetInt64("streams")) *
                            share)));
      const auto movie_layout = PartitionLayout::FromMaxWait(
          flags.GetDouble("length"), streams, flags.GetDouble("wait"));
      VOD_RETURN_IF_ERROR(movie_layout.status());
      movies.push_back({"m" + std::to_string(i), *movie_layout,
                        total_rate * share, /*arrivals=*/nullptr, behavior});
    }
  }

  if (flags.WasSet("flash")) {
    VOD_ASSIGN_OR_RETURN(const FlashSpec flash,
                         ParseFlashSpec(flags.GetString("flash")));
    if (flash.movie >= static_cast<long long>(movies.size())) {
      return Status::InvalidArgument(
          "--flash movie index " + std::to_string(flash.movie) +
          " is out of range for " + std::to_string(movies.size()) +
          " movie(s)");
    }
    auto& target = movies[static_cast<size_t>(flash.movie)];
    VOD_ASSIGN_OR_RETURN(
        FlashArrivals process,
        FlashArrivals::Create(target.arrival_rate_per_minute, flash.factor,
                              flash.start_minutes, flash.duration_minutes));
    target.arrivals = std::make_shared<FlashArrivals>(process);
  }
  return movies;
}

// Runs the multi-movie server engine — reserve, fault-injection,
// degradation, and control-plane knobs all apply here. With
// --replications > 1 the sweep goes through the checkpointable server-grid
// runner (SIGKILL/resume-safe, byte-identical recombination).
int SimulateWithFaults(const FlagSet& flags, const PartitionLayout& layout,
                       const VcrMix& mix, const DistributionPtr& duration,
                       ObsCli* obs) {
  const auto movies = ServerMoviesFromFlags(flags, layout, mix, duration);
  if (!movies.ok()) return Fail(movies.status());

  ServerOptions options;
  options.rates = paper::Rates();
  options.dynamic_stream_reserve = flags.GetInt64("reserve");
  options.measurement_minutes = flags.GetDouble("measure");
  options.warmup_minutes = options.measurement_minutes * 0.05;
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  if (flags.GetDouble("piggyback") > 0.0) {
    options.piggyback.enabled = true;
    options.piggyback.speed_delta = flags.GetDouble("piggyback");
  }
  if (flags.WasSet("faults")) {
    const auto faults = ParseFaultSpec(flags.GetString("faults"));
    if (!faults.ok()) return Fail(faults.status());
    options.faults = *faults;
  }
  if (flags.GetDouble("queue_deadline") > 0.0) {
    options.degradation.enabled = true;
    options.degradation.queue_deadline_minutes =
        flags.GetDouble("queue_deadline");
  }
  options.controller.enabled = flags.GetBool("controller");
  options.audit = AuditFromFlags(flags);

  const auto experiment = ExperimentOptionsFromFlags(
      flags, static_cast<uint64_t>(flags.GetInt64("seed")));
  if (experiment.replications > 1) {
    // Same recovery contract as the single-movie sweep, but each cell is a
    // whole-server run and the checkpoint carries full ServerReports —
    // resilience transitions and the controller block included.
    CheckpointOptions checkpoint;
    checkpoint.path = flags.GetString("checkpoint");
    checkpoint.checkpoint_every = flags.GetInt64("checkpoint_every");
    checkpoint.resume = flags.GetBool("resume");
    std::ostringstream description;
    description << "vodctl-server-grid-v1 " << layout.ToString()
                << " movies=" << flags.GetInt64("movies")
                << " zipf=" << flags.GetDouble("zipf")
                << " flash=" << flags.GetString("flash")
                << " mix=" << flags.GetString("mix")
                << " duration=" << flags.GetString("duration")
                << " gap=" << flags.GetDouble("arrival_gap")
                << " measure=" << options.measurement_minutes
                << " warmup=" << options.warmup_minutes
                << " piggyback=" << flags.GetDouble("piggyback")
                << " reserve=" << options.dynamic_stream_reserve
                << " faults=" << flags.GetString("faults")
                << " queue_deadline=" << flags.GetDouble("queue_deadline")
                << " controller=" << options.controller.enabled
                << " audit=" << options.audit.enabled << ":"
                << options.audit.every_events;
    const auto result = RunCheckpointedServerGrid(
        /*num_configs=*/1, experiment, checkpoint,
        HashGridDescription(description.str()),
        [&](const CellContext& context) {
          ServerOptions cell = options;
          cell.seed = context.seed;
          EventLog cell_log;
          if (obs->want_trace) {
            cell_log.set_mask(obs->event_log.mask());
            cell_log.AddSink(obs->trace_sink.get());
            cell.obs.event_log = &cell_log;
          }
          const auto report = RunServerSimulation(*movies, cell);
          VOD_CHECK_OK(report.status());
          return *report;
        },
        obs->GridOptions());
    if (!result.ok()) return Fail(result.status());
    VOD_CHECK(result->complete);
    const Status obs_finished = obs->Finish();
    if (!obs_finished.ok()) return Fail(obs_finished);
    const std::vector<ServerReport>& reports = result->reports[0];
    std::ostringstream out;
    for (size_t r = 0; r < reports.size(); ++r) {
      out << "replication " << r << ":\n" << reports[r].ToString() << "\n";
    }
    return EmitReport(flags, out.str());
  }

  options.obs = obs->RunOptions();
  Result<ServerReport> report = [&] {
    PhaseProfiler::Scope span(obs->want_profile ? &obs->profiler : nullptr,
                              "server_simulation");
    return RunServerSimulation(*movies, options);
  }();
  if (!report.ok()) return Fail(report.status());
  const Status finished = obs->Finish();
  if (!finished.ok()) return Fail(finished);
  return EmitReport(flags, report->ToString() + "\n");
}

int SimulateCommand(int argc, char** argv) {
  FlagSet flags("vodctl simulate");
  flags.AddDouble("length", 120.0, "movie length (minutes)");
  flags.AddInt64("streams", 40, "number of I/O streams n");
  flags.AddDouble("buffer", 0.0, "buffer minutes B (overrides --wait)");
  flags.AddDouble("wait", 1.0, "max wait w (used when --buffer unset)");
  flags.AddString("duration", "gamma(2,4)", "VCR duration distribution");
  flags.AddString("mix", "mixed", "ff|rw|pau|mixed or 'p_ff,p_rw,p_pau'");
  flags.AddDouble("arrival_gap", 2.0, "mean inter-arrival time (minutes)");
  flags.AddDouble("measure", 20000.0, "measured minutes");
  flags.AddInt64("seed", 42, "RNG seed");
  flags.AddDouble("piggyback", 0.0, "merge speed delta (0 disables)");
  flags.AddInt64("reserve", 100, "shared dynamic stream reserve "
                 "(server engine; used with --faults/--queue_deadline)");
  flags.AddString("faults", "", "disk faults 'disks:mtbf:mttr' in minutes "
                  "(e.g. 4:2000:120); enables the server engine");
  flags.AddDouble("queue_deadline", 0.0, "queue dry-reserve VCR requests up "
                  "to this many minutes (0 = hard refusal)");
  flags.AddInt64("movies", 1, "server engine: split the arrival rate and "
                 "--streams across this many Zipf-ranked titles (each sized "
                 "by --wait; --buffer is ignored for the split)");
  flags.AddDouble("zipf", 1.0, "popularity skew of the --movies split");
  flags.AddString("flash", "", "flash crowd 'movie:start:duration:factor' — "
                  "one-shot rate step on one movie (enables the server "
                  "engine)");
  flags.AddBool("controller", false, "enable the dynamic buffer-reallocation "
                "control plane (drift detection, re-planning, staged "
                "migration, selective shedding)");
  flags.AddBool("audit", false, "run the runtime invariant auditor "
                "(conservation checks every 1024 events)");
  flags.AddBool("paranoid", false, "audit after every executed event "
                "(implies --audit)");
  flags.AddString("checkpoint", "", "checkpoint file for multi-replication "
                  "sweeps: completed replications survive a crash");
  flags.AddInt64("checkpoint_every", 16,
                 "completed replications between checkpoint saves");
  flags.AddBool("resume", false,
                "resume an interrupted sweep from --checkpoint");
  flags.AddString("report_out", "", "also write the final report text to "
                  "this file (byte-identical to stdout)");
  AddObsFlags(&flags);
  AddExperimentFlags(&flags, /*with_replications=*/true);
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);

  const auto layout = LayoutFromFlags(flags);
  if (!layout.ok()) return Fail(layout.status());
  const auto duration = ParseDistributionSpec(flags.GetString("duration"));
  if (!duration.ok()) return Fail(duration.status());
  const auto mix = ParseMix(flags.GetString("mix"));
  if (!mix.ok()) return Fail(mix.status());

  ObsCli obs;
  const Status obs_ready = obs.Init(flags);
  if (!obs_ready.ok()) return Fail(obs_ready);

  if (flags.WasSet("faults") || flags.WasSet("reserve") ||
      flags.GetDouble("queue_deadline") > 0.0 ||
      flags.GetInt64("movies") > 1 || flags.WasSet("flash") ||
      flags.GetBool("controller")) {
    return SimulateWithFaults(flags, *layout, *mix, *duration, &obs);
  }

  SimulationOptions options;
  options.mean_interarrival_minutes = flags.GetDouble("arrival_gap");
  options.behavior.mix = *mix;
  options.behavior.durations = VcrDurations::AllSame(*duration);
  options.behavior.interactivity = paper::DefaultInteractivity();
  options.measurement_minutes = flags.GetDouble("measure");
  options.warmup_minutes = options.measurement_minutes * 0.05;
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  if (flags.GetDouble("piggyback") > 0.0) {
    options.piggyback.enabled = true;
    options.piggyback.speed_delta = flags.GetDouble("piggyback");
  }
  options.audit = AuditFromFlags(flags);

  const auto experiment = ExperimentOptionsFromFlags(
      flags, static_cast<uint64_t>(flags.GetInt64("seed")));
  if (experiment.replications > 1) {
    // R decorrelated replications on the harness, then the Student-t
    // reduction. (--replications=1 keeps the single run's own seed and its
    // within-run Wilson/batch-means intervals, below.) The sweep goes
    // through the checkpointable grid runner: with --checkpoint an
    // interrupted sweep resumes without redoing completed replications, and
    // the recombined report is byte-identical to an uninterrupted run.
    CheckpointOptions checkpoint;
    checkpoint.path = flags.GetString("checkpoint");
    checkpoint.checkpoint_every = flags.GetInt64("checkpoint_every");
    checkpoint.resume = flags.GetBool("resume");
    // Everything that changes a cell's outcome feeds the fingerprint, so a
    // checkpoint cannot be resumed against different knobs.
    std::ostringstream description;
    description << "vodctl-simulate-grid-v1 " << layout->ToString()
                << " mix=" << flags.GetString("mix")
                << " duration=" << flags.GetString("duration")
                << " gap=" << options.mean_interarrival_minutes
                << " measure=" << options.measurement_minutes
                << " warmup=" << options.warmup_minutes
                << " piggyback=" << flags.GetDouble("piggyback")
                << " audit=" << options.audit.enabled << ":"
                << options.audit.every_events;
    const auto result = RunCheckpointedReportGrid(
        /*num_configs=*/1, experiment, checkpoint,
        HashGridDescription(description.str()),
        [&](const CellContext& context) {
          SimulationOptions cell = options;
          cell.seed = context.seed;
          // Each cell traces over its own bus into the shared (thread-safe)
          // file sink: cells then never mutate each other's sink lists, so
          // --audit's ring lending stays cell-local. `seq` orders events
          // within a cell; interleaving across cells is scheduling order.
          EventLog cell_log;
          if (obs.want_trace) {
            cell_log.set_mask(obs.event_log.mask());
            cell_log.AddSink(obs.trace_sink.get());
            cell.obs.event_log = &cell_log;
          }
          const auto report = RunSimulation(*layout, paper::Rates(), cell);
          VOD_CHECK_OK(report.status());
          return *report;
        },
        obs.GridOptions());
    if (!result.ok()) return Fail(result.status());
    VOD_CHECK(result->complete);
    const Status obs_finished = obs.Finish();
    if (!obs_finished.ok()) return Fail(obs_finished);
    const std::vector<SimulationReport>& reports = result->reports[0];
    std::ostringstream out;
    char line[256];
    for (size_t r = 0; r < reports.size(); ++r) {
      std::snprintf(line, sizeof(line),
                    "replication %zu: P(hit) in-partition = %.4f "
                    "(%lld resumes), mean wait = %.3f min\n",
                    r, reports[r].hit_probability_in_partition,
                    static_cast<long long>(reports[r].in_partition_resumes),
                    reports[r].mean_wait_minutes);
      out << line;
    }
    out << "\n" << SummarizeReplications(reports).ToString() << "\n";
    return EmitReport(flags, out.str());
  }

  options.obs = obs.RunOptions();
  Result<SimulationReport> report = [&] {
    PhaseProfiler::Scope span(obs.want_profile ? &obs.profiler : nullptr,
                              "simulation");
    return RunSimulation(*layout, paper::Rates(), options);
  }();
  if (!report.ok()) return Fail(report.status());
  const Status obs_finished = obs.Finish();
  if (!obs_finished.ok()) return Fail(obs_finished);
  std::ostringstream out;
  char line[256];
  out << report->ToString() << "\n";
  std::snprintf(line, sizeof(line),
                "P(hit) in-partition = %.4f [%.4f, %.4f]; "
                "wait p50/p99/max = %.3f/%.3f/%.3f min\n",
                report->hit_probability_in_partition,
                report->hit_probability_in_partition_low,
                report->hit_probability_in_partition_high,
                report->p50_wait_minutes, report->p99_wait_minutes,
                report->max_wait_minutes);
  out << line;
  return EmitReport(flags, out.str());
}

// ---- vodctl catalog --------------------------------------------------------

int CatalogCommand(int argc, char** argv) {
  FlagSet flags("vodctl catalog");
  flags.AddString("file", "", "catalog CSV (see Catalog::FromCsv)");
  flags.AddDouble("rate", 4.0, "total arrivals per minute");
  flags.AddDouble("zipf", 1.0, "popularity exponent");
  flags.AddInt64("budget", 0, "stream budget (0 = pure-batching count)");
  flags.AddBool("csv", false, "CSV output");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);
  if (flags.GetString("file").empty()) {
    return Fail(Status::InvalidArgument("--file is required"));
  }
  std::ifstream file(flags.GetString("file"));
  if (!file) {
    return Fail(Status::NotFound("cannot open " + flags.GetString("file")));
  }
  const auto catalog =
      Catalog::FromCsv(file, flags.GetDouble("zipf"), flags.GetDouble("rate"));
  if (!catalog.ok()) return Fail(catalog.status());

  std::vector<MovieSizingSpec> specs;
  for (size_t rank = 1; rank <= catalog->size(); ++rank) {
    const MovieEntry& entry = catalog->movie(static_cast<int>(rank));
    if (entry.behavior.passive() || entry.min_hit_probability <= 0.0) {
      continue;  // unicast title; no pre-allocation
    }
    MovieSizingSpec spec;
    spec.name = entry.title;
    spec.length_minutes = entry.length_minutes;
    spec.max_wait_minutes = entry.max_wait_minutes;
    spec.min_hit_probability = entry.min_hit_probability;
    spec.mix = entry.behavior.mix;
    spec.durations = entry.behavior.durations;
    spec.rates = paper::Rates();
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    return Fail(Status::InvalidArgument(
        "no sizable titles in the catalog (all passive or P* = 0)"));
  }
  const int pure = PureBatchingStreams(specs);
  int budget = static_cast<int>(flags.GetInt64("budget"));
  if (budget <= 0) budget = pure;
  const auto sized = SizeSystem(specs, budget);
  if (!sized.ok()) return Fail(sized.status());

  TableWriter table({"title", "streams", "buffer (min)"});
  for (const auto& m : sized->movies) {
    table.AddRow({m.name, std::to_string(m.streams),
                  FormatDouble(m.buffer_minutes, 1)});
  }
  RenderTable(table, flags.GetBool("csv"));
  std::printf("total: %d streams + %.1f buffer-minutes "
              "(pure batching: %d streams)\n",
              sized->total_streams, sized->total_buffer_minutes, pure);
  return 0;
}

// ---- vodctl timeline -------------------------------------------------------
//
// ASCII rendering of the partition-window pattern (the paper's Figures 1–4):
// each row is a snapshot of the movie axis at a later time; '#' marks
// buffered positions, '.' the gaps, and 'F'/'V' a fast-forwarding viewer.

int TimelineCommand(int argc, char** argv) {
  FlagSet flags("vodctl timeline");
  flags.AddDouble("length", 120.0, "movie length (minutes)");
  flags.AddInt64("streams", 12, "number of I/O streams n");
  flags.AddDouble("buffer", 60.0, "buffer minutes B");
  flags.AddDouble("start_pos", 30.0, "viewer position at the first row");
  flags.AddDouble("ff_minutes", 36.0, "movie-minutes the viewer FFs through");
  flags.AddDouble("ff_rate", 3.0, "fast-forward speed (x playback)");
  flags.AddInt64("width", 96, "columns for the movie axis");
  flags.AddInt64("rows", 12, "time snapshots");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);

  const auto layout = PartitionLayout::FromBuffer(
      flags.GetDouble("length"), static_cast<int>(flags.GetInt64("streams")),
      flags.GetDouble("buffer"));
  if (!layout.ok()) return Fail(layout.status());
  const double l = layout->movie_length();
  const auto width = flags.GetInt64("width");
  const auto rows = flags.GetInt64("rows");
  if (width < 10 || rows < 1) {
    return Fail(Status::InvalidArgument("need --width >= 10, --rows >= 1"));
  }

  PartitionSchedule schedule(*layout);
  const double ff_rate = flags.GetDouble("ff_rate");
  const double ff_span = flags.GetDouble("ff_minutes");
  const double start_pos = flags.GetDouble("start_pos");
  // The FF lasts ff_span / ff_rate wall minutes; render that plus some
  // normal playback before and after.
  const double ff_wall = ff_span / ff_rate;
  const double total_wall = ff_wall * 3.0;
  const double t0 = 10.0 * layout->restart_period();  // steady state

  std::printf("%s — '#' buffered, '.' gap, F = viewer fast-forwarding at "
              "%.0fx, V = normal playback\n",
              layout->ToString().c_str(), ff_rate);
  for (int64_t row = 0; row < rows; ++row) {
    const double dt = total_wall * static_cast<double>(row) /
                      static_cast<double>(rows - 1 > 0 ? rows - 1 : 1);
    const double t = t0 + dt;
    // Viewer trajectory: playback for ff_wall, FF for ff_wall, playback.
    double pos;
    char marker = 'V';
    if (dt < ff_wall) {
      pos = start_pos + dt;
    } else if (dt < 2.0 * ff_wall) {
      pos = start_pos + ff_wall + (dt - ff_wall) * ff_rate;
      marker = 'F';
    } else {
      pos = start_pos + ff_wall + ff_span + (dt - 2.0 * ff_wall);
    }
    std::string line(static_cast<size_t>(width), '.');
    for (int64_t col = 0; col < width; ++col) {
      const double p = l * (static_cast<double>(col) + 0.5) /
                       static_cast<double>(width);
      if (schedule.FindCoveringStream(t, p).has_value()) {
        line[static_cast<size_t>(col)] = '#';
      }
    }
    if (pos <= l) {
      const auto col = static_cast<int64_t>(pos / l * width);
      if (col >= 0 && col < width) {
        line[static_cast<size_t>(col)] = marker;
      }
    }
    const bool covered =
        pos <= l && schedule.FindCoveringStream(t, pos).has_value();
    std::printf("t=%7.2f |%s| pos %6.2f %s\n", t, line.c_str(),
                std::min(pos, l),
                pos > l ? "(finished)" : covered ? "(in buffer)" : "(gap)");
  }
  std::printf("\nwindows advance with playback; the FF segment crosses gaps "
              "and windows — where it ends decides hit vs miss (paper "
              "Fig. 2).\n");
  return 0;
}

// ---- vodctl shard ----------------------------------------------------------
//
// The sharded multi-core server engine: one giant simulated server whose
// movies are partitioned across per-core shards, coupled only at
// deterministic window barriers (sim/sharded_server.h). The report is
// byte-identical for any --shards/--threads combination, and --checkpoint
// makes the run SIGKILL/resume-safe via replay-verified barrier snapshots.
// --queue_deadline arms the windowed degradation ladder (graceful
// degradation under faults: queueing, VCR shedding, forced reclaim,
// batching-only — decided at barriers, applied at window opens), and the
// observability flags attach coordinator-side tracing/metrics.

int ShardCommand(int argc, char** argv) {
  FlagSet flags("vodctl shard");
  flags.AddDouble("length", 120.0, "movie length (minutes)");
  flags.AddInt64("streams", 40, "I/O stream budget split across --movies");
  flags.AddDouble("buffer", 0.0, "buffer minutes B (overrides --wait; only "
                  "used when --movies=1)");
  flags.AddDouble("wait", 1.0, "max wait w sizing each movie's layout");
  flags.AddString("duration", "gamma(2,4)", "VCR duration distribution");
  flags.AddString("mix", "mixed", "ff|rw|pau|mixed or 'p_ff,p_rw,p_pau'");
  flags.AddDouble("arrival_gap", 2.0, "mean inter-arrival time (minutes), "
                  "split across the catalog");
  flags.AddInt64("movies", 8, "catalog size: the arrival rate and --streams "
                 "split across this many Zipf-ranked titles");
  flags.AddDouble("zipf", 1.0, "popularity skew of the --movies split");
  flags.AddString("flash", "", "flash crowd 'movie:start:duration:factor'");
  flags.AddDouble("measure", 20000.0, "measured minutes");
  flags.AddInt64("seed", 42, "RNG seed");
  flags.AddInt64("reserve", 100, "shared dynamic stream reserve, distributed "
                 "to movies as per-window credits");
  flags.AddString("faults", "", "disk faults 'disks:mtbf:mttr' in minutes");
  flags.AddDouble("queue_deadline", 0.0, "arm the windowed degradation "
                  "ladder: queue dry-reserve VCR requests up to this many "
                  "minutes (0 = ladder off, hard refusal)");
  flags.AddDouble("backoff", 0.25, "queued-request first re-offer delay in "
                  "minutes (requires --queue_deadline)");
  flags.AddDouble("backoff_factor", 2.0, "geometric retry backoff factor "
                  "(requires --queue_deadline)");
  flags.AddDouble("shed_below", 0.5, "capacity fraction below which the "
                  "ladder sheds VCR requests (requires --queue_deadline)");
  flags.AddDouble("batching_below", 0.2, "capacity fraction below which the "
                  "ladder reclaims everything — batching-only mode "
                  "(requires --queue_deadline)");
  flags.AddInt64("recover_windows", 2, "consecutive calm windows before the "
                 "ladder steps down a rung (requires --queue_deadline)");
  flags.AddBool("controller", false, "enable the buffer-reallocation control "
                "plane above the barrier");
  flags.AddBool("audit", false, "audit the cross-shard conservation laws at "
                "every window barrier");
  flags.AddBool("paranoid", false, "alias of --audit for this engine "
                "(barrier cadence is already every window)");
  flags.AddInt64("shards", 2, "shards the movies are partitioned across");
  flags.AddInt64("threads", 2, "worker threads driving the shards");
  flags.AddDouble("window", 60.0, "barrier window length (simulated minutes)");
  flags.AddString("checkpoint", "", "replay-verify checkpoint file written "
                  "at window barriers");
  flags.AddInt64("checkpoint_every", 8, "windows between checkpoint saves");
  flags.AddBool("resume", false, "resume from --checkpoint (replays from "
                "t=0 and verifies the barrier-ledger digest)");
  flags.AddInt64("stop_after_windows", 0, "stop (incomplete) after this many "
                 "windows — in-process crash emulation for tests (0 = run to "
                 "the horizon)");
  flags.AddString("report_out", "", "also write the final report text to "
                  "this file (byte-identical to stdout)");
  flags.AddString("postmortem_out", "", "crash flight recorder: dump a "
                  "postmortem bundle here when an audit law fails, a resume "
                  "replay-verify rejects, or a checkpoint write fails "
                  "(render with `vodctl inspect --postmortem=PATH`)");
  flags.AddInt64("postmortem_windows", 16, "barrier windows of ledger "
                 "history the flight recorder retains");
  flags.AddInt64("postmortem_events", 256, "trace events retained per shard "
                 "(the rings fill only while tracing or --postmortem_out is "
                 "set)");
  flags.AddInt64("corrupt_window", 0, "fault-injection hook: misstate one "
                 "ledger entry in the audit snapshot at this barrier window "
                 "to force an audit failure (requires --audit; 0 = off)");
  AddObsFlags(&flags);
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);

  // The ladder sub-knobs only mean something once --queue_deadline arms the
  // ladder; a set-but-ignored flag is a mis-assembled command, so refuse it
  // loudly instead of silently running un-degraded.
  if (flags.GetDouble("queue_deadline") <= 0.0) {
    for (const char* dep : {"backoff", "backoff_factor", "shed_below",
                            "batching_below", "recover_windows"}) {
      if (flags.WasSet(dep)) {
        return Fail(Status::InvalidArgument(
            std::string("--") + dep +
            " requires the ladder armed via --queue_deadline > 0"));
      }
    }
    if (flags.WasSet("queue_deadline")) {
      return Fail(Status::InvalidArgument(
          "--queue_deadline must be > 0 to arm the degradation ladder "
          "(omit the flag to run without it)"));
    }
  }

  const auto layout = LayoutFromFlags(flags);
  if (!layout.ok()) return Fail(layout.status());
  const auto duration = ParseDistributionSpec(flags.GetString("duration"));
  if (!duration.ok()) return Fail(duration.status());
  const auto mix = ParseMix(flags.GetString("mix"));
  if (!mix.ok()) return Fail(mix.status());
  const auto movies = ServerMoviesFromFlags(flags, *layout, *mix, *duration);
  if (!movies.ok()) return Fail(movies.status());

  ObsCli obs;
  const Status obs_ready = obs.Init(flags);
  if (!obs_ready.ok()) return Fail(obs_ready);

  ShardedServerOptions options;
  options.base.rates = paper::Rates();
  options.base.dynamic_stream_reserve = flags.GetInt64("reserve");
  options.base.measurement_minutes = flags.GetDouble("measure");
  options.base.warmup_minutes = options.base.measurement_minutes * 0.05;
  options.base.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  if (flags.WasSet("faults")) {
    const auto faults = ParseFaultSpec(flags.GetString("faults"));
    if (!faults.ok()) return Fail(faults.status());
    options.base.faults = *faults;
  }
  if (flags.GetDouble("queue_deadline") > 0.0) {
    options.base.degradation.enabled = true;
    options.base.degradation.queue_deadline_minutes =
        flags.GetDouble("queue_deadline");
    options.base.degradation.backoff_initial_minutes =
        flags.GetDouble("backoff");
    options.base.degradation.backoff_factor = flags.GetDouble("backoff_factor");
    options.base.degradation.shed_below_fraction = flags.GetDouble("shed_below");
    options.base.degradation.batching_below_fraction =
        flags.GetDouble("batching_below");
    options.ladder_recover_windows = flags.GetInt64("recover_windows");
  }
  options.base.obs = obs.RunOptions();
  options.base.controller.enabled = flags.GetBool("controller");
  options.base.audit.enabled =
      flags.GetBool("audit") || flags.GetBool("paranoid");
  options.shards = static_cast<int>(flags.GetInt64("shards"));
  options.threads = static_cast<int>(flags.GetInt64("threads"));
  options.window_minutes = flags.GetDouble("window");
  options.checkpoint.path = flags.GetString("checkpoint");
  options.checkpoint.every_windows = flags.GetInt64("checkpoint_every");
  options.checkpoint.resume = flags.GetBool("resume");
  options.checkpoint.stop_after_windows =
      flags.GetInt64("stop_after_windows");
  options.postmortem.path = flags.GetString("postmortem_out");
  options.postmortem.windows = flags.GetInt64("postmortem_windows");
  options.postmortem.events_per_shard = flags.GetInt64("postmortem_events");
  options.corrupt_audit_window = flags.GetInt64("corrupt_window");

  const auto report = [&] {
    PhaseProfiler::Scope span(obs.want_profile ? &obs.profiler : nullptr,
                              "sharded_simulation");
    return RunShardedServerSimulation(*movies, options);
  }();
  if (!report.ok()) {
    // Flush partial telemetry first: the failure modes this engine reports
    // (audit violations, replay-verify rejections) are exactly the ones the
    // trace, metrics, and postmortem bundle exist to explain.
    (void)obs.Finish();
    return Fail(report.status());
  }
  if (!report->complete) {
    // Crash emulation: the run stopped at a barrier without reaching the
    // horizon. Exit non-zero without emitting a report so a soak harness
    // treats it like a killed child.
    std::fprintf(stderr, "vodctl shard: stopped after %lld windows "
                 "(incomplete; resume from the checkpoint)\n",
                 static_cast<long long>(report->windows));
    (void)obs.Finish();  // flush the partial trace; the exit code already
                         // says the run is incomplete
    return 3;
  }
  const Status finished = obs.Finish();
  if (!finished.ok()) return Fail(finished);
  return EmitReport(flags, report->ToString() + "\n");
}

// ---- vodctl soak -----------------------------------------------------------
//
// Chaos soak for crash recovery: runs `vodctl simulate` sweeps as child
// processes, SIGKILLs them at randomized points mid-sweep, resumes from the
// last checkpoint, and byte-compares the final report against a golden
// uninterrupted run. A recovery bug — lost cells, double-merged cells, a
// torn checkpoint — shows up as a byte difference or a failed resume.

#if VODCTL_HAS_FORK

/// Spawns this binary with `args`; kills it with SIGKILL after
/// `kill_after_ms` (< 0 = let it finish). Returns the child's exit code, or
/// -signal when it died by signal.
Result<int> RunSelf(const std::vector<std::string>& args, int kill_after_ms) {
  // Flush before forking: the child's freopen would otherwise re-flush any
  // buffered parent output, duplicating progress lines on piped stdout.
  std::fflush(stdout);
  const pid_t pid = fork();
  if (pid < 0) return Status::Internal("fork failed");
  if (pid == 0) {
    std::vector<std::string> storage = args;
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("vodctl"));
    for (std::string& arg : storage) argv.push_back(arg.data());
    argv.push_back(nullptr);
    // The child's report goes nowhere: the parent only reads report files.
    if (!std::freopen("/dev/null", "w", stdout)) _exit(126);
    execv("/proc/self/exe", argv.data());
    _exit(127);  // exec failed
  }
  if (kill_after_ms >= 0) {
    usleep(static_cast<useconds_t>(kill_after_ms) * 1000);
    kill(pid, SIGKILL);
  }
  int wstatus = 0;
  if (waitpid(pid, &wstatus, 0) < 0) {
    return Status::Internal("waitpid failed");
  }
  if (WIFSIGNALED(wstatus)) return -WTERMSIG(wstatus);
  return WEXITSTATUS(wstatus);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

int SoakCommand(int argc, char** argv) {
  FlagSet flags("vodctl soak");
  flags.AddInt64("cycles", 3, "SIGKILL/resume cycles before the final "
                 "uninterrupted resume");
  flags.AddInt64("replications", 8, "replications in the soaked sweep");
  // Sized so the sweep outlasts the default kill window: kills must land
  // mid-sweep for the soak to exercise recovery rather than a clean run.
  flags.AddDouble("measure", 40000.0, "measured minutes per replication");
  flags.AddInt64("seed", 42, "seed for both the sweep and the kill points");
  flags.AddInt64("threads", 2, "threads for the soaked sweep");
  flags.AddInt64("kill_min_ms", 20, "earliest kill, ms after child start");
  flags.AddInt64("kill_max_ms", 400, "latest kill, ms after child start");
  flags.AddString("prefix", "vodctl_soak", "work-file prefix "
                  "(<prefix>.golden / .report / .ckpt)");
  flags.AddBool("trace", false, "children trace to <prefix>.trace.jsonl — "
                "proves recovery stays byte-identical while tracing");
  flags.AddBool("drift", false, "soak the whole-server drift stack instead "
                "of the single-movie sweep: flash crowd + control plane + "
                "disk faults, killed and resumed mid-migration");
  flags.AddInt64("shards", 0, "soak the sharded multi-core server instead: "
                 "`vodctl shard` children with this many shards, SIGKILLed "
                 "between barriers and resumed from the replay-verify "
                 "checkpoint (golden run uses 1 thread, chaos children "
                 "--threads, proving the bytes are thread-independent too)");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);
  if (flags.GetInt64("cycles") < 1 ||
      flags.GetInt64("kill_min_ms") > flags.GetInt64("kill_max_ms")) {
    return Fail(Status::InvalidArgument(
        "need --cycles >= 1 and kill_min_ms <= kill_max_ms"));
  }

  const std::string prefix = flags.GetString("prefix");
  const std::string golden_path = prefix + ".golden";
  const std::string report_path = prefix + ".report";
  const std::string ckpt_path = prefix + ".ckpt";
  std::remove(golden_path.c_str());
  std::remove(report_path.c_str());
  std::remove(ckpt_path.c_str());

  const int64_t soak_shards = flags.GetInt64("shards");
  std::vector<std::string> base_args;
  if (soak_shards > 0) {
    // Sharded-server chaos leg: one giant server, barrier checkpoints,
    // cross-shard conservation audited at every window, and the windowed
    // degradation ladder armed so SIGKILLs land mid-degradation (faults
    // shrink the reserve, rungs climb, forced reclaims fly) — recovery
    // must still reproduce the golden bytes, resilience block included.
    // Threads are appended per-invocation below (golden 1, chaos children
    // --threads) so a byte-identical recovery also proves
    // thread-independence.
    base_args = {
        "shard",
        "--movies=6",
        "--shards=" + std::to_string(soak_shards),
        "--measure=" + std::to_string(flags.GetDouble("measure")),
        "--seed=" + std::to_string(flags.GetInt64("seed")),
        "--window=50",
        "--reserve=40",
        "--faults=4:2000:120",
        "--queue_deadline=5",
        "--audit",
        "--checkpoint_every=2",
    };
  } else {
    base_args = {
        "simulate",
        "--replications=" + std::to_string(flags.GetInt64("replications")),
        "--measure=" + std::to_string(flags.GetDouble("measure")),
        "--seed=" + std::to_string(flags.GetInt64("seed")),
        "--threads=" + std::to_string(flags.GetInt64("threads")),
        "--checkpoint_every=1",
        "--audit",  // the soak audits invariants throughout every sweep
    };
  }
  if (soak_shards == 0 && flags.GetBool("drift")) {
    // Whole-server drift stack: a Zipf catalog with a flash crowd early in
    // the horizon, the controller re-planning through it, disk faults
    // shrinking the reserve, and the degradation ladder armed. SIGKILLs
    // then land while migrations are in flight; recovery must still
    // reproduce the golden bytes (controller block included).
    const double measure = flags.GetDouble("measure");
    const auto flash = "--flash=0:" + std::to_string(measure * 0.1) + ":" +
                       std::to_string(measure * 0.25) + ":4";
    base_args.insert(base_args.end(),
                     {"--movies=3", "--controller", flash, "--reserve=30",
                      "--faults=4:2000:120", "--queue_deadline=5"});
  }
  // Tracing must not perturb recovery: each child (golden included) streams
  // events to a sink; only the report files are byte-compared.
  const std::string trace_path = prefix + ".trace.jsonl";
  if (flags.GetBool("trace")) {
    base_args.push_back("--trace_out=" + trace_path);
  }

  // Golden run: same sweep, no checkpointing, never killed.
  std::vector<std::string> golden_args = base_args;
  if (soak_shards > 0) golden_args.push_back("--threads=1");
  golden_args.push_back("--report_out=" + golden_path);
  std::printf("soak: golden uninterrupted run...\n");
  auto golden_exit = RunSelf(golden_args, /*kill_after_ms=*/-1);
  if (!golden_exit.ok()) return Fail(golden_exit.status());
  if (*golden_exit != 0) {
    return Fail(Status::Internal("golden run exited with code " +
                                 std::to_string(*golden_exit)));
  }

  // Kill/resume cycles. The kill points are deterministic in --seed.
  Rng kill_rng(static_cast<uint64_t>(flags.GetInt64("seed")) ^
               0x50AC50AC50AC50ACull);
  const int64_t kill_min = flags.GetInt64("kill_min_ms");
  const int64_t kill_span = flags.GetInt64("kill_max_ms") - kill_min + 1;
  bool finished_early = false;
  for (int64_t cycle = 0; cycle < flags.GetInt64("cycles"); ++cycle) {
    std::vector<std::string> args = base_args;
    if (soak_shards > 0) {
      args.push_back("--threads=" + std::to_string(flags.GetInt64("threads")));
    }
    args.push_back("--checkpoint=" + ckpt_path);
    args.push_back("--report_out=" + report_path);
    if (FileExists(ckpt_path)) args.push_back("--resume");
    const int kill_after = static_cast<int>(
        kill_min + static_cast<int64_t>(
                       kill_rng.UniformInt(static_cast<uint64_t>(kill_span))));
    auto exit_code = RunSelf(args, kill_after);
    if (!exit_code.ok()) return Fail(exit_code.status());
    std::printf("soak: cycle %lld: SIGKILL at %d ms -> %s\n",
                static_cast<long long>(cycle), kill_after,
                *exit_code == -SIGKILL
                    ? "killed mid-sweep"
                    : ("exit " + std::to_string(*exit_code)).c_str());
    if (*exit_code == 0) {
      finished_early = true;  // sweep beat the kill; recovery already proven
      break;
    }
    if (*exit_code != -SIGKILL) {
      return Fail(Status::Internal(
          "soaked child failed with exit code " + std::to_string(*exit_code) +
          " instead of finishing or dying by SIGKILL"));
    }
  }

  // Final resume: must complete and must reproduce the golden bytes.
  if (!finished_early) {
    std::vector<std::string> args = base_args;
    if (soak_shards > 0) {
      args.push_back("--threads=" + std::to_string(flags.GetInt64("threads")));
    }
    args.push_back("--checkpoint=" + ckpt_path);
    args.push_back("--report_out=" + report_path);
    if (FileExists(ckpt_path)) args.push_back("--resume");
    auto exit_code = RunSelf(args, /*kill_after_ms=*/-1);
    if (!exit_code.ok()) return Fail(exit_code.status());
    if (*exit_code != 0) {
      return Fail(Status::Internal("final resume exited with code " +
                                   std::to_string(*exit_code)));
    }
  }

  auto golden = ReadFileBytes(golden_path);
  if (!golden.ok()) return Fail(golden.status());
  auto recovered = ReadFileBytes(report_path);
  if (!recovered.ok()) return Fail(recovered.status());
  if (*golden != *recovered) {
    std::fprintf(stderr,
                 "soak: FAIL — recovered report differs from golden run\n"
                 "--- golden ---\n%s--- recovered ---\n%s",
                 golden->c_str(), recovered->c_str());
    return 1;
  }
  std::printf("soak: PASS — recovered report is byte-identical to the "
              "golden run (%zu bytes)\n", golden->size());
  std::remove(golden_path.c_str());
  std::remove(report_path.c_str());
  std::remove(ckpt_path.c_str());
  std::remove(trace_path.c_str());
  return 0;
}

#else  // !VODCTL_HAS_FORK

int SoakCommand(int, char**) {
  return Fail(Status::NotSupported(
      "vodctl soak needs fork/exec; unavailable on this platform"));
}

#endif  // VODCTL_HAS_FORK

// ---- vodctl inspect --------------------------------------------------------
//
// Offline view of a trace file written by `simulate --trace_out=...` or
// `shard --trace_out=...`: a per-category summary table plus, when the run
// walked the degradation ladder, a reconstructed level-by-level timeline
// (kDegradation transitions and the barrier-emitted rung announcements of a
// sharded run merge into one timeline), and the controller decision log.

/// Pretty-prints a flight-recorder bundle: the failure reason, the retained
/// window ledger history (rung, digest chain, credit/debt, per-shard event
/// deltas), and each shard's trailing events.
int RenderPostmortem(const std::string& path, bool csv) {
  const auto bundle = ReadPostmortem(path);
  if (!bundle.ok()) return Fail(bundle.status());
  std::printf("postmortem bundle: %s\n", path.c_str());
  std::printf("reason: %s\n", bundle->reason.c_str());
  std::printf("%d shards, %zu retained windows, %zu retained events\n",
              bundle->shards, bundle->windows.size(),
              bundle->events.size());

  if (!bundle->windows.empty()) {
    std::printf("\nwindow ledger history (oldest first):\n");
    TableWriter table({"window", "t_end", "capacity", "rung", "held",
                       "credit", "debt", "queued", "quota", "events/shard",
                       "digest"});
    for (const FlightWindowRecord& fw : bundle->windows) {
      std::string per_shard;
      for (size_t s = 0; s < fw.shard_events.size(); ++s) {
        if (s > 0) per_shard += "/";
        per_shard += std::to_string(fw.shard_events[s]);
      }
      char digest_hex[32];
      std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                    static_cast<unsigned long long>(fw.digest));
      table.AddRow({std::to_string(fw.window), FormatDouble(fw.t_end, 2),
                    std::to_string(fw.capacity),
                    DegradationLevelName(
                        static_cast<DegradationLevel>(fw.rung)),
                    std::to_string(fw.sum_held),
                    std::to_string(fw.sum_credit),
                    std::to_string(fw.sum_debt),
                    std::to_string(fw.sum_queued),
                    std::to_string(fw.quota_issued), per_shard, digest_hex});
    }
    RenderTable(table, csv);
  }

  if (!bundle->events.empty()) {
    std::printf("\nper-shard event tails (oldest first):\n");
    TableWriter table({"shard", "t", "category", "sub", "movie", "id",
                       "value"});
    for (const PostmortemEvent& pe : bundle->events) {
      table.AddRow({std::to_string(pe.shard),
                    FormatDouble(pe.event.time, 3),
                    EventCategoryName(pe.event.category),
                    EventSubtypeName(pe.event.category, pe.event.subtype),
                    std::to_string(pe.event.movie),
                    std::to_string(pe.event.id),
                    FormatDouble(pe.event.value, 3)});
    }
    RenderTable(table, csv);
  }
  return 0;
}

int InspectCommand(int argc, char** argv) {
  FlagSet flags("vodctl inspect");
  flags.AddString("trace", "", "trace file to inspect (JSONL or binary "
                  "spill; the format is sniffed)");
  flags.AddString("postmortem", "", "flight-recorder bundle to pretty-print "
                  "(written by `vodctl shard --postmortem_out=...`)");
  flags.AddBool("csv", false, "CSV output");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);
  if (!flags.GetString("postmortem").empty()) {
    return RenderPostmortem(flags.GetString("postmortem"),
                            flags.GetBool("csv"));
  }
  if (flags.GetString("trace").empty()) {
    return Fail(Status::InvalidArgument("--trace or --postmortem is "
                                        "required"));
  }

  const auto events = ReadTraceFile(flags.GetString("trace"));
  if (!events.ok()) return Fail(events.status());
  if (events->empty()) {
    std::printf("empty trace\n");
    return 0;
  }
  const bool csv = flags.GetBool("csv");
  std::printf("%zu events over [%.2f, %.2f] simulated minutes\n",
              events->size(), events->front().time, events->back().time);

  TableWriter table({"category", "count", "first t", "last t", "mean value",
                     "min", "max"});
  for (const CategorySummary& s : SummarizeTrace(*events)) {
    table.AddRow({EventCategoryName(s.category), std::to_string(s.count),
                  FormatDouble(s.first_t, 2), FormatDouble(s.last_t, 2),
                  FormatDouble(s.value_sum / static_cast<double>(s.count), 3),
                  FormatDouble(s.value_min, 3), FormatDouble(s.value_max, 3)});
  }
  RenderTable(table, csv);

  const auto timeline = DegradationTimeline(*events);
  if (!timeline.empty()) {
    std::printf("\ndegradation timeline:\n");
    TableWriter levels({"start", "end", "dwell (min)", "from", "level",
                        "capacity"});
    for (const DegradationInterval& iv : timeline) {
      levels.AddRow(
          {FormatDouble(iv.start, 2), FormatDouble(iv.end, 2),
           FormatDouble(iv.end - iv.start, 2),
           DegradationLevelName(static_cast<DegradationLevel>(iv.from_level)),
           DegradationLevelName(static_cast<DegradationLevel>(iv.level)),
           std::to_string(iv.capacity)});
    }
    RenderTable(levels, csv);
  }

  const auto decisions = ControllerTimeline(*events);
  if (!decisions.empty()) {
    std::printf("\ncontroller decision timeline:\n");
    TableWriter ctrl({"t", "decision", "movie", "epoch", "value", "reclaims",
                      "grants", "sheds", "classes"});
    for (const ControllerDecision& d : decisions) {
      ctrl.AddRow({FormatDouble(d.time, 2),
                   EventSubtypeName(EventCategory::kController,
                                    static_cast<uint8_t>(d.subtype)),
                   d.movie >= 0 ? std::to_string(d.movie) : "-",
                   d.epoch >= 0 ? std::to_string(d.epoch) : "-",
                   FormatDouble(d.value, 3), std::to_string(d.reclaims),
                   std::to_string(d.grants), std::to_string(d.sheds),
                   std::to_string(d.class_changes)});
    }
    RenderTable(ctrl, csv);
  }

  // Sharded runs: fold the kShard window records into an imbalance view —
  // an overall summary line plus the worst windows by max−min spread.
  const auto shard_windows = ShardImbalanceTimeline(*events);
  if (!shard_windows.empty()) {
    int64_t total = 0;
    int64_t worst_spread = 0;
    for (const ShardWindowSummary& sw : shard_windows) {
      total += sw.total_events;
      worst_spread = std::max(worst_spread,
                              sw.max_events - sw.min_events);
    }
    std::printf("\nshard imbalance (%zu windows, %lld events, worst "
                "max-min spread %lld):\n",
                shard_windows.size(), static_cast<long long>(total),
                static_cast<long long>(worst_spread));
    std::vector<ShardWindowSummary> worst = shard_windows;
    std::stable_sort(worst.begin(), worst.end(),
                     [](const ShardWindowSummary& a,
                        const ShardWindowSummary& b) {
                       return a.max_events - a.min_events >
                              b.max_events - b.min_events;
                     });
    constexpr size_t kWorstWindows = 8;
    if (worst.size() > kWorstWindows) worst.resize(kWorstWindows);
    TableWriter imb({"t_end", "shards", "events", "max", "min", "spread",
                     "critical shard", "messages"});
    for (const ShardWindowSummary& sw : worst) {
      imb.AddRow({FormatDouble(sw.t_end, 2), std::to_string(sw.shards),
                  std::to_string(sw.total_events),
                  std::to_string(sw.max_events),
                  std::to_string(sw.min_events),
                  std::to_string(sw.max_events - sw.min_events),
                  std::to_string(sw.critical_shard),
                  std::to_string(sw.messages)});
    }
    RenderTable(imb, csv);
  }
  return 0;
}

int Usage() {
  std::fputs(
      "usage: vodctl <command> [--flags]\n"
      "commands:\n"
      "  model     analytic P(hit) breakdown for one configuration\n"
      "  size      minimum-buffer sizing for QoS targets\n"
      "  simulate  discrete-event simulation of one movie\n"
      "  shard     sharded multi-core simulation of one giant server\n"
      "  catalog   size a whole catalog from CSV\n"
      "  timeline  ASCII view of the partition windows and a FF trajectory\n"
      "  soak      SIGKILL/resume chaos soak of a checkpointed sweep\n"
      "  inspect   summarize a trace file written by --trace_out, or a "
      "postmortem bundle\n"
      "run 'vodctl <command> --help' for the command's flags\n",
      stderr);
  return 2;
}

}  // namespace
}  // namespace vod

int main(int argc, char** argv) {
  if (argc < 2) return vod::Usage();
  const std::string command = argv[1];
  // Shift argv so subcommand flags parse from position 1.
  if (command == "model") return vod::ModelCommand(argc - 1, argv + 1);
  if (command == "size") return vod::SizeCommand(argc - 1, argv + 1);
  if (command == "simulate") return vod::SimulateCommand(argc - 1, argv + 1);
  if (command == "shard") return vod::ShardCommand(argc - 1, argv + 1);
  if (command == "catalog") return vod::CatalogCommand(argc - 1, argv + 1);
  if (command == "timeline") return vod::TimelineCommand(argc - 1, argv + 1);
  if (command == "soak") return vod::SoakCommand(argc - 1, argv + 1);
  if (command == "inspect") return vod::InspectCommand(argc - 1, argv + 1);
  return vod::Usage();
}
