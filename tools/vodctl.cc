// vodctl — command-line front end to the VOD pre-allocation library.
//
//   vodctl model    --length=120 --streams=40 --buffer=80 --duration='gamma(2,4)'
//   vodctl size     --length=120 --wait=0.5 --pstar=0.5 --duration='exp(5)'
//   vodctl simulate --length=120 --streams=40 --buffer=80 --measure=20000
//   vodctl simulate --reserve=40 --faults=4:2000:120 --queue_deadline=5
//   vodctl catalog  --file=catalog.csv --rate=4 --zipf=1 --budget=0
//
// Every subcommand prints an aligned table (add --csv for machine-readable
// output) and exits non-zero on invalid input.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/check.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/cost_model.h"
#include "core/hit_model.h"
#include "core/sizing.h"
#include "exp/experiment.h"
#include "exp/replication.h"
#include "sim/partition_schedule.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "workload/catalog.h"
#include "workload/paper_presets.h"

namespace vod {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "vodctl: %s\n", status.ToString().c_str());
  return 1;
}

void RenderTable(const TableWriter& table, bool csv) {
  if (csv) {
    table.RenderCsv(std::cout);
  } else {
    table.RenderText(std::cout);
  }
}

Result<VcrMix> ParseMix(const std::string& text) {
  // "ff" | "rw" | "pau" | "mixed" | "pf,pr,pp"
  if (text == "ff") return VcrMix::Only(VcrOp::kFastForward);
  if (text == "rw") return VcrMix::Only(VcrOp::kRewind);
  if (text == "pau") return VcrMix::Only(VcrOp::kPause);
  if (text == "mixed") return VcrMix::PaperMixed();
  VcrMix mix;
  if (std::sscanf(text.c_str(), "%lf,%lf,%lf", &mix.p_fast_forward,
                  &mix.p_rewind, &mix.p_pause) != 3) {
    return Status::InvalidArgument(
        "mix must be ff|rw|pau|mixed or 'p_ff,p_rw,p_pau'");
  }
  VOD_RETURN_IF_ERROR(mix.Validate());
  return mix;
}

Result<PartitionLayout> LayoutFromFlags(const FlagSet& flags) {
  const double length = flags.GetDouble("length");
  const int streams = static_cast<int>(flags.GetInt64("streams"));
  if (flags.WasSet("buffer")) {
    return PartitionLayout::FromBuffer(length, streams,
                                       flags.GetDouble("buffer"));
  }
  return PartitionLayout::FromMaxWait(length, streams,
                                      flags.GetDouble("wait"));
}

// ---- vodctl model ---------------------------------------------------------

int ModelCommand(int argc, char** argv) {
  FlagSet flags("vodctl model");
  flags.AddDouble("length", 120.0, "movie length (minutes)");
  flags.AddInt64("streams", 40, "number of I/O streams n");
  flags.AddDouble("buffer", 0.0, "buffer minutes B (overrides --wait)");
  flags.AddDouble("wait", 1.0, "max wait w (used when --buffer unset)");
  flags.AddString("duration", "gamma(2,4)", "VCR duration distribution");
  flags.AddDouble("ff_rate", 3.0, "fast-forward speed (x playback)");
  flags.AddDouble("rw_rate", 3.0, "rewind speed (x playback)");
  flags.AddBool("csv", false, "CSV output");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);

  const auto layout = LayoutFromFlags(flags);
  if (!layout.ok()) return Fail(layout.status());
  const auto duration = ParseDistributionSpec(flags.GetString("duration"));
  if (!duration.ok()) return Fail(duration.status());

  PlaybackRates rates;
  rates.fast_forward = flags.GetDouble("ff_rate");
  rates.rewind = flags.GetDouble("rw_rate");
  const auto model = AnalyticHitModel::Create(*layout, rates);
  if (!model.ok()) return Fail(model.status());

  std::printf("%s, durations %s\n", layout->ToString().c_str(),
              (*duration)->ToString().c_str());
  TableWriter table({"op", "P(hit)", "own partition", "other partitions",
                     "movie end"});
  for (VcrOp op : kAllVcrOps) {
    const auto breakdown = model->Breakdown(op, *duration);
    if (!breakdown.ok()) return Fail(breakdown.status());
    table.AddRow({VcrOpName(op), FormatDouble(breakdown->total(), 4),
                  FormatDouble(breakdown->within, 4),
                  FormatDouble(breakdown->jump, 4),
                  FormatDouble(breakdown->end, 4)});
  }
  RenderTable(table, flags.GetBool("csv"));
  return 0;
}

// ---- vodctl size ---------------------------------------------------------

int SizeCommand(int argc, char** argv) {
  FlagSet flags("vodctl size");
  flags.AddDouble("length", 120.0, "movie length (minutes)");
  flags.AddDouble("wait", 0.5, "target max wait (minutes)");
  flags.AddDouble("pstar", 0.5, "target hit probability");
  flags.AddString("duration", "gamma(2,4)", "VCR duration distribution");
  flags.AddString("mix", "mixed", "ff|rw|pau|mixed or 'p_ff,p_rw,p_pau'");
  flags.AddBool("curve", false, "print the full (B, n) trade-off curve");
  flags.AddBool("csv", false, "CSV output");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);

  const auto duration = ParseDistributionSpec(flags.GetString("duration"));
  if (!duration.ok()) return Fail(duration.status());
  const auto mix = ParseMix(flags.GetString("mix"));
  if (!mix.ok()) return Fail(mix.status());

  MovieSizingSpec spec;
  spec.name = "movie";
  spec.length_minutes = flags.GetDouble("length");
  spec.max_wait_minutes = flags.GetDouble("wait");
  spec.min_hit_probability = flags.GetDouble("pstar");
  spec.mix = *mix;
  spec.durations = VcrDurations::AllSame(*duration);
  spec.rates = paper::Rates();

  if (flags.GetBool("curve")) {
    const int max_n = static_cast<int>(spec.length_minutes /
                                       spec.max_wait_minutes);
    const auto curve = ComputeSizingCurve(spec, std::max(1, max_n / 20));
    if (!curve.ok()) return Fail(curve.status());
    TableWriter table({"n", "B", "P(hit)", "feasible"});
    for (const auto& point : *curve) {
      table.AddRow({std::to_string(point.streams),
                    FormatDouble(point.buffer_minutes, 1),
                    FormatDouble(point.hit_probability, 4),
                    point.feasible ? "yes" : "no"});
    }
    RenderTable(table, flags.GetBool("csv"));
  }

  const auto choice = MinimumBufferChoice(spec);
  if (!choice.ok()) return Fail(choice.status());
  std::printf("minimum-buffer choice: B* = %.1f min, n* = %d, "
              "P(hit) = %.4f (target %.2f)\n",
              choice->buffer_minutes, choice->streams,
              choice->hit_probability, spec.min_hit_probability);
  const HardwareCosts costs;
  AllocationResult allocation;
  allocation.total_streams = choice->streams;
  allocation.total_buffer_minutes = choice->buffer_minutes;
  std::printf("1997-hardware cost: $%.0f (phi = %.1f)\n",
              AllocationCostDollars(allocation, costs), costs.Phi());
  return 0;
}

// ---- vodctl simulate --------------------------------------------------------

Result<ServerFaultOptions> ParseFaultSpec(const std::string& text) {
  // "disks:mtbf:mttr", e.g. "4:2000:120" (minutes).
  ServerFaultOptions faults;
  char trailing = '\0';
  if (std::sscanf(text.c_str(), "%d:%lf:%lf%c", &faults.disks,
                  &faults.profile.mtbf_minutes, &faults.profile.mttr_minutes,
                  &trailing) != 3) {
    return Status::InvalidArgument(
        "--faults must be 'disks:mtbf:mttr' (e.g. 4:2000:120), got '" + text +
        "'");
  }
  faults.enabled = true;
  if (faults.disks < 1) {
    return Status::InvalidArgument("--faults needs at least one disk");
  }
  VOD_RETURN_IF_ERROR(faults.profile.Validate());
  return faults;
}

// Runs the multi-movie server engine for a single movie so the reserve,
// fault-injection, and degradation knobs apply; prints the full resilience
// report.
int SimulateWithFaults(const FlagSet& flags, const PartitionLayout& layout,
                       const VcrMix& mix, const DistributionPtr& duration) {
  VcrBehavior behavior;
  behavior.mix = mix;
  behavior.durations = VcrDurations::AllSame(duration);
  behavior.interactivity = paper::DefaultInteractivity();
  const ServerMovieSpec movie{"movie", layout,
                              1.0 / flags.GetDouble("arrival_gap"), behavior};

  ServerOptions options;
  options.rates = paper::Rates();
  options.dynamic_stream_reserve = flags.GetInt64("reserve");
  options.measurement_minutes = flags.GetDouble("measure");
  options.warmup_minutes = options.measurement_minutes * 0.05;
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  if (flags.GetDouble("piggyback") > 0.0) {
    options.piggyback.enabled = true;
    options.piggyback.speed_delta = flags.GetDouble("piggyback");
  }
  if (flags.WasSet("faults")) {
    const auto faults = ParseFaultSpec(flags.GetString("faults"));
    if (!faults.ok()) return Fail(faults.status());
    options.faults = *faults;
  }
  if (flags.GetDouble("queue_deadline") > 0.0) {
    options.degradation.enabled = true;
    options.degradation.queue_deadline_minutes =
        flags.GetDouble("queue_deadline");
  }
  const auto report = RunServerSimulation({movie}, options);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s\n", report->ToString().c_str());
  return 0;
}

int SimulateCommand(int argc, char** argv) {
  FlagSet flags("vodctl simulate");
  flags.AddDouble("length", 120.0, "movie length (minutes)");
  flags.AddInt64("streams", 40, "number of I/O streams n");
  flags.AddDouble("buffer", 0.0, "buffer minutes B (overrides --wait)");
  flags.AddDouble("wait", 1.0, "max wait w (used when --buffer unset)");
  flags.AddString("duration", "gamma(2,4)", "VCR duration distribution");
  flags.AddString("mix", "mixed", "ff|rw|pau|mixed or 'p_ff,p_rw,p_pau'");
  flags.AddDouble("arrival_gap", 2.0, "mean inter-arrival time (minutes)");
  flags.AddDouble("measure", 20000.0, "measured minutes");
  flags.AddInt64("seed", 42, "RNG seed");
  flags.AddDouble("piggyback", 0.0, "merge speed delta (0 disables)");
  flags.AddInt64("reserve", 100, "shared dynamic stream reserve "
                 "(server engine; used with --faults/--queue_deadline)");
  flags.AddString("faults", "", "disk faults 'disks:mtbf:mttr' in minutes "
                  "(e.g. 4:2000:120); enables the server engine");
  flags.AddDouble("queue_deadline", 0.0, "queue dry-reserve VCR requests up "
                  "to this many minutes (0 = hard refusal)");
  AddExperimentFlags(&flags, /*with_replications=*/true);
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);

  const auto layout = LayoutFromFlags(flags);
  if (!layout.ok()) return Fail(layout.status());
  const auto duration = ParseDistributionSpec(flags.GetString("duration"));
  if (!duration.ok()) return Fail(duration.status());
  const auto mix = ParseMix(flags.GetString("mix"));
  if (!mix.ok()) return Fail(mix.status());

  if (flags.WasSet("faults") || flags.WasSet("reserve") ||
      flags.GetDouble("queue_deadline") > 0.0) {
    return SimulateWithFaults(flags, *layout, *mix, *duration);
  }

  SimulationOptions options;
  options.mean_interarrival_minutes = flags.GetDouble("arrival_gap");
  options.behavior.mix = *mix;
  options.behavior.durations = VcrDurations::AllSame(*duration);
  options.behavior.interactivity = paper::DefaultInteractivity();
  options.measurement_minutes = flags.GetDouble("measure");
  options.warmup_minutes = options.measurement_minutes * 0.05;
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  if (flags.GetDouble("piggyback") > 0.0) {
    options.piggyback.enabled = true;
    options.piggyback.speed_delta = flags.GetDouble("piggyback");
  }

  const auto experiment = ExperimentOptionsFromFlags(
      flags, static_cast<uint64_t>(flags.GetInt64("seed")));
  if (experiment.replications > 1) {
    // R decorrelated replications on the harness, then the Student-t
    // reduction. (--replications=1 keeps the single run's own seed and its
    // within-run Wilson/batch-means intervals, below.)
    const std::vector<int> single_config = {0};
    const auto reports = RunExperimentGrid(
        single_config, experiment,
        [&](int, const CellContext& context) {
          SimulationOptions cell = options;
          cell.seed = context.seed;
          const auto report = RunSimulation(*layout, paper::Rates(), cell);
          VOD_CHECK_OK(report.status());
          return *report;
        });
    for (size_t r = 0; r < reports[0].size(); ++r) {
      std::printf("replication %zu: P(hit) in-partition = %.4f "
                  "(%lld resumes), mean wait = %.3f min\n",
                  r, reports[0][r].hit_probability_in_partition,
                  static_cast<long long>(reports[0][r].in_partition_resumes),
                  reports[0][r].mean_wait_minutes);
    }
    std::printf("\n%s\n", SummarizeReplications(reports[0]).ToString().c_str());
    return 0;
  }

  const auto report = RunSimulation(*layout, paper::Rates(), options);
  if (!report.ok()) return Fail(report.status());
  std::printf("%s\n", report->ToString().c_str());
  std::printf("P(hit) in-partition = %.4f [%.4f, %.4f]; "
              "wait p50/p99/max = %.3f/%.3f/%.3f min\n",
              report->hit_probability_in_partition,
              report->hit_probability_in_partition_low,
              report->hit_probability_in_partition_high,
              report->p50_wait_minutes, report->p99_wait_minutes,
              report->max_wait_minutes);
  return 0;
}

// ---- vodctl catalog --------------------------------------------------------

int CatalogCommand(int argc, char** argv) {
  FlagSet flags("vodctl catalog");
  flags.AddString("file", "", "catalog CSV (see Catalog::FromCsv)");
  flags.AddDouble("rate", 4.0, "total arrivals per minute");
  flags.AddDouble("zipf", 1.0, "popularity exponent");
  flags.AddInt64("budget", 0, "stream budget (0 = pure-batching count)");
  flags.AddBool("csv", false, "CSV output");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);
  if (flags.GetString("file").empty()) {
    return Fail(Status::InvalidArgument("--file is required"));
  }
  std::ifstream file(flags.GetString("file"));
  if (!file) {
    return Fail(Status::NotFound("cannot open " + flags.GetString("file")));
  }
  const auto catalog =
      Catalog::FromCsv(file, flags.GetDouble("zipf"), flags.GetDouble("rate"));
  if (!catalog.ok()) return Fail(catalog.status());

  std::vector<MovieSizingSpec> specs;
  for (size_t rank = 1; rank <= catalog->size(); ++rank) {
    const MovieEntry& entry = catalog->movie(static_cast<int>(rank));
    if (entry.behavior.passive() || entry.min_hit_probability <= 0.0) {
      continue;  // unicast title; no pre-allocation
    }
    MovieSizingSpec spec;
    spec.name = entry.title;
    spec.length_minutes = entry.length_minutes;
    spec.max_wait_minutes = entry.max_wait_minutes;
    spec.min_hit_probability = entry.min_hit_probability;
    spec.mix = entry.behavior.mix;
    spec.durations = entry.behavior.durations;
    spec.rates = paper::Rates();
    specs.push_back(std::move(spec));
  }
  if (specs.empty()) {
    return Fail(Status::InvalidArgument(
        "no sizable titles in the catalog (all passive or P* = 0)"));
  }
  const int pure = PureBatchingStreams(specs);
  int budget = static_cast<int>(flags.GetInt64("budget"));
  if (budget <= 0) budget = pure;
  const auto sized = SizeSystem(specs, budget);
  if (!sized.ok()) return Fail(sized.status());

  TableWriter table({"title", "streams", "buffer (min)"});
  for (const auto& m : sized->movies) {
    table.AddRow({m.name, std::to_string(m.streams),
                  FormatDouble(m.buffer_minutes, 1)});
  }
  RenderTable(table, flags.GetBool("csv"));
  std::printf("total: %d streams + %.1f buffer-minutes "
              "(pure batching: %d streams)\n",
              sized->total_streams, sized->total_buffer_minutes, pure);
  return 0;
}

// ---- vodctl timeline -------------------------------------------------------
//
// ASCII rendering of the partition-window pattern (the paper's Figures 1–4):
// each row is a snapshot of the movie axis at a later time; '#' marks
// buffered positions, '.' the gaps, and 'F'/'V' a fast-forwarding viewer.

int TimelineCommand(int argc, char** argv) {
  FlagSet flags("vodctl timeline");
  flags.AddDouble("length", 120.0, "movie length (minutes)");
  flags.AddInt64("streams", 12, "number of I/O streams n");
  flags.AddDouble("buffer", 60.0, "buffer minutes B");
  flags.AddDouble("start_pos", 30.0, "viewer position at the first row");
  flags.AddDouble("ff_minutes", 36.0, "movie-minutes the viewer FFs through");
  flags.AddDouble("ff_rate", 3.0, "fast-forward speed (x playback)");
  flags.AddInt64("width", 96, "columns for the movie axis");
  flags.AddInt64("rows", 12, "time snapshots");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) return Fail(parsed);

  const auto layout = PartitionLayout::FromBuffer(
      flags.GetDouble("length"), static_cast<int>(flags.GetInt64("streams")),
      flags.GetDouble("buffer"));
  if (!layout.ok()) return Fail(layout.status());
  const double l = layout->movie_length();
  const auto width = flags.GetInt64("width");
  const auto rows = flags.GetInt64("rows");
  if (width < 10 || rows < 1) {
    return Fail(Status::InvalidArgument("need --width >= 10, --rows >= 1"));
  }

  PartitionSchedule schedule(*layout);
  const double ff_rate = flags.GetDouble("ff_rate");
  const double ff_span = flags.GetDouble("ff_minutes");
  const double start_pos = flags.GetDouble("start_pos");
  // The FF lasts ff_span / ff_rate wall minutes; render that plus some
  // normal playback before and after.
  const double ff_wall = ff_span / ff_rate;
  const double total_wall = ff_wall * 3.0;
  const double t0 = 10.0 * layout->restart_period();  // steady state

  std::printf("%s — '#' buffered, '.' gap, F = viewer fast-forwarding at "
              "%.0fx, V = normal playback\n",
              layout->ToString().c_str(), ff_rate);
  for (int64_t row = 0; row < rows; ++row) {
    const double dt = total_wall * static_cast<double>(row) /
                      static_cast<double>(rows - 1 > 0 ? rows - 1 : 1);
    const double t = t0 + dt;
    // Viewer trajectory: playback for ff_wall, FF for ff_wall, playback.
    double pos;
    char marker = 'V';
    if (dt < ff_wall) {
      pos = start_pos + dt;
    } else if (dt < 2.0 * ff_wall) {
      pos = start_pos + ff_wall + (dt - ff_wall) * ff_rate;
      marker = 'F';
    } else {
      pos = start_pos + ff_wall + ff_span + (dt - 2.0 * ff_wall);
    }
    std::string line(static_cast<size_t>(width), '.');
    for (int64_t col = 0; col < width; ++col) {
      const double p = l * (static_cast<double>(col) + 0.5) /
                       static_cast<double>(width);
      if (schedule.FindCoveringStream(t, p).has_value()) {
        line[static_cast<size_t>(col)] = '#';
      }
    }
    if (pos <= l) {
      const auto col = static_cast<int64_t>(pos / l * width);
      if (col >= 0 && col < width) {
        line[static_cast<size_t>(col)] = marker;
      }
    }
    const bool covered =
        pos <= l && schedule.FindCoveringStream(t, pos).has_value();
    std::printf("t=%7.2f |%s| pos %6.2f %s\n", t, line.c_str(),
                std::min(pos, l),
                pos > l ? "(finished)" : covered ? "(in buffer)" : "(gap)");
  }
  std::printf("\nwindows advance with playback; the FF segment crosses gaps "
              "and windows — where it ends decides hit vs miss (paper "
              "Fig. 2).\n");
  return 0;
}

int Usage() {
  std::fputs(
      "usage: vodctl <command> [--flags]\n"
      "commands:\n"
      "  model     analytic P(hit) breakdown for one configuration\n"
      "  size      minimum-buffer sizing for QoS targets\n"
      "  simulate  discrete-event simulation of one movie\n"
      "  catalog   size a whole catalog from CSV\n"
      "  timeline  ASCII view of the partition windows and a FF trajectory\n"
      "run 'vodctl <command> --help' for the command's flags\n",
      stderr);
  return 2;
}

}  // namespace
}  // namespace vod

int main(int argc, char** argv) {
  if (argc < 2) return vod::Usage();
  const std::string command = argv[1];
  // Shift argv so subcommand flags parse from position 1.
  if (command == "model") return vod::ModelCommand(argc - 1, argv + 1);
  if (command == "size") return vod::SizeCommand(argc - 1, argv + 1);
  if (command == "simulate") return vod::SimulateCommand(argc - 1, argv + 1);
  if (command == "catalog") return vod::CatalogCommand(argc - 1, argv + 1);
  if (command == "timeline") return vod::TimelineCommand(argc - 1, argv + 1);
  return vod::Usage();
}
