#!/usr/bin/env python3
"""Runs the perf benches and distills a tracked performance baseline.

Executes google-benchmark binaries (perf_simulator, perf_event_queue) with
JSON output, extracts the throughput counters, and writes one compact JSON
document per invocation:

    {
      "context": {... host/build metadata from google-benchmark ...},
      "provenance": {
        "build_type": "Release",      # CMAKE_BUILD_TYPE of the build tree
        "compiler": "/usr/bin/c++",   # CMAKE_CXX_COMPILER
        "git_sha": "...",             # HEAD at generation time
        "git_dirty": false            # uncommitted changes present?
      },
      "benchmarks": {
        "BM_SimulationRun/10000": {
          "real_time_ns": ...,
          "items_per_second": ...,
          "events_per_second": ...,   # when the bench exports the counter
          "ns_per_event": ...,        # 1e9 / events_per_second
          "ns_per_item": ...
        },
        ...
      },
      "peak_rss_kb": ...              # max resident set over all bench runs
    }

The provenance block is what lets tools/compare_bench.py refuse a baseline
captured from a Debug tree (google-benchmark's own "library_build_type"
describes the *benchmark library*, not this repo's code, so it cannot serve
that purpose). The build tree is located by walking up from the first
benchmark binary to the nearest CMakeCache.txt.

The committed BENCH_simulator.json at the repo root is the reference
baseline; CI regenerates the document on every run and uploads it as an
artifact so regressions are diagnosable from the workflow page alone.

Stdlib only. Usage:

    tools/make_bench_baseline.py --out BENCH_simulator.json \
        build-rel/bench/perf_simulator='--benchmark_filter=BM_SimulationRun' \
        build-rel/bench/perf_event_queue='--benchmark_filter=BM_HoldModel'

Each positional argument is BINARY[=EXTRA_FLAGS]; EXTRA_FLAGS are split on
whitespace and appended to the benchmark invocation.
"""

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile


def run_bench(binary, extra_flags):
    """Runs one google-benchmark binary, returns its parsed JSON report."""
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", delete=False
    ) as tmp:
        out_path = tmp.name
    cmd = [
        binary,
        "--benchmark_out=" + out_path,
        "--benchmark_out_format=json",
    ] + extra_flags
    try:
        proc = subprocess.run(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            raise SystemExit(
                f"benchmark failed ({proc.returncode}): {' '.join(cmd)}"
            )
        with open(out_path) as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


def to_ns(value, unit):
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return value * scale[unit]


def find_cmake_cache(binary):
    """Walks up from a benchmark binary to the build tree's CMakeCache.txt."""
    d = os.path.dirname(os.path.abspath(binary))
    while True:
        cache = os.path.join(d, "CMakeCache.txt")
        if os.path.isfile(cache):
            return cache
        parent = os.path.dirname(d)
        if parent == d:
            return None
        d = parent


def read_provenance(binary):
    """Build/compiler/revision stamp for the baseline document."""
    prov = {"build_type": "unknown", "compiler": "unknown"}
    cache = find_cmake_cache(binary)
    if cache:
        with open(cache) as f:
            for line in f:
                line = line.strip()
                if line.startswith("CMAKE_BUILD_TYPE:"):
                    prov["build_type"] = line.split("=", 1)[1] or "unknown"
                elif line.startswith("CMAKE_CXX_COMPILER:"):
                    prov["compiler"] = line.split("=", 1)[1] or "unknown"
    try:
        prov["git_sha"] = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
            check=True,
        ).stdout.strip()
        prov["git_dirty"] = bool(subprocess.run(
            ["git", "status", "--porcelain"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
            check=True,
        ).stdout.strip())
    except (OSError, subprocess.CalledProcessError):
        prov["git_sha"] = "unknown"
    return prov


def distill(report, benchmarks):
    """Folds one google-benchmark JSON report into the summary dict."""
    for bench in report.get("benchmarks", []):
        # With --benchmark_repetitions the individual runs share one name;
        # keep the distinctly-named mean/median aggregates instead (drop the
        # noise rows). Without repetitions keep the single run as-is.
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") not in ("mean", "median"):
                continue
        elif bench.get("repetitions", 1) > 1:
            continue
        name = bench["name"]
        entry = {
            "real_time_ns": to_ns(bench["real_time"], bench["time_unit"]),
            "cpu_time_ns": to_ns(bench["cpu_time"], bench["time_unit"]),
            "iterations": bench["iterations"],
        }
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
            entry["ns_per_item"] = 1e9 / bench["items_per_second"]
        if "events_per_second" in bench:
            entry["events_per_second"] = bench["events_per_second"]
            entry["ns_per_event"] = 1e9 / bench["events_per_second"]
        benchmarks[name] = entry


def main():
    parser = argparse.ArgumentParser(
        description="Distill google-benchmark runs into a perf baseline."
    )
    parser.add_argument("--out", required=True, help="output JSON path")
    parser.add_argument(
        "specs",
        nargs="+",
        metavar="BINARY[=EXTRA_FLAGS]",
        help="benchmark binary, optionally with extra flags after '='",
    )
    args = parser.parse_args()

    context = None
    benchmarks = {}
    for spec in args.specs:
        binary, _, flags = spec.partition("=")
        report = run_bench(binary, flags.split())
        if context is None:
            context = report.get("context", {})
        distill(report, benchmarks)

    if not benchmarks:
        raise SystemExit("no benchmark results were produced")

    # ru_maxrss (KiB on Linux) accumulates the max over all child benches.
    peak_rss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss

    doc = {
        "context": {
            k: context.get(k)
            for k in (
                "date",
                "host_name",
                "num_cpus",
                "mhz_per_cpu",
                "library_build_type",
            )
            if k in context
        },
        "provenance": read_provenance(args.specs[0].partition("=")[0]),
        "benchmarks": benchmarks,
        "peak_rss_kb": peak_rss_kb,
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}: {len(benchmarks)} benchmarks, "
          f"peak RSS {peak_rss_kb} KiB")


if __name__ == "__main__":
    main()
