# Test driver: run vodctl with the given arguments and assert it fails the
# way the CLI contract promises — non-zero exit status and a single-line
# "vodctl: <STATUS>: <detail>" diagnostic on stderr.
#
#   cmake -DVODCTL=<path> "-DARGS=<;-separated argv>" -P expect_failure.cmake
if(NOT DEFINED VODCTL OR NOT DEFINED ARGS)
  message(FATAL_ERROR "usage: cmake -DVODCTL=... -DARGS=... -P expect_failure.cmake")
endif()

execute_process(COMMAND ${VODCTL} ${ARGS}
                RESULT_VARIABLE exit_code
                OUTPUT_VARIABLE stdout
                ERROR_VARIABLE stderr)

if(exit_code EQUAL 0)
  message(FATAL_ERROR "vodctl ${ARGS} exited 0; expected a failure")
endif()
if(NOT stderr MATCHES "vodctl")
  message(FATAL_ERROR "vodctl ${ARGS}: no 'vodctl' diagnostic on stderr "
                      "(got: '${stderr}')")
endif()
string(REGEX REPLACE "\n$" "" trimmed "${stderr}")
if(trimmed MATCHES "\n")
  message(FATAL_ERROR "vodctl ${ARGS}: diagnostic spans multiple lines "
                      "(got: '${stderr}')")
endif()
message(STATUS "ok: exit ${exit_code}, diagnostic: ${trimmed}")
